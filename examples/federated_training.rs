//! Federated training across simulated households: compares the paper's
//! layer-wise clustering (FexIoT) against GCFL+, FMTL, FedAvg and local-only
//! training on a genuinely heterogeneous federation — clients belong to four
//! household archetypes (climate / security / entertainment / utility homes)
//! with Dirichlet label skew inside each — reporting accuracy and
//! communication cost.
//!
//! Run with: `cargo run --release --example federated_training`

use fexiot::{build_federation_with_data, FederationConfig, FexIotConfig};
use fexiot_fed::Strategy;
use fexiot_graph::dataset::generate_federated;
use fexiot_graph::DatasetConfig;
use fexiot_ml::Metrics;
use fexiot_tensor::Rng;

fn main() {
    let mut rng = Rng::seed_from_u64(11);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = 320;
    let fed = generate_federated(&ds_cfg, 8, 4, 0.5, &mut rng);
    println!(
        "federation: {} clients over 4 household archetypes, {} shared test graphs",
        fed.clients.len(),
        fed.test.len()
    );
    for (i, c) in fed.clients.iter().enumerate() {
        println!(
            "  client {i}: {} local graphs ({} vulnerable)",
            c.len(),
            c.vulnerable_count()
        );
    }

    let strategies = [
        Strategy::fexiot_default(),
        Strategy::gcfl_default(),
        Strategy::fmtl_default(),
        Strategy::FedAvg,
        Strategy::LocalOnly,
    ];

    println!(
        "\n{:<8} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "method", "accuracy", "precision", "recall", "f1", "comm (MB)"
    );
    for strategy in strategies {
        let mut config = FederationConfig {
            n_clients: fed.clients.len(),
            alpha: 0.5,
            strategy: strategy.clone(),
            rounds: 6,
            pipeline: FexIotConfig::default().with_seed(11),
            ..Default::default()
        };
        config.pipeline.contrastive.epochs = 1;
        config.pipeline.contrastive.pairs_per_epoch = 48;

        let mut sim = build_federation_with_data(fed.clients.clone(), &config);
        sim.run();
        let per_client = sim.evaluate(&fed.test);
        let mean = Metrics::mean(&per_client);
        println!(
            "{:<8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>12.2}",
            strategy.name(),
            mean.accuracy,
            mean.precision,
            mean.recall,
            mean.f1,
            sim.comm.total_mb()
        );
    }

    println!("\nExpected shape (paper Fig. 4/7): clustering-based methods lead; Client");
    println!("(no communication) trails; FexIoT moves the fewest bytes.");
}
