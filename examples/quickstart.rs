//! Quickstart: generate a labeled interaction-graph dataset, train the FexIoT
//! pipeline, evaluate detection quality, and explain one detection.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Accepts `--threads N` to pin the deterministic parallel execution width
//! (default: `FEXIOT_THREADS`, else all cores; output is bit-identical at any
//! width) and the shared observability flags (see `fexiot_obs::cli`):
//! `--obs-out DIR` writes a `fexiot-obs/v1` run report (span timings +
//! metrics) under DIR, `--obs-stream FILE` streams `fexiot-obs-events/v1`
//! JSONL events live to FILE (`--obs-stream-timing exclude` drops wall-clock
//! fields, making same-seed streams byte-identical), `--obs-flame FILE`
//! writes flamegraph-compatible collapsed stacks, `--obs-summary` prints
//! the span tree after the run, and `--obs-slo FILE` / `--obs-timeseries`
//! attach the fleet-health telemetry surfaces (the quickstart has no
//! federated rounds, so SLO rules report NODATA and the time-series stays
//! empty — the flags exercise parsing, verdict printing, and report
//! sections).

use fexiot::{FexIot, FexIotConfig};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::Rng;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // Consume `--threads N` before the obs flags; the pool must be pinned
    // before any stage touches it.
    if let Some(pos) = argv.iter().position(|a| a == "--threads") {
        let t = argv
            .get(pos + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0);
        let Some(t) = t else {
            eprintln!("--threads expects a positive integer");
            std::process::exit(2);
        };
        fexiot_par::set_threads(t);
        argv.drain(pos..=pos + 1);
    }
    let obs = match fexiot_obs::ObsCli::from_argv(&argv) {
        Ok(obs) => obs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let telemetry = match obs.fleet_telemetry() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    obs.begin("quickstart").expect("set up observability");

    demo();

    if obs.enabled() {
        println!();
    }
    // No federated rounds here, so there is no causal trace to hand over;
    // `--obs-trace` still writes a valid (empty) graph for tooling smoke
    // tests.
    obs.finish_full("quickstart", None, telemetry.as_ref(), None)
        .expect("export observability");
    if telemetry.is_some_and(|t| t.slo_failed()) {
        eprintln!("SLO gate failed (see verdict lines above)");
        std::process::exit(3);
    }
}

fn demo() {
    let mut rng = Rng::seed_from_u64(42);

    // 1. Build a homogeneous (IFTTT-style) dataset of interaction graphs.
    let mut dataset_cfg = DatasetConfig::small_ifttt();
    dataset_cfg.graph_count = 200;
    let dataset = generate_dataset(&dataset_cfg, &mut rng);
    let stats = dataset.stats();
    println!(
        "dataset: {} graphs ({} vulnerable), {}-{} nodes each",
        stats.total, stats.vulnerable, stats.min_nodes, stats.max_nodes
    );

    let (train, test) = dataset.train_test_split(0.8, &mut rng);

    // 2. Train: contrastive GIN encoder + linear head + MAD drift filter.
    let model = FexIot::train(&train, FexIotConfig::default().with_seed(42));
    println!("model size: {:.2} KB", model.model_bytes() as f64 / 1024.0);

    // 3. Evaluate detection.
    let metrics = model.evaluate(&test);
    println!("detection on held-out graphs: {metrics}");

    // 4. Pick a detected-vulnerable graph and explain it.
    let Some(target) = test
        .graphs
        .iter()
        .find(|g| g.node_count() >= 5 && model.detect(g).vulnerable)
    else {
        println!("no vulnerable detection in the test split (try another seed)");
        return;
    };
    let truth = target.label.as_ref().expect("labeled dataset");
    println!(
        "\nexplaining a {}-node graph (ground truth: {})",
        target.node_count(),
        if truth.vulnerable {
            truth
                .kinds
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        } else {
            "benign (model false positive)".to_string()
        }
    );

    let explanation = model.explain(target);
    println!(
        "explanation: {} of {} nodes, SHAP score {:.3} ({} model evaluations)",
        explanation.nodes.len(),
        target.node_count(),
        explanation.score,
        explanation.evaluations
    );
    for &i in &explanation.nodes {
        println!(
            "  rule {:>4}: {}",
            target.nodes[i].rule.id, target.nodes[i].rule.text
        );
    }

    // 5. Drift screening: how many held-out samples fall outside the
    //    training distribution and should be inspected manually?
    let drifting = model.filter_drifting(&test);
    println!(
        "\ndrift filter: {}/{} held-out graphs flagged as drifting",
        drifting.len(),
        test.len()
    );
}
