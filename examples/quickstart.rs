//! Quickstart: generate a labeled interaction-graph dataset, train the FexIoT
//! pipeline, evaluate detection quality, and explain one detection.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Pass `--obs-out DIR` to also write a `fexiot-obs/v1` observability run
//! report (span timings + metrics) under DIR, and/or `--obs-stream FILE` to
//! stream `fexiot-obs-events/v1` JSONL events live to FILE
//! (`--obs-stream-timing exclude` drops wall-clock fields, making same-seed
//! streams byte-identical).

use fexiot::{FexIot, FexIotConfig};
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::Rng;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1).cloned())
    };
    let obs_out = flag_value("--obs-out");
    let obs_stream = flag_value("--obs-stream");
    if obs_out.is_some() || obs_stream.is_some() {
        fexiot_obs::set_global_enabled(true);
    }
    if let Some(path) = &obs_stream {
        let include_timing =
            flag_value("--obs-stream-timing").as_deref() != Some("exclude");
        fexiot_obs::stream_global_to_file(std::path::Path::new(path), "quickstart", include_timing)
            .expect("open obs stream");
    }

    demo();

    if obs_stream.is_some() {
        fexiot_obs::close_global_stream();
    }
    if let Some(dir) = obs_out {
        let snap = fexiot_obs::global().snapshot();
        let path = fexiot_obs::write_report(std::path::Path::new(&dir), "quickstart", &snap)
            .expect("write obs report");
        println!("\nobs report written to {}", path.display());
    }
}

fn demo() {
    let mut rng = Rng::seed_from_u64(42);

    // 1. Build a homogeneous (IFTTT-style) dataset of interaction graphs.
    let mut dataset_cfg = DatasetConfig::small_ifttt();
    dataset_cfg.graph_count = 200;
    let dataset = generate_dataset(&dataset_cfg, &mut rng);
    let stats = dataset.stats();
    println!(
        "dataset: {} graphs ({} vulnerable), {}-{} nodes each",
        stats.total, stats.vulnerable, stats.min_nodes, stats.max_nodes
    );

    let (train, test) = dataset.train_test_split(0.8, &mut rng);

    // 2. Train: contrastive GIN encoder + linear head + MAD drift filter.
    let model = FexIot::train(&train, FexIotConfig::default().with_seed(42));
    println!("model size: {:.2} KB", model.model_bytes() as f64 / 1024.0);

    // 3. Evaluate detection.
    let metrics = model.evaluate(&test);
    println!("detection on held-out graphs: {metrics}");

    // 4. Pick a detected-vulnerable graph and explain it.
    let Some(target) = test
        .graphs
        .iter()
        .find(|g| g.node_count() >= 5 && model.detect(g).vulnerable)
    else {
        println!("no vulnerable detection in the test split (try another seed)");
        return;
    };
    let truth = target.label.as_ref().expect("labeled dataset");
    println!(
        "\nexplaining a {}-node graph (ground truth: {})",
        target.node_count(),
        if truth.vulnerable {
            truth
                .kinds
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        } else {
            "benign (model false positive)".to_string()
        }
    );

    let explanation = model.explain(target);
    println!(
        "explanation: {} of {} nodes, SHAP score {:.3} ({} model evaluations)",
        explanation.nodes.len(),
        target.node_count(),
        explanation.score,
        explanation.evaluations
    );
    for &i in &explanation.nodes {
        println!(
            "  rule {:>4}: {}",
            target.nodes[i].rule.id, target.nodes[i].rule.text
        );
    }

    // 5. Drift screening: how many held-out samples fall outside the
    //    training distribution and should be inspected manually?
    let drifting = model.filter_drifting(&test);
    println!(
        "\ndrift filter: {}/{} held-out graphs flagged as drifting",
        drifting.len(),
        test.len()
    );
}
