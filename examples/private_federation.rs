//! Privacy and robustness extensions (paper §VI "Discussion and Future
//! Work"): differential privacy on client updates with a privacy accountant,
//! pairwise-masked secure aggregation, and FoolsGold-style Sybil defense.
//!
//! Run with: `cargo run --release --example private_federation`

use fexiot::{build_federation_with_data, FederationConfig, FexIotConfig};
use fexiot_fed::{DpConfig, Strategy};
use fexiot_graph::dataset::generate_federated;
use fexiot_graph::DatasetConfig;
use fexiot_ml::Metrics;
use fexiot_tensor::Rng;

fn main() {
    let mut rng = Rng::seed_from_u64(31);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = 240;
    let fed = generate_federated(&ds_cfg, 6, 3, 1.0, &mut rng);

    let base_config = || {
        let mut config = FederationConfig {
            n_clients: fed.clients.len(),
            alpha: 1.0,
            strategy: Strategy::FedAvg,
            rounds: 5,
            pipeline: FexIotConfig::default().with_seed(31),
            ..Default::default()
        };
        config.pipeline.contrastive.epochs = 1;
        config.pipeline.contrastive.pairs_per_epoch = 48;
        config
    };

    // --- 1. Differential privacy at several noise levels.
    println!("differential privacy (clip 1.0, 5 rounds, delta = 1e-5):");
    println!(
        "{:<18} {:>9} {:>12}",
        "noise multiplier", "accuracy", "epsilon"
    );
    for noise in [0.0f64, 0.5, 1.0, 2.0] {
        let mut config = base_config();
        if noise > 0.0 {
            config.dp = Some(DpConfig {
                clip_norm: 1.0,
                noise_multiplier: noise,
            });
        }
        let mut sim = build_federation_with_data(fed.clients.clone(), &config);
        sim.run();
        let acc = Metrics::mean(&sim.evaluate(&fed.test)).accuracy;
        match sim.privacy_epsilon(1e-5) {
            Some(eps) => println!("{noise:<18} {acc:>9.3} {eps:>12.2}"),
            None => println!("{noise:<18} {acc:>9.3} {:>12}", "off"),
        }
    }
    println!("(higher noise -> stronger privacy (smaller epsilon), lower accuracy)");

    // --- 2. Secure aggregation: same result, nothing individual revealed.
    let mut plain_cfg = base_config();
    plain_cfg.rounds = 3;
    let mut secure_cfg = plain_cfg.clone();
    secure_cfg.secure_aggregation = true;
    let mut plain = build_federation_with_data(fed.clients.clone(), &plain_cfg);
    let mut secure = build_federation_with_data(fed.clients.clone(), &secure_cfg);
    plain.run();
    secure.run();
    let max_diff = plain
        .clients
        .iter()
        .zip(&secure.clients)
        .flat_map(|(a, b)| {
            a.encoder
                .params()
                .iter()
                .zip(b.encoder.params())
                .map(|(x, y)| x.max_abs_diff(y))
        })
        .fold(0.0f64, f64::max);
    println!("\nsecure aggregation: max model divergence vs plain FedAvg = {max_diff:.2e}");
    println!("(the server computed identical averages without seeing any client model)");

    // --- 3. Sybil defense: three replicas try to steer the global model.
    let mut sybil_cfg = base_config();
    sybil_cfg.sybil_defense = true;
    sybil_cfg.rounds = 4;
    let mut sim = build_federation_with_data(fed.clients.clone(), &sybil_cfg);
    // Clients 0-2 become a coordinated pack (identical data and sampling).
    let template = sim.clients[0].data.clone();
    for i in 1..3 {
        sim.clients[i].data = template.clone();
        sim.clients[i].labels = sim.clients[0].labels.clone();
        sim.clients[i].classes = sim.clients[0].classes.clone();
        sim.clients[i].id = sim.clients[0].id;
    }
    sim.run();
    println!("\nsybil defense trust weights (clients 0-2 are replicas):");
    for (i, t) in sim.trust().iter().enumerate() {
        println!(
            "  client {i}: trust {t:.3}{}",
            if i < 3 { "  <- sybil" } else { "" }
        );
    }
}
