//! Smart-home audit: the paper's motivating scenario end-to-end.
//!
//! A house deploys rules across several platforms (including the intro's
//! smoke/water-valve pair), a week of event logs is simulated, the logs are
//! cleaned and fused with the offline graph into an online interaction
//! graph, attacks are injected, and the audit reports what changed.
//!
//! Run with: `cargo run --release --example smart_home_audit`

use fexiot_graph::attacks::{apply_attack, AttackKind};
use fexiot_graph::builder::{CorpusIndex, FeatureConfig, GraphBuilder};
use fexiot_graph::device::{Channel, DeviceKind, Location};
use fexiot_graph::events::{clean_log, HomeSimulator, SimConfig};
use fexiot_graph::online::fuse_online;
use fexiot_graph::rule::{dev, Command, Platform, Rule, Trigger};
use fexiot_graph::vuln::detect_vulnerabilities;
use fexiot_tensor::Rng;

/// The intro example (R1-R4 of Fig. 1a) plus the smoke/valve conflict pair.
fn household_rules() -> Vec<Rule> {
    let light = dev(DeviceKind::Light, Location::LivingRoom);
    let lock = dev(DeviceKind::Lock, Location::Hallway);
    let valve = dev(DeviceKind::WaterValve, Location::Kitchen);
    let fan = dev(DeviceKind::Fan, Location::Kitchen);

    let specs: Vec<(Platform, Trigger, Vec<Command>)> = vec![
        // R1: Turn lights on if motion is detected (SmartThings).
        (
            Platform::SmartThings,
            Trigger::ChannelLevel {
                channel: Channel::Motion,
                location: Location::LivingRoom,
                high: true,
            },
            vec![Command {
                device: light,
                activate: true,
            }],
        ),
        // R2: Lock front door when living room lights are on (Alexa).
        (
            Platform::AmazonAlexa,
            Trigger::DeviceState {
                device: light,
                active: true,
            },
            vec![Command {
                device: lock,
                activate: false,
            }],
        ),
        // R3: Turn on water valve and start fan if smoke is detected (Home Assistant).
        (
            Platform::HomeAssistant,
            Trigger::ChannelLevel {
                channel: Channel::Smoke,
                location: Location::Kitchen,
                high: true,
            },
            vec![
                Command {
                    device: valve,
                    activate: true,
                },
                Command {
                    device: fan,
                    activate: true,
                },
            ],
        ),
        // R4: Turn off water valve when water leak is detected (IFTTT) —
        // together with R3 this is the paper's action-revert vulnerability.
        (
            Platform::Ifttt,
            Trigger::ChannelLevel {
                channel: Channel::Water,
                location: Location::Kitchen,
                high: true,
            },
            vec![Command {
                device: valve,
                activate: false,
            }],
        ),
    ];
    specs
        .into_iter()
        .enumerate()
        .map(|(i, (platform, trigger, actions))| {
            let text = fexiot_graph::corpus::render_text(platform, &trigger, &actions);
            Rule {
                id: i as u32,
                platform,
                trigger,
                actions,
                text,
            }
        })
        .collect()
}

fn main() {
    let rules = household_rules();
    println!("deployed rules:");
    for r in &rules {
        println!("  [{}] {}", r.platform.name(), r.text);
    }

    // Static analysis: offline interaction graph from the descriptions alone.
    let builder = GraphBuilder::new(FeatureConfig::small());
    let offline = builder.build_graph(&rules);
    println!(
        "\noffline graph: {} nodes, {} edges {:?}",
        offline.node_count(),
        offline.edge_count(),
        offline.edges
    );
    let found = detect_vulnerabilities(&offline);
    println!(
        "static analysis verdict: {}",
        if found.is_empty() {
            "no interaction vulnerability".to_string()
        } else {
            found
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        }
    );

    // Dynamic analysis: simulate a week of events, clean, fuse.
    let mut rng = Rng::seed_from_u64(7);
    let mut sim = HomeSimulator::new(rules.clone());
    let raw = sim.run(&SimConfig::short(), &mut rng);
    let clean = clean_log(&raw);
    println!(
        "\nsimulated log: {} raw records -> {} after cleaning",
        raw.len(),
        clean.len()
    );
    for e in clean.iter().take(6) {
        println!("  t={:>5}s  {}  ->  {}", e.time, e.device.name(), e.state);
    }

    let online = fuse_online(&offline, &clean);
    println!(
        "online graph carries runtime status on {} nodes",
        online
            .nodes
            .iter()
            .filter(|n| n.features[n.features.len() - 4] != 0.0)
            .count()
    );

    // Attack injection: tamper the log five ways and report the damage.
    println!("\nattack injection (log deltas):");
    for kind in AttackKind::ALL {
        let attacked = apply_attack(kind, &raw, 0.3, &mut rng);
        let cleaned = clean_log(&attacked);
        println!(
            "  {:<18} raw {:>4} -> {:>4} records, cleaned {:>4} -> {:>4}",
            kind.name(),
            raw.len(),
            attacked.len(),
            clean.len(),
            cleaned.len()
        );
    }

    // The corpus index shows how this house's rules would chain with a wider
    // rule population (used by the dataset generator).
    let index = CorpusIndex::build(rules);
    println!(
        "\ncorrelation density among the household's own rules: {:.3}",
        index.density()
    );
}
