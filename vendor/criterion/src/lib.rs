//! Offline shim of the `criterion` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this path crate
//! stands in for the real `criterion`: same names and call shapes
//! (`criterion_group!`/`criterion_main!`, `bench_function`, groups,
//! `iter`/`iter_batched`), but measurement is a simple wall-clock median
//! over `sample_size` runs printed to stdout — no statistics, plots, or
//! baseline comparisons. Under `--test` (what `cargo test --benches`
//! passes) each routine runs exactly once as a smoke check.

use std::time::Instant;

/// How batched inputs are grouped; retained for signature compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            samples,
            nanos: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id.as_ref());
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: usize,
    nanos: Vec<u128>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.nanos.push(start.elapsed().as_nanos());
            drop(out);
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.nanos.push(start.elapsed().as_nanos());
            drop(out);
        }
    }

    fn report(&mut self, id: &str) {
        if self.nanos.is_empty() {
            println!("{id:<48} (not executed)");
            return;
        }
        self.nanos.sort_unstable();
        let median = self.nanos[self.nanos.len() / 2];
        println!("{id:<48} median {:>12.3} ms", median as f64 / 1e6);
    }
}

/// Mirrors `criterion_group!`: a function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut count = 0;
        c.bench_function("shim_smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion {
            sample_size: 4,
            test_mode: false,
        };
        let mut setups = 0;
        let mut group = c.benchmark_group("shim");
        group.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::LargeInput,
            );
        });
        group.finish();
        assert_eq!(setups, 4);
    }
}
