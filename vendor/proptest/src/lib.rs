//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so this path crate
//! stands in for the real `proptest`. It keeps the same names and call
//! shapes (`proptest!`, `prop_assert!`, range/collection/`prop_map`
//! strategies, simple regex string strategies) but replaces the machinery
//! with a deterministic splitmix64 sampler and plain `assert!` failures —
//! no shrinking, no persistence. Regression files (`.proptest-regressions`)
//! are ignored.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` for the fields we use.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic generator: splitmix64 keyed by test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name_hash: u64, case: u64) -> Self {
            Self {
                state: name_hash ^ case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[lo, hi)`.
        pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(hi > lo, "empty range {lo}..{hi}");
            let span = hi - lo;
            lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }

    /// FNV-1a, used to decorrelate streams across test functions.
    pub fn hash_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    use super::string::sample_pattern;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Value generator. Unlike real proptest there is no value tree or
    /// shrinking; `generate` draws one value directly.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Constant strategy (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.u64_range(0, span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// String strategies from simple regex patterns, e.g. `"[a-z ]{5,60}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }
}

/// Generator for the regex subset used as string strategies: sequences of
/// `.`, literal characters, and `[...]` classes (with ranges), each followed
/// by an optional `{m}`, `{m,n}`, `*`, `+`, or `?` quantifier.
pub mod string {
    use super::test_runner::TestRng;

    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    fn parse(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Quantifier.
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated {} quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim().parse().expect("bad quantifier"),
                                n.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let m: u32 = body.trim().parse().expect("bad quantifier");
                                (m, m)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            out.push((atom, min, max));
        }
        out
    }

    fn sample_any(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally Latin-1 supplement / Greek so
        // the non-ASCII paths in string handling get exercised.
        match rng.u64_range(0, 10) {
            0 => char::from_u32(rng.u64_range(0xA1, 0x3C9) as u32).unwrap_or('ø'),
            _ => char::from_u32(rng.u64_range(0x20, 0x7F) as u32).expect("ascii"),
        }
    }

    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut s = String::new();
        for (atom, min, max) in parse(pattern) {
            let n = rng.u64_range(min as u64, max as u64 + 1);
            for _ in 0..n {
                match &atom {
                    Atom::Any => s.push(sample_any(rng)),
                    Atom::Literal(c) => s.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(a, b)| (b as u64).saturating_sub(a as u64) + 1)
                            .sum();
                        let mut pick = rng.u64_range(0, total.max(1));
                        for &(a, b) in ranges {
                            let span = (b as u64) - (a as u64) + 1;
                            if pick < span {
                                s.push(char::from_u32(a as u32 + pick as u32).unwrap_or(a));
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        s
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification accepted by [`vec`]: an exact `usize` or
    /// a half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.u64_range(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// `proptest!` shim: expands each `#[test] fn name(arg in strategy, ...)`
/// into a plain test that replays `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __hash = $crate::test_runner::hash_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__hash, __case as u64);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `prop_assert!` shim: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` shim: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` shim: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{hash_name, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(hash_name("ranges"), 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0..4.0f64), &mut rng);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = TestRng::deterministic(hash_name("vecmap"), 1);
        let strat = crate::collection::vec(0.0..1.0f64, 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::deterministic(hash_name("strings"), 2);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,15}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 15);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[a-z ]{5,60}", &mut rng);
            assert!(t.len() >= 5 && t.len() <= 60);
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
            let any = Strategy::generate(&".{0,80}", &mut rng);
            assert!(any.chars().count() <= 80);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut rng = TestRng::deterministic(hash_name("det"), 7);
            (0..32)
                .map(|_| Strategy::generate(&(0u64..1000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(a in 0u64..50, b in 1usize..4) {
            prop_assert!(a < 50);
            prop_assert_eq!(b.min(3), b);
        }
    }
}
