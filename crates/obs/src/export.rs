//! Export surfaces for obs data: Prometheus text exposition (rendered from a
//! run report or a JSONL event stream) and the live `--watch` terminal view
//! behind the `obs-export` binary.
//!
//! The exposition follows the Prometheus text format: `# HELP`/`# TYPE`
//! comment lines, `name{labels} value` samples, histograms as cumulative
//! `_bucket{le="..."}` series plus `_sum`/`_count`. Metric names are
//! sanitized into the `fexiot_` namespace ([`metric_name`]); a first-party
//! format checker ([`validate_prometheus_text`]) locks the output against
//! the format's parsing rules since the real scrape parser is unavailable
//! offline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::registry::{Event, EventRecord};

/// Maps a dotted obs metric name into the Prometheus namespace:
/// `fed.agg.down` → `fexiot_fed_agg_down`. Every byte outside
/// `[A-Za-z0-9_]` becomes `_` (the format allows `:` too, but that is
/// reserved for recording rules).
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("fexiot_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Escapes a label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Formats a sample value. Non-finite floats use the format's spellings
/// (`+Inf`, `-Inf`, `NaN`).
fn sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn push_metric(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn obj<'a>(doc: &'a Json, key: &str) -> &'a [(String, Json)] {
    match doc.get(key) {
        Some(Json::Obj(members)) => members,
        _ => &[],
    }
}

/// Renders a validated obs report (either schema version) as Prometheus text
/// exposition: counters, gauges, histograms, the newest sample of every v2
/// time-series, and SLO verdict states.
pub fn prometheus_from_report(doc: &Json) -> Result<String, String> {
    crate::report::validate_report(doc)?;
    let mut out = String::new();
    let run = doc.get("run").and_then(Json::as_str).unwrap_or("?");
    push_metric(&mut out, "fexiot_run_info", "gauge", "Run identity (constant 1).");
    let _ = writeln!(out, "fexiot_run_info{{run=\"{}\"}} 1", label_value(run));

    for (k, v) in obj(doc, "counters") {
        let Some(total) = v.as_u64() else { continue };
        let name = metric_name(k);
        push_metric(&mut out, &name, "counter", "Monotonic obs counter.");
        let _ = writeln!(out, "{name} {total}");
    }
    for (k, v) in obj(doc, "gauges") {
        let Some(value) = v.as_f64() else { continue };
        let name = metric_name(k);
        push_metric(&mut out, &name, "gauge", "Obs gauge (last set value).");
        let _ = writeln!(out, "{name} {}", sample(value));
    }
    for (k, h) in obj(doc, "histograms") {
        let name = metric_name(k);
        let edges: Vec<f64> = h
            .get("edges")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_f64).collect())
            .unwrap_or_default();
        let counts: Vec<u64> = h
            .get("counts")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default();
        let field = |f: &str| h.get(f).and_then(Json::as_u64).unwrap_or(0);
        let (underflow, count) = (field("underflow"), field("count"));
        let sum = h.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
        push_metric(&mut out, &name, "histogram", "Fixed-bucket obs histogram.");
        // Cumulative buckets: everything below edges[0] (the underflow
        // bucket), then one bucket per upper interior edge, then +Inf.
        let mut cumulative = underflow;
        if let Some(first) = edges.first() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", sample(*first));
        }
        for (i, upper) in edges.iter().skip(1).enumerate() {
            cumulative += counts.get(i).copied().unwrap_or(0);
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", sample(*upper));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{name}_sum {}", sample(sum));
        let _ = writeln!(out, "{name}_count {count}");
    }

    // v2 sections: expose the newest sample of each per-round series, and
    // the SLO verdicts as enumerated state gauges.
    if let Some(ts) = doc.get("timeseries") {
        for (k, s) in obj(ts, "series") {
            let last = s
                .get("values")
                .and_then(Json::as_arr)
                .and_then(|v| v.last())
                .and_then(Json::as_f64);
            let round = s
                .get("rounds")
                .and_then(Json::as_arr)
                .and_then(|v| v.last())
                .and_then(Json::as_u64);
            if let (Some(value), Some(round)) = (last, round) {
                let name = format!("{}_last", metric_name(k));
                push_metric(&mut out, &name, "gauge", "Newest per-round time-series sample.");
                let _ = writeln!(out, "{name}{{round=\"{round}\"}} {}", sample(value));
            }
        }
    }
    if let Some(slo) = doc.get("slo") {
        let verdicts = slo.get("verdicts").and_then(Json::as_arr).unwrap_or(&[]);
        if !verdicts.is_empty() {
            push_metric(
                &mut out,
                "fexiot_slo_failing",
                "gauge",
                "1 while the SLO rule is failing, 0 otherwise.",
            );
            for v in verdicts {
                let rule = v.get("name").and_then(Json::as_str).unwrap_or("?");
                let status = v.get("status").and_then(Json::as_str).unwrap_or("?");
                let failing = u64::from(status == "fail");
                let _ = writeln!(
                    out,
                    "fexiot_slo_failing{{rule=\"{}\",status=\"{}\"}} {failing}",
                    label_value(rule),
                    label_value(status)
                );
            }
        }
    }
    Ok(out)
}

/// Renders a JSONL event stream as Prometheus text exposition by replaying
/// it: counters expose their final totals, gauges their last written value.
/// Histogram samples carry no bucket edges on the wire, so they are exposed
/// as `_samples` counters only.
pub fn prometheus_from_stream(text: &str) -> Result<String, String> {
    let (run, events) = crate::stream::parse_stream(text)?;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut hist_samples: BTreeMap<String, u64> = BTreeMap::new();
    for rec in &events {
        match &rec.event {
            Event::Counter { name, total, .. } => {
                counters.insert(name.clone(), *total);
            }
            Event::Gauge { name, value } => {
                gauges.insert(name.clone(), *value);
            }
            Event::Hist { name, .. } => {
                *hist_samples.entry(name.clone()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let mut out = String::new();
    push_metric(&mut out, "fexiot_run_info", "gauge", "Run identity (constant 1).");
    let _ = writeln!(out, "fexiot_run_info{{run=\"{}\"}} 1", label_value(&run));
    for (k, total) in &counters {
        let name = metric_name(k);
        push_metric(&mut out, &name, "counter", "Monotonic obs counter.");
        let _ = writeln!(out, "{name} {total}");
    }
    for (k, value) in &gauges {
        let name = metric_name(k);
        push_metric(&mut out, &name, "gauge", "Obs gauge (last set value).");
        let _ = writeln!(out, "{name} {}", sample(*value));
    }
    for (k, n) in &hist_samples {
        let name = format!("{}_samples", metric_name(k));
        push_metric(&mut out, &name, "counter", "Histogram samples seen on the stream.");
        let _ = writeln!(out, "{name} {n}");
    }
    Ok(out)
}

/// Checks a document against the Prometheus text-format parsing rules:
/// `# HELP`/`# TYPE` comments, sample lines `name{labels} value`, valid
/// metric/label identifiers, parseable values, and every sample preceded by
/// a `# TYPE` for its family. Returns the first violation.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn valid_label_name(s: &str) -> bool {
        let mut chars = s.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    let mut typed: Vec<String> = Vec::new();
    let mut saw_sample = false;
    for (i, line) in text.lines().enumerate() {
        let at = format!("line {}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(spec) = rest.strip_prefix("TYPE ") {
                let mut parts = spec.split_whitespace();
                let name = parts.next().ok_or(format!("{at}: TYPE without name"))?;
                let kind = parts.next().ok_or(format!("{at}: TYPE without kind"))?;
                if !valid_name(name) {
                    return Err(format!("{at}: invalid metric name {name:?}"));
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                    return Err(format!("{at}: invalid TYPE kind {kind:?}"));
                }
                typed.push(name.to_string());
            } else if let Some(spec) = rest.strip_prefix("HELP ") {
                let name = spec.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("{at}: invalid metric name {name:?} in HELP"));
                }
            }
            // Other comments are free-form.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(pos) => (&line[..pos], &line[pos..]),
            None => return Err(format!("{at}: sample line without value: {line:?}")),
        };
        if !valid_name(name_part) {
            return Err(format!("{at}: invalid metric name {name_part:?}"));
        }
        let rest = if let Some(labels) = rest.strip_prefix('{') {
            let end = labels.find('}').ok_or(format!("{at}: unterminated label set"))?;
            let body = &labels[..end];
            if !body.is_empty() {
                for pair in body.split(',') {
                    let (lname, lvalue) = pair
                        .split_once('=')
                        .ok_or(format!("{at}: label without `=`: {pair:?}"))?;
                    if !valid_label_name(lname) {
                        return Err(format!("{at}: invalid label name {lname:?}"));
                    }
                    if !(lvalue.len() >= 2 && lvalue.starts_with('"') && lvalue.ends_with('"')) {
                        return Err(format!("{at}: label value not quoted: {lvalue:?}"));
                    }
                }
            }
            &labels[end + 1..]
        } else {
            rest
        };
        let mut fields = rest.split_whitespace();
        let value = fields.next().ok_or(format!("{at}: sample without value"))?;
        if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
            return Err(format!("{at}: unparseable sample value {value:?}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("{at}: unparseable timestamp {ts:?}"));
            }
        }
        // The base family of `x_bucket`/`x_sum`/`x_count` is `x`.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| name_part.strip_suffix(suf))
            .unwrap_or(name_part);
        if !typed.iter().any(|t| t == family || t == name_part) {
            return Err(format!("{at}: sample {name_part:?} has no preceding # TYPE"));
        }
        saw_sample = true;
    }
    if !saw_sample {
        return Err("no sample lines in exposition".into());
    }
    Ok(())
}

/// Accumulated state of a watched event stream: round progress, per-round
/// counter deltas, gauges, and aggregator/quorum health, rendered as a
/// terminal frame by [`WatchState::render`].
#[derive(Debug, Clone, Default)]
pub struct WatchState {
    pub run: String,
    /// Index of the round currently in flight (from the newest `round[N]`
    /// mark), and how many round marks were seen in total.
    pub current_round: Option<u64>,
    pub rounds_started: u64,
    counters: BTreeMap<String, u64>,
    /// Counter totals captured at the newest round boundary; per-round
    /// deltas are `counters[k] - round_base[k]`.
    round_base: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    pub events_seen: u64,
    /// Newest `slo_failing[N]` mark on the stream: how many SLO rules were
    /// failing at the latest telemetry evaluation.
    pub slo_failing: Option<u64>,
    /// Newest `slo_top_cause[kind]` mark: the root-cause engine's dominant
    /// fault kind for the failing rules (causal tracing on).
    pub top_cause: Option<String>,
    /// Newest `stream_backpressure[cause]` mark: the streaming service's
    /// dominant congested edge last round (`none` when the round was clean).
    pub stream_cause: Option<String>,
}

impl WatchState {
    pub fn new(run: &str) -> Self {
        Self {
            run: run.to_string(),
            ..Self::default()
        }
    }

    /// Replays a full stream (header + events) into a fresh state.
    pub fn from_stream(text: &str) -> Result<Self, String> {
        let (run, events) = crate::stream::parse_stream(text)?;
        let mut state = Self::new(&run);
        for rec in &events {
            state.apply(rec);
        }
        Ok(state)
    }

    pub fn apply(&mut self, rec: &EventRecord) {
        self.events_seen += 1;
        match &rec.event {
            Event::Mark { name } => {
                // `round[N]` marks are the round boundaries.
                if let Some(idx) = name
                    .strip_prefix("round[")
                    .and_then(|r| r.strip_suffix(']'))
                    .and_then(|r| r.parse::<u64>().ok())
                {
                    self.current_round = Some(idx);
                    self.rounds_started += 1;
                    self.round_base = self.counters.clone();
                } else if let Some(n) = name
                    .strip_prefix("slo_failing[")
                    .and_then(|r| r.strip_suffix(']'))
                    .and_then(|r| r.parse::<u64>().ok())
                {
                    self.slo_failing = Some(n);
                    if n == 0 {
                        self.top_cause = None;
                    }
                } else if let Some(cause) = name
                    .strip_prefix("slo_top_cause[")
                    .and_then(|r| r.strip_suffix(']'))
                {
                    self.top_cause = Some(cause.to_string());
                } else if let Some(cause) = name
                    .strip_prefix("stream_backpressure[")
                    .and_then(|r| r.strip_suffix(']'))
                {
                    self.stream_cause = Some(cause.to_string());
                }
            }
            Event::Counter { name, total, .. } => {
                self.counters.insert(name.clone(), *total);
            }
            Event::Gauge { name, value } => {
                self.gauges.insert(name.clone(), *value);
            }
            _ => {}
        }
    }

    /// Counter increase since the newest round boundary.
    fn round_delta(&self, name: &str) -> u64 {
        let now = self.counters.get(name).copied().unwrap_or(0);
        now.saturating_sub(self.round_base.get(name).copied().unwrap_or(0))
    }

    /// One terminal frame: round progress, cohort and aggregator status,
    /// quorum margin, and critical-path attribution counters for the round
    /// in flight.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── obs watch · run {} ──", self.run);
        match self.current_round {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "round {r} in flight · {} started · {} events",
                    self.rounds_started, self.events_seen
                );
            }
            None => {
                let _ = writeln!(out, "no round boundary yet · {} events", self.events_seen);
            }
        }
        let d = |name: &str| self.round_delta(name);
        // Streaming lanes only make sense for serve streams, federated lanes
        // for trainer streams; a stream carrying neither keeps the federated
        // layout (the zeros are then the honest picture).
        let has_stream = self.counters.keys().any(|k| k.starts_with("stream."));
        let has_fed = self.counters.keys().any(|k| k.starts_with("fed."));
        if has_fed || !has_stream {
            let _ = writeln!(
                out,
                "cohort: sampled {}  participants {}  dropped {}  quarantined {}",
                d("fed.sim.sampled"),
                d("fed.sim.participants"),
                d("fed.sim.dropped"),
                d("fed.sim.quarantined"),
            );
            let _ = writeln!(
                out,
                "aggregators: down {}  reassigned {}  quorum aborts {}  deadline misses {}",
                d("fed.agg.down"),
                d("fed.agg.reassigned"),
                d("fed.agg.quorum_aborts"),
                d("fed.agg.deadline_missed"),
            );
        }
        if has_stream {
            let _ = writeln!(
                out,
                "stream (round): ingested {}  detected {}  shed {}",
                d("stream.ingest.events"),
                d("stream.detect.events"),
                d("stream.mailbox.shed"),
            );
            let depth = self
                .gauges
                .get("stream.actor.mailbox_depth")
                .copied()
                .unwrap_or(0.0);
            let mut lane = format!("mailboxes: depth max {}", depth as u64);
            if let Some(p99) = self.gauges.get("stream.detect.latency_p99_ticks") {
                let _ = write!(lane, "  p99 latency {p99:.1} ticks");
            }
            if let Some(cause) = &self.stream_cause {
                let _ = write!(lane, "  backpressure {cause}");
            }
            let _ = writeln!(out, "{lane}");
        }
        if let Some(margin) = self.gauges.get("fed.round.quorum_margin") {
            let _ = writeln!(out, "quorum margin: {margin:+.3} (weight above threshold)");
        }
        match self.slo_failing {
            Some(0) => {
                let _ = writeln!(out, "SLO: all rules passing");
            }
            Some(n) => match &self.top_cause {
                Some(cause) => {
                    let _ = writeln!(out, "SLO: {n} failing · top cause {cause}");
                }
                None => {
                    let _ = writeln!(out, "SLO: {n} failing");
                }
            },
            None => {
                // No `slo_failing` marks means no SLO engine was attached —
                // say so instead of silently rendering nothing.
                let _ = writeln!(out, "SLO: no rules loaded");
            }
        }
        if has_fed || !has_stream {
            let _ = writeln!(
                out,
                "attribution: stale accepted {}  retries {}  lost msgs {}  backoff ticks {}",
                d("fed.sim.stale_accepted"),
                d("fed.sim.retried_messages"),
                d("fed.sim.lost_messages"),
                d("fed.sim.backoff_ticks"),
            );
        }
        if let Some(loss) = self.gauges.get("fed.sim.mean_loss") {
            let _ = writeln!(out, "mean loss {loss:.4}");
        }
        let (bytes, msgs) = (
            self.gauges.get("fed.comm.round_bytes").copied().unwrap_or(0.0),
            self.gauges.get("fed.comm.round_messages").copied().unwrap_or(0.0),
        );
        if bytes > 0.0 || msgs > 0.0 {
            let _ = writeln!(
                out,
                "comm (round): {:.2} MB / {} messages",
                bytes / (1024.0 * 1024.0),
                msgs as u64
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::report::{to_json_with, ReportExtras, Timing};
    use std::sync::Arc;

    fn report_doc() -> Json {
        let reg = Arc::new(Registry::new());
        {
            let _s = reg.span("pipeline");
            reg.counter_add("fed.sim.participants", 5);
            reg.gauge_set("fed.sim.mean_loss", 0.25);
            for v in [0.1, 0.6, 2.0, 20.0] {
                reg.hist_record("fed.round.loss", crate::buckets::LOSS, v);
            }
        }
        let mut telemetry = crate::timeseries::FleetTelemetry::default();
        telemetry.push_sample(0, "fed.round.participants", 5.0);
        telemetry.slo = Some(
            crate::slo::SloEngine::parse(
                "[[rule]]\nmetric = \"fed.round.participants\"\nop = \">=\"\nthreshold = 1",
            )
            .unwrap(),
        );
        if let Some(engine) = &mut telemetry.slo {
            engine.evaluate(0, &telemetry.store);
        }
        to_json_with(
            &reg.snapshot(),
            "unit",
            Timing::Include,
            None,
            &ReportExtras::from_telemetry(&telemetry),
        )
    }

    #[test]
    fn report_exposition_validates_and_has_cumulative_buckets() {
        let text = prometheus_from_report(&report_doc()).expect("renders");
        validate_prometheus_text(&text).expect("valid exposition");
        assert!(text.contains("# TYPE fexiot_fed_sim_participants counter"));
        assert!(text.contains("fexiot_fed_sim_participants 5"));
        assert!(text.contains("# TYPE fexiot_fed_round_loss histogram"));
        // 20.0 overflows the LOSS buckets: +Inf must still count it.
        assert!(text.contains("fexiot_fed_round_loss_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("fexiot_fed_round_loss_count 4"));
        // Buckets are cumulative: the le="1" bucket holds 0.1 and 0.6.
        assert!(text.contains("fexiot_fed_round_loss_bucket{le=\"1\"} 2"), "{text}");
        // v2 sections surface too.
        assert!(text.contains("fexiot_fed_round_participants_last{round=\"0\"} 5"));
        assert!(text.contains("fexiot_slo_failing{rule=\"fed.round.participants\",status=\"pass\"} 0"));
    }

    #[test]
    fn format_violations_are_caught() {
        for (text, why) in [
            ("", "empty exposition"),
            ("fexiot_x 1\n", "sample without TYPE"),
            ("# TYPE fexiot_x counter\nfexiot_x one\n", "bad value"),
            ("# TYPE 9bad counter\n9bad 1\n", "bad name"),
            ("# TYPE fexiot_x bogus\nfexiot_x 1\n", "bad kind"),
            ("# TYPE fexiot_x counter\nfexiot_x{l=unquoted} 1\n", "unquoted label"),
            ("# TYPE fexiot_x counter\nfexiot_x{l=\"v\" 1\n", "unterminated labels"),
        ] {
            assert!(validate_prometheus_text(text).is_err(), "accepted: {why}");
        }
        validate_prometheus_text("# TYPE ok gauge\nok{a=\"b\",c=\"d\"} +Inf 123\n")
            .expect("labels, Inf, timestamp all legal");
    }

    #[test]
    fn stream_exposition_replays_counters_and_gauges() {
        let reg = Arc::new(Registry::new());
        let buf = Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Sink(Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for Sink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        reg.set_stream(Box::new(Sink(Arc::clone(&buf))), "watchrun", false);
        reg.mark("round[0]");
        reg.counter_add("fed.sim.participants", 3);
        reg.counter_add("fed.sim.participants", 2);
        reg.gauge_set("fed.sim.mean_loss", 0.5);
        drop(reg.take_stream());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let exposition = prometheus_from_stream(&text).expect("renders");
        validate_prometheus_text(&exposition).expect("valid exposition");
        assert!(exposition.contains("fexiot_run_info{run=\"watchrun\"} 1"));
        assert!(exposition.contains("fexiot_fed_sim_participants 5"));
        assert!(exposition.contains("fexiot_fed_sim_mean_loss 0.5"));
    }

    #[test]
    fn watch_state_tracks_round_deltas() {
        let reg = Arc::new(Registry::new());
        reg.set_flight_recorder(64);
        reg.mark("round[0]");
        reg.counter_add("fed.sim.participants", 4);
        reg.counter_add("fed.sim.dropped", 1);
        reg.mark("round[1]");
        reg.counter_add("fed.sim.participants", 3);
        reg.gauge_set("fed.sim.mean_loss", 0.125);
        let mut state = WatchState::new("t");
        for rec in reg.recent_events() {
            state.apply(&rec);
        }
        assert_eq!(state.current_round, Some(1));
        assert_eq!(state.rounds_started, 2);
        // Round 1 deltas: 3 new participants, no new drops.
        assert_eq!(state.round_delta("fed.sim.participants"), 3);
        assert_eq!(state.round_delta("fed.sim.dropped"), 0);
        let frame = state.render();
        assert!(frame.contains("round 1 in flight"), "{frame}");
        assert!(frame.contains("participants 3"), "{frame}");
        assert!(frame.contains("mean loss 0.1250"), "{frame}");
    }
}
