//! Opt-in heap-allocation tracking (`track-alloc` feature).
//!
//! [`TrackingAlloc`] wraps the system allocator and maintains four
//! process-wide atomics: cumulative allocation count and bytes, current live
//! bytes, and the peak of live bytes. When the `track-alloc` feature is
//! enabled it is installed as the `#[global_allocator]`, and the span
//! machinery in [`crate::registry`] reads [`stats`] at every span open/close
//! to attribute per-span `*_allocs` / `*_bytes` counters and a
//! `*_peak_live_bytes` gauge.
//!
//! Determinism contract: on a single-threaded workload the allocation count
//! and byte totals between two program points are a pure function of the
//! code executed, so same-seed runs produce bit-identical counter values —
//! the bench harness relies on this (`fexiot-bench/v1` treats alloc drift as
//! breaking). The tracker itself never allocates: all four cells are plain
//! atomics updated with relaxed operations.
//!
//! Without the feature nothing is installed, [`is_tracking`] is `false`
//! (a compile-time constant, so the span-path branches fold away), and
//! [`stats`] reports zeros.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that delegates to [`System`] and counts every
/// allocation. Safe to install from process start; it performs no
/// allocation, locking, or I/O of its own.
pub struct TrackingAlloc;

fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Relaxed);
    ALLOC_BYTES.fetch_add(size, Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Relaxed) + size;
    PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size() as u64, Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Counted as one new allocation of the new size plus a free of
            // the old block, mirroring what a manual alloc+copy+dealloc
            // would record.
            on_alloc(new_size as u64);
            LIVE_BYTES.fetch_sub(layout.size() as u64, Relaxed);
        }
        p
    }
}

#[cfg(feature = "track-alloc")]
#[global_allocator]
static GLOBAL_TRACKER: TrackingAlloc = TrackingAlloc;

/// Whether allocation tracking is compiled in. A `const fn` of a cfg flag,
/// so `is_tracking().then(..)` span-path captures cost nothing when off.
pub const fn is_tracking() -> bool {
    cfg!(feature = "track-alloc")
}

/// Point-in-time allocator totals. All-zero unless `track-alloc` is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Cumulative number of allocations (allocs + reallocs) since start.
    pub allocs: u64,
    /// Cumulative bytes requested since start.
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: u64,
    /// Highest `live_bytes` ever observed.
    pub peak_live_bytes: u64,
}

impl AllocStats {
    /// Allocation activity between `earlier` and `self`: cumulative fields
    /// subtract; `live_bytes` and `peak_live_bytes` carry this snapshot's
    /// point-in-time values.
    pub fn delta_since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            live_bytes: self.live_bytes,
            peak_live_bytes: self.peak_live_bytes,
        }
    }
}

/// Reads the current process-wide allocator totals.
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Relaxed),
        bytes: ALLOC_BYTES.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_cumulative_fields() {
        let a = AllocStats {
            allocs: 10,
            bytes: 1000,
            live_bytes: 400,
            peak_live_bytes: 900,
        };
        let b = AllocStats {
            allocs: 25,
            bytes: 2500,
            live_bytes: 300,
            peak_live_bytes: 1200,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.allocs, 15);
        assert_eq!(d.bytes, 1500);
        assert_eq!(d.live_bytes, 300);
        assert_eq!(d.peak_live_bytes, 1200);
    }

    #[cfg(feature = "track-alloc")]
    #[test]
    fn tracker_counts_a_real_allocation() {
        let before = stats();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let after = stats();
        assert!(after.allocs > before.allocs);
        assert!(after.bytes >= before.bytes + 4096);
        drop(v);
        let freed = stats();
        assert!(freed.live_bytes <= after.live_bytes);
    }
}
