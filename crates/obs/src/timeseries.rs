//! Per-round time-series: bounded ring-buffered series keyed by **round
//! index**, never wall-clock.
//!
//! The cumulative registry answers "what happened over the whole run"; this
//! store answers "when did it happen" at round granularity, which is what
//! fleet-health questions ("when did quorum health start collapsing?") need.
//! Samples are drawn from deterministic metrics only — timing (`*_us`,
//! `*_per_sec`) and environment (`par.*`) names are refused — so same-seed
//! runs produce byte-identical series at any thread count, and the section
//! can sit inside the diffable report.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::registry::{is_environment_name, is_timing_name, Snapshot};
use crate::Json;

/// Default number of samples retained per series. Far above any CI run
/// (rounds are tens to hundreds); long-running fleets keep the newest window.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// How a configured series draws its per-round value from a metrics
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleSpec {
    /// Increase of a counter since the previous round (0 on first sight).
    CounterDelta(String),
    /// Current value of a gauge (skipped while the gauge is unset).
    Gauge(String),
    /// Quantile of a cumulative histogram (skipped while empty). The series
    /// is named `{name}.p{100q}` (e.g. `fed.round.loss.p90`).
    HistQuantile { name: String, q: f64 },
}

impl SampleSpec {
    /// The series name this spec records under.
    pub fn series_name(&self) -> String {
        match self {
            SampleSpec::CounterDelta(n) | SampleSpec::Gauge(n) => n.clone(),
            SampleSpec::HistQuantile { name, q } => format!("{name}.p{}", (q * 100.0).round()),
        }
    }

    /// The underlying metric name.
    fn metric(&self) -> &str {
        match self {
            SampleSpec::CounterDelta(n) | SampleSpec::Gauge(n) => n,
            SampleSpec::HistQuantile { name, .. } => name,
        }
    }

    /// The `kind` tag serialized with the series.
    fn kind(&self) -> &'static str {
        match self {
            SampleSpec::CounterDelta(_) => "counter_delta",
            SampleSpec::Gauge(_) => "gauge",
            SampleSpec::HistQuantile { .. } => "quantile",
        }
    }
}

/// One bounded series of `(round, value)` samples, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// What the values are: `counter_delta`, `gauge`, `quantile`, or
    /// `sample` (pushed directly by the producer).
    pub kind: &'static str,
    pub rounds: VecDeque<u64>,
    pub values: VecDeque<f64>,
    /// Samples evicted after the ring filled.
    pub dropped: u64,
}

impl Series {
    fn new(kind: &'static str) -> Self {
        Self {
            kind,
            rounds: VecDeque::new(),
            values: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, capacity: usize, round: u64, value: f64) {
        while self.rounds.len() >= capacity.max(1) {
            self.rounds.pop_front();
            self.values.pop_front();
            self.dropped += 1;
        }
        self.rounds.push_back(round);
        self.values.push_back(value);
    }

    /// The newest `window` values (all of them when `window == 0` or larger
    /// than the series).
    pub fn tail(&self, window: usize) -> impl Iterator<Item = f64> + '_ {
        let skip = if window == 0 {
            0
        } else {
            self.values.len().saturating_sub(window)
        };
        self.values.iter().skip(skip).copied()
    }
}

/// The per-round time-series store. Fed one metrics [`Snapshot`] per round
/// (plus any direct samples), it maintains one bounded [`Series`] per
/// configured spec / pushed name.
#[derive(Debug, Clone)]
pub struct TimeSeriesStore {
    capacity: usize,
    specs: Vec<SampleSpec>,
    series: BTreeMap<String, Series>,
    /// Counter totals at the previous round, for delta specs.
    last_counters: HashMap<String, u64>,
}

impl Default for TimeSeriesStore {
    fn default() -> Self {
        Self::new(DEFAULT_SERIES_CAPACITY)
    }
}

impl TimeSeriesStore {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            specs: Vec::new(),
            series: BTreeMap::new(),
            last_counters: HashMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registers a snapshot-driven sample spec. Timing and environment
    /// metrics are refused (`Err`): series must stay deterministic.
    pub fn add_spec(&mut self, spec: SampleSpec) -> Result<(), String> {
        let metric = spec.metric();
        if is_timing_name(metric) || is_environment_name(metric) {
            return Err(format!(
                "time-series metric {metric:?} is nondeterministic (timing or environment); \
                 series must be byte-identical across same-seed runs"
            ));
        }
        if let SampleSpec::HistQuantile { q, .. } = &spec {
            if !(0.0..=1.0).contains(q) {
                return Err(format!("quantile {q} outside [0, 1] for metric {metric:?}"));
            }
        }
        self.specs.push(spec);
        Ok(())
    }

    /// Evaluates every registered spec against a metrics snapshot, recording
    /// one sample per spec for `round`. Gauge/quantile specs whose metric has
    /// no data yet are skipped (no placeholder samples).
    pub fn record_round(&mut self, round: u64, snap: &Snapshot) {
        // Specs are evaluated in registration order but stored in a sorted
        // map, so evaluation order never shows in the export.
        for i in 0..self.specs.len() {
            let spec = self.specs[i].clone();
            match &spec {
                SampleSpec::CounterDelta(name) => {
                    let total = snap.counters.get(name).copied().unwrap_or(0);
                    let prev = self.last_counters.insert(name.clone(), total).unwrap_or(0);
                    let delta = total.saturating_sub(prev);
                    self.push(round, &spec.series_name(), spec.kind(), delta as f64);
                }
                SampleSpec::Gauge(name) => {
                    if let Some(&v) = snap.gauges.get(name) {
                        self.push(round, &spec.series_name(), spec.kind(), v);
                    }
                }
                SampleSpec::HistQuantile { name, q } => {
                    if let Some(v) = snap.histograms.get(name).and_then(|h| h.quantile(*q)) {
                        self.push(round, &spec.series_name(), spec.kind(), v);
                    }
                }
            }
        }
    }

    /// Records one directly-computed sample (kind `sample`), e.g. a value the
    /// producer already has in hand. Nondeterministic names are dropped.
    pub fn push_sample(&mut self, round: u64, name: &str, value: f64) {
        if is_timing_name(name) || is_environment_name(name) || !value.is_finite() {
            return;
        }
        self.push(round, name, "sample", value);
    }

    fn push(&mut self, round: u64, name: &str, kind: &'static str, value: f64) {
        let cap = self.capacity;
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(kind))
            .push(cap, round, value);
    }

    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The report's `timeseries` section.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("kind".into(), Json::Str(s.kind.to_string())),
                        (
                            "rounds".into(),
                            Json::Arr(s.rounds.iter().map(|&r| Json::UInt(r)).collect()),
                        ),
                        (
                            "values".into(),
                            Json::Arr(s.values.iter().map(|&v| Json::Num(v)).collect()),
                        ),
                        ("dropped".into(), Json::UInt(s.dropped)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("capacity".into(), Json::UInt(self.capacity as u64)),
            ("series".into(), Json::Obj(series)),
        ])
    }
}

/// Validates a report's `timeseries` section (used by `validate_report` on
/// v2 documents).
pub fn validate_timeseries(doc: &Json) -> Result<(), String> {
    let obj = match doc {
        Json::Obj(_) => doc,
        _ => return Err("timeseries: not an object".into()),
    };
    obj.get("capacity")
        .and_then(Json::as_u64)
        .ok_or("timeseries: missing integer `capacity`")?;
    let series = obj
        .get("series")
        .ok_or("timeseries: missing `series` object")?;
    let entries = match series {
        Json::Obj(entries) => entries,
        _ => return Err("timeseries: `series` is not an object".into()),
    };
    for (name, s) in entries {
        let kind = s.get("kind").and_then(Json::as_str);
        if kind.is_none() {
            return Err(format!("timeseries series {name:?}: missing string `kind`"));
        }
        let rounds = match s.get("rounds") {
            Some(Json::Arr(a)) => a,
            _ => return Err(format!("timeseries series {name:?}: missing `rounds` array")),
        };
        let values = match s.get("values") {
            Some(Json::Arr(a)) => a,
            _ => return Err(format!("timeseries series {name:?}: missing `values` array")),
        };
        if rounds.len() != values.len() {
            return Err(format!(
                "timeseries series {name:?}: {} rounds vs {} values",
                rounds.len(),
                values.len()
            ));
        }
        if rounds.iter().any(|r| r.as_u64().is_none()) {
            return Err(format!("timeseries series {name:?}: non-integer round index"));
        }
        if values.iter().any(|v| v.as_f64().is_none()) {
            return Err(format!("timeseries series {name:?}: non-numeric value"));
        }
        s.get("dropped")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("timeseries series {name:?}: missing integer `dropped`"))?;
    }
    Ok(())
}

/// The fleet-health telemetry bundle a run carries: the time-series store
/// plus an optional SLO engine evaluated against it each round.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    pub store: TimeSeriesStore,
    pub slo: Option<crate::slo::SloEngine>,
}

impl FleetTelemetry {
    pub fn new(store: TimeSeriesStore, slo: Option<crate::slo::SloEngine>) -> Self {
        Self { store, slo }
    }

    /// Per-round hook: samples the snapshot-driven specs, then evaluates the
    /// SLO rules against the updated series. Returns the number of rules
    /// currently failing (0 when no engine is attached).
    pub fn observe_round(&mut self, round: u64, snap: &Snapshot) -> usize {
        self.store.record_round(round, snap);
        match &mut self.slo {
            Some(engine) => engine.evaluate(round, &self.store),
            None => 0,
        }
    }

    /// Direct sample pass-through (see [`TimeSeriesStore::push_sample`]).
    pub fn push_sample(&mut self, round: u64, name: &str, value: f64) {
        self.store.push_sample(round, name, value);
    }

    /// True when any rule failed at any evaluated round (the CI gate).
    pub fn slo_failed(&self) -> bool {
        self.slo.as_ref().is_some_and(|e| e.any_failed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snap_with(counters: &[(&str, u64)], gauges: &[(&str, f64)]) -> Snapshot {
        let reg = Registry::new();
        for (n, v) in counters {
            reg.counter_add(n, *v);
        }
        for (n, v) in gauges {
            reg.gauge_set(n, *v);
        }
        reg.metrics_snapshot()
    }

    #[test]
    fn counter_delta_series_tracks_per_round_increase() {
        let mut ts = TimeSeriesStore::new(16);
        ts.add_spec(SampleSpec::CounterDelta("fed.sim.dropped".into())).unwrap();
        ts.record_round(0, &snap_with(&[("fed.sim.dropped", 3)], &[]));
        ts.record_round(1, &snap_with(&[("fed.sim.dropped", 10)], &[]));
        let s = ts.series("fed.sim.dropped").unwrap();
        assert_eq!(s.kind, "counter_delta");
        assert_eq!(s.rounds, [0, 1]);
        assert_eq!(s.values, [3.0, 7.0]);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut ts = TimeSeriesStore::new(2);
        for round in 0..5u64 {
            ts.push_sample(round, "fed.round.x", round as f64);
        }
        let s = ts.series("fed.round.x").unwrap();
        assert_eq!(s.rounds, [3, 4]);
        assert_eq!(s.values, [3.0, 4.0]);
        assert_eq!(s.dropped, 3);
    }

    #[test]
    fn nondeterministic_metrics_are_refused() {
        let mut ts = TimeSeriesStore::default();
        assert!(ts.add_spec(SampleSpec::Gauge("featurize.items_per_sec".into())).is_err());
        assert!(ts
            .add_spec(SampleSpec::HistQuantile { name: "client.step_us".into(), q: 0.5 })
            .is_err());
        assert!(ts.add_spec(SampleSpec::CounterDelta("par.pool_threads".into())).is_err());
        ts.push_sample(0, "span_us", 1.0);
        ts.push_sample(0, "par.width", 4.0);
        ts.push_sample(0, "fed.nan", f64::NAN);
        assert!(ts.is_empty());
    }

    #[test]
    fn quantile_spec_skips_empty_histograms_then_samples() {
        let reg = Registry::new();
        let mut ts = TimeSeriesStore::new(8);
        ts.add_spec(SampleSpec::HistQuantile { name: "fed.round.loss".into(), q: 0.5 })
            .unwrap();
        ts.record_round(0, &reg.metrics_snapshot());
        assert!(ts.series("fed.round.loss.p50").is_none());
        for v in [0.1, 0.2, 0.3] {
            reg.hist_record("fed.round.loss", crate::buckets::LOSS, v);
        }
        ts.record_round(1, &reg.metrics_snapshot());
        let s = ts.series("fed.round.loss.p50").unwrap();
        assert_eq!(s.kind, "quantile");
        assert_eq!(s.rounds, [1]);
    }

    #[test]
    fn json_section_round_trips_validation() {
        let mut ts = TimeSeriesStore::new(4);
        ts.push_sample(0, "fed.round.a", 1.5);
        ts.push_sample(1, "fed.round.a", 2.5);
        let doc = ts.to_json();
        validate_timeseries(&doc).expect("section validates");
        let reparsed = Json::parse(&doc.to_string()).expect("parses");
        validate_timeseries(&reparsed).expect("reparsed section validates");
        assert!(validate_timeseries(&Json::Arr(vec![])).is_err());
        assert!(validate_timeseries(&Json::parse(r#"{"capacity":4,"series":{"s":{"kind":"sample","rounds":[0],"values":[1,2],"dropped":0}}}"#).unwrap()).is_err());
    }
}
