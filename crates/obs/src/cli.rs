//! Shared `--obs-*` command-line handling for every binary that exports the
//! global registry (`fexiot-cli` subcommands, the quickstart example, bench
//! bins). One place defines the known flags, the unknown-flag rejection, and
//! the begin/finish lifecycle, so adding a flag (like `--obs-flame`) lands
//! everywhere at once.
//!
//! The non-obs flag namespace stays permissive — callers keep their own
//! parsers — but anything spelled `--obs-*` is validated here: a typo like
//! `--obs-steam` silently dropping an event stream would defeat the point of
//! asking for one.

use crate::timeseries::{FleetTelemetry, SampleSpec, TimeSeriesStore, DEFAULT_SERIES_CAPACITY};
use crate::trace::CriticalPathEntry;
use std::path::{Path, PathBuf};

/// The observability flags every instrumented binary accepts (without the
/// `--` prefix). Anything else spelled `--obs-*` is rejected with this list.
pub const OBS_FLAGS: &[&str] = &[
    "obs-summary",
    "obs-out",
    "obs-stream",
    "obs-stream-timing",
    "obs-flame",
    "obs-slo",
    "obs-timeseries",
    "obs-trace",
    "obs-trace-timing",
];

/// Parsed observability options plus the begin/finish export lifecycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsCli {
    /// `--obs-summary`: print the span tree and metric digests after the run.
    pub summary: bool,
    /// `--obs-out DIR`: write a `fexiot-obs/v1` report to `DIR/<run>.json`.
    pub out: Option<PathBuf>,
    /// `--obs-stream FILE`: stream `fexiot-obs-events/v1` JSONL live to FILE.
    pub stream: Option<PathBuf>,
    /// `--obs-stream-timing include|exclude` (default include): `exclude`
    /// drops wall-clock fields so same-seed streams are byte-identical.
    pub include_stream_timing: bool,
    /// `--obs-flame FILE`: write collapsed stacks (flamegraph input, value =
    /// exclusive µs per span path) to FILE after the run.
    pub flame: Option<PathBuf>,
    /// `--obs-slo FILE`: evaluate the SLO rules in FILE (TOML or JSON) each
    /// round; verdicts print after the run, land in the report's `slo`
    /// section, and a failing rule makes the run exit nonzero. Implies
    /// per-round time-series collection.
    pub slo: Option<PathBuf>,
    /// `--obs-timeseries [CAP]`: collect the per-round time-series (report
    /// section `timeseries`); optional CAP overrides the per-series ring
    /// capacity (default [`DEFAULT_SERIES_CAPACITY`]).
    pub timeseries: Option<usize>,
    /// `--obs-trace FILE`: write the causal trace graph
    /// (`fexiot-obs-causal/v1`) to FILE after the run. Federated runs feed it
    /// fault events; other runs write a run-span-only graph. Enables the
    /// `root_cause` report section when SLO rules are attached.
    pub trace: Option<PathBuf>,
    /// `--obs-trace-timing include|exclude` (default include): `exclude`
    /// drops the `wall_us` fields so same-seed graphs are byte-identical
    /// across thread widths (mirrors `--obs-stream-timing`).
    pub include_trace_timing: bool,
}

impl ObsCli {
    /// Builds from pre-parsed `(flag, value)` pairs (flag names without the
    /// `--` prefix; boolean flags carry an empty value). Non-obs pairs are
    /// ignored; malformed obs flags are an `Err` with the known-flag list.
    pub fn from_pairs(values: &[(String, String)]) -> Result<ObsCli, String> {
        for (key, _) in values {
            if key.starts_with("obs-") && !OBS_FLAGS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown observability flag --{key}; known flags: {}",
                    OBS_FLAGS
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        let get = |name: &str| {
            values
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        };
        let path_flag = |name: &str| -> Result<Option<PathBuf>, String> {
            match get(name) {
                None => Ok(None),
                Some("") => Err(format!("--{name} requires a value")),
                Some(v) => Ok(Some(PathBuf::from(v))),
            }
        };
        let include_stream_timing = match get("obs-stream-timing") {
            None | Some("include") => true,
            Some("exclude") => false,
            Some(other) => {
                return Err(format!(
                    "--obs-stream-timing must be 'include' or 'exclude', got {other:?}"
                ))
            }
        };
        let include_trace_timing = match get("obs-trace-timing") {
            None | Some("include") => true,
            Some("exclude") => false,
            Some(other) => {
                return Err(format!(
                    "--obs-trace-timing must be 'include' or 'exclude', got {other:?}"
                ))
            }
        };
        let timeseries = match get("obs-timeseries") {
            None => None,
            Some("") => Some(DEFAULT_SERIES_CAPACITY),
            Some(v) => match v.parse::<usize>() {
                Ok(cap) if cap > 0 => Some(cap),
                _ => {
                    return Err(format!(
                        "--obs-timeseries takes an optional positive capacity, got {v:?}"
                    ))
                }
            },
        };
        Ok(ObsCli {
            summary: get("obs-summary").is_some(),
            out: path_flag("obs-out")?,
            stream: path_flag("obs-stream")?,
            include_stream_timing,
            flame: path_flag("obs-flame")?,
            slo: path_flag("obs-slo")?,
            timeseries,
            trace: path_flag("obs-trace")?,
            include_trace_timing,
        })
    }

    /// Builds straight from raw argv tokens (for binaries without a flag
    /// parser, like the quickstart example). Only `--obs-*` tokens are
    /// interpreted; a token's value is the following token unless that also
    /// starts with `--`.
    pub fn from_argv(argv: &[String]) -> Result<ObsCli, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let Some(name) = argv[i].strip_prefix("--") else {
                i += 1;
                continue;
            };
            if !name.starts_with("obs-") {
                i += 1;
                continue;
            }
            match argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    pairs.push((name.to_string(), value.clone()));
                    i += 2;
                }
                None => {
                    pairs.push((name.to_string(), String::new()));
                    i += 1;
                }
            }
        }
        Self::from_pairs(&pairs)
    }

    /// True when any export was requested (and the global registry should be
    /// enabled for the run).
    pub fn enabled(&self) -> bool {
        self.summary
            || self.out.is_some()
            || self.stream.is_some()
            || self.flame.is_some()
            || self.trace.is_some()
            || self.telemetry_enabled()
    }

    /// True when per-round telemetry collection was requested (`--obs-slo`
    /// implies it: rules need series to evaluate against).
    pub fn telemetry_enabled(&self) -> bool {
        self.slo.is_some() || self.timeseries.is_some()
    }

    /// Builds the fleet-telemetry bundle the run should carry: `None` when
    /// neither telemetry flag was given, otherwise a time-series store at the
    /// requested capacity — pre-loaded with the default snapshot-driven specs
    /// (loss quantiles) — plus the SLO engine parsed from `--obs-slo`'s file.
    pub fn fleet_telemetry(&self) -> Result<Option<FleetTelemetry>, String> {
        if !self.telemetry_enabled() {
            return Ok(None);
        }
        let mut store = TimeSeriesStore::new(self.timeseries.unwrap_or(DEFAULT_SERIES_CAPACITY));
        for q in [0.5, 0.9] {
            store
                .add_spec(SampleSpec::HistQuantile { name: "fed.round.loss".into(), q })
                .expect("default specs are deterministic");
        }
        let slo = match &self.slo {
            None => None,
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read SLO rules {}: {e}", path.display()))?;
                Some(
                    crate::slo::SloEngine::parse(&text)
                        .map_err(|e| format!("{}: {e}", path.display()))?,
                )
            }
        };
        Ok(Some(FleetTelemetry::new(store, slo)))
    }

    /// Enables the global registry and opens the event stream, as requested.
    /// Call once before the instrumented work.
    pub fn begin(&self, run: &str) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        crate::set_global_enabled(true);
        if let Some(path) = &self.stream {
            crate::stream_global_to_file(path, run, self.include_stream_timing)
                .map_err(|e| format!("cannot open obs stream {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Closes the stream and writes the requested exports (summary to
    /// stdout, report, collapsed stacks). Call once after the instrumented
    /// work; `critical_path` comes from federated runs.
    pub fn finish(
        &self,
        run: &str,
        critical_path: Option<&[CriticalPathEntry]>,
    ) -> Result<(), String> {
        self.finish_with(run, critical_path, None)
    }

    /// [`ObsCli::finish`] plus fleet telemetry: SLO verdicts print one line
    /// per rule, and the report (if requested) carries the `timeseries` /
    /// `slo` sections. Callers gate their exit code on
    /// [`FleetTelemetry::slo_failed`], not on this function's `Result` —
    /// a failed SLO is a run verdict, not an export error.
    pub fn finish_with(
        &self,
        run: &str,
        critical_path: Option<&[CriticalPathEntry]>,
        telemetry: Option<&FleetTelemetry>,
    ) -> Result<(), String> {
        self.finish_full(run, critical_path, telemetry, None)
    }

    /// [`ObsCli::finish_with`] plus the causal trace graph: when `--obs-trace`
    /// was given, the graph (or a run-span-only placeholder for runs that
    /// don't build one) is written to the requested file, and — if SLO rules
    /// are attached — the report gains a v3 `root_cause` section attributing
    /// each failing rule to its dominant fault kinds.
    pub fn finish_full(
        &self,
        run: &str,
        critical_path: Option<&[CriticalPathEntry]>,
        telemetry: Option<&FleetTelemetry>,
        trace: Option<&crate::causal::CausalGraph>,
    ) -> Result<(), String> {
        self.finish_serve(run, critical_path, telemetry, trace, None)
    }

    /// [`ObsCli::finish_full`] plus the streaming-service summary: when the
    /// serving pipeline supplies its rendered stats, the report (if
    /// requested) carries them as the v4 `stream` section.
    pub fn finish_serve(
        &self,
        run: &str,
        critical_path: Option<&[CriticalPathEntry]>,
        telemetry: Option<&FleetTelemetry>,
        trace: Option<&crate::causal::CausalGraph>,
        stream_section: Option<crate::json::Json>,
    ) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        if self.stream.is_some() {
            crate::close_global_stream();
        }
        let snap = crate::global().snapshot();
        if self.summary {
            println!("{}", crate::render_summary_with(&snap, critical_path));
        }
        if let Some(engine) = telemetry.and_then(|t| t.slo.as_ref()) {
            for verdict in engine.verdicts() {
                println!("{}", verdict.render());
            }
        }
        let placeholder;
        let graph = match (self.trace.as_ref(), trace) {
            (None, _) => None,
            (Some(_), Some(g)) => Some(g),
            (Some(_), None) => {
                placeholder = crate::causal::CausalBuilder::new(run, 0, 0).finish();
                Some(&placeholder)
            }
        };
        if let (Some(file), Some(graph)) = (&self.trace, graph) {
            let timing = if self.include_trace_timing {
                crate::report::Timing::Include
            } else {
                crate::report::Timing::Exclude
            };
            std::fs::write(file, format!("{}\n", graph.to_json(timing)))
                .map_err(|e| format!("cannot write causal trace to {}: {e}", file.display()))?;
            println!("causal trace written to {}", file.display());
        }
        if let Some(dir) = &self.out {
            let mut extras = telemetry
                .map(crate::report::ReportExtras::from_telemetry)
                .unwrap_or_default();
            if let (Some(graph), Some(engine)) = (graph, telemetry.and_then(|t| t.slo.as_ref())) {
                extras.root_cause = Some(crate::causal::root_cause_to_json(
                    &crate::causal::root_cause(graph, engine),
                ));
            }
            extras.stream = stream_section;
            let path = crate::report::write_report_with(dir, run, &snap, critical_path, &extras)
                .map_err(|e| format!("cannot write obs report under {}: {e}", dir.display()))?;
            println!("obs report written to {}", path.display());
        }
        if let Some(file) = &self.flame {
            let path = crate::profile::write_flame(Path::new(file), &snap)
                .map_err(|e| format!("cannot write collapsed stacks to {}: {e}", file.display()))?;
            println!("collapsed stacks written to {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(list: &[(&str, &str)]) -> Vec<(String, String)> {
        list.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn known_flags_parse_into_fields() {
        let cli = ObsCli::from_pairs(&pairs(&[
            ("obs-summary", ""),
            ("obs-out", "results/obs"),
            ("obs-stream", "events.jsonl"),
            ("obs-stream-timing", "exclude"),
            ("obs-flame", "run.flame"),
            ("graphs", "100"),
        ]))
        .expect("all flags known");
        assert!(cli.summary);
        assert_eq!(cli.out.as_deref(), Some(Path::new("results/obs")));
        assert_eq!(cli.stream.as_deref(), Some(Path::new("events.jsonl")));
        assert!(!cli.include_stream_timing);
        assert_eq!(cli.flame.as_deref(), Some(Path::new("run.flame")));
        assert!(cli.enabled());
    }

    #[test]
    fn unknown_obs_flag_is_rejected_with_the_known_list() {
        let err = ObsCli::from_pairs(&pairs(&[("obs-steam", "x")])).unwrap_err();
        assert!(err.contains("--obs-steam"), "names the offender: {err}");
        for known in OBS_FLAGS {
            assert!(err.contains(known), "lists --{known}: {err}");
        }
    }

    #[test]
    fn bad_stream_timing_mode_and_missing_values_are_rejected() {
        let err = ObsCli::from_pairs(&pairs(&[("obs-stream-timing", "sometimes")])).unwrap_err();
        assert!(err.contains("sometimes"));
        let err = ObsCli::from_pairs(&pairs(&[("obs-flame", "")])).unwrap_err();
        assert!(err.contains("--obs-flame"));
        // Non-obs flags stay permissive; only the obs namespace is strict.
        let cli = ObsCli::from_pairs(&pairs(&[("definitely-not-a-flag", "x")])).unwrap();
        assert!(!cli.enabled());
    }

    #[test]
    fn telemetry_flags_parse_and_enable_collection() {
        let cli = ObsCli::from_pairs(&pairs(&[("obs-timeseries", "")])).unwrap();
        assert_eq!(cli.timeseries, Some(DEFAULT_SERIES_CAPACITY));
        assert!(cli.telemetry_enabled() && cli.enabled());
        let cli = ObsCli::from_pairs(&pairs(&[("obs-timeseries", "128")])).unwrap();
        assert_eq!(cli.timeseries, Some(128));
        let tel = cli.fleet_telemetry().unwrap().expect("telemetry on");
        assert_eq!(tel.store.capacity(), 128);
        assert!(tel.slo.is_none());
        assert!(ObsCli::from_pairs(&pairs(&[("obs-timeseries", "zero")])).is_err());
        assert!(ObsCli::from_pairs(&pairs(&[("obs-timeseries", "0")])).is_err());
        // --obs-slo needs a path; a missing file surfaces at build time.
        let cli = ObsCli::from_pairs(&pairs(&[("obs-slo", "/nonexistent/rules.toml")])).unwrap();
        assert!(cli.telemetry_enabled());
        assert!(cli.fleet_telemetry().unwrap_err().contains("rules.toml"));
        let cli = ObsCli::from_pairs(&pairs(&[])).unwrap();
        assert!(cli.fleet_telemetry().unwrap().is_none());
    }

    #[test]
    fn trace_flags_parse_and_enable_export() {
        let cli = ObsCli::from_pairs(&pairs(&[("obs-trace", "trace.json")])).unwrap();
        assert_eq!(cli.trace.as_deref(), Some(Path::new("trace.json")));
        assert!(cli.include_trace_timing, "defaults to include");
        assert!(cli.enabled());
        let cli = ObsCli::from_pairs(&pairs(&[
            ("obs-trace", "trace.json"),
            ("obs-trace-timing", "exclude"),
        ]))
        .unwrap();
        assert!(!cli.include_trace_timing);
        assert!(ObsCli::from_pairs(&pairs(&[("obs-trace", "")])).is_err());
        assert!(ObsCli::from_pairs(&pairs(&[("obs-trace-timing", "never")])).is_err());
    }

    #[test]
    fn argv_scan_only_interprets_obs_tokens() {
        let argv: Vec<String> = [
            "positional",
            "--graphs",
            "100",
            "--obs-flame",
            "q.flame",
            "--obs-summary",
            "--obs-out",
            "dir",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = ObsCli::from_argv(&argv).expect("parses");
        assert_eq!(cli.flame.as_deref(), Some(Path::new("q.flame")));
        assert!(cli.summary);
        assert_eq!(cli.out.as_deref(), Some(Path::new("dir")));
        assert!(cli.include_stream_timing, "defaults to include");
        // A boolean obs flag followed by another flag stays boolean.
        let argv: Vec<String> = ["--obs-summary", "--graphs"].iter().map(|s| s.to_string()).collect();
        assert!(ObsCli::from_argv(&argv).expect("parses").summary);
    }
}
