//! Shared `--obs-*` command-line handling for every binary that exports the
//! global registry (`fexiot-cli` subcommands, the quickstart example, bench
//! bins). One place defines the known flags, the unknown-flag rejection, and
//! the begin/finish lifecycle, so adding a flag (like `--obs-flame`) lands
//! everywhere at once.
//!
//! The non-obs flag namespace stays permissive — callers keep their own
//! parsers — but anything spelled `--obs-*` is validated here: a typo like
//! `--obs-steam` silently dropping an event stream would defeat the point of
//! asking for one.

use crate::trace::CriticalPathEntry;
use std::path::{Path, PathBuf};

/// The observability flags every instrumented binary accepts (without the
/// `--` prefix). Anything else spelled `--obs-*` is rejected with this list.
pub const OBS_FLAGS: &[&str] = &[
    "obs-summary",
    "obs-out",
    "obs-stream",
    "obs-stream-timing",
    "obs-flame",
];

/// Parsed observability options plus the begin/finish export lifecycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsCli {
    /// `--obs-summary`: print the span tree and metric digests after the run.
    pub summary: bool,
    /// `--obs-out DIR`: write a `fexiot-obs/v1` report to `DIR/<run>.json`.
    pub out: Option<PathBuf>,
    /// `--obs-stream FILE`: stream `fexiot-obs-events/v1` JSONL live to FILE.
    pub stream: Option<PathBuf>,
    /// `--obs-stream-timing include|exclude` (default include): `exclude`
    /// drops wall-clock fields so same-seed streams are byte-identical.
    pub include_stream_timing: bool,
    /// `--obs-flame FILE`: write collapsed stacks (flamegraph input, value =
    /// exclusive µs per span path) to FILE after the run.
    pub flame: Option<PathBuf>,
}

impl ObsCli {
    /// Builds from pre-parsed `(flag, value)` pairs (flag names without the
    /// `--` prefix; boolean flags carry an empty value). Non-obs pairs are
    /// ignored; malformed obs flags are an `Err` with the known-flag list.
    pub fn from_pairs(values: &[(String, String)]) -> Result<ObsCli, String> {
        for (key, _) in values {
            if key.starts_with("obs-") && !OBS_FLAGS.contains(&key.as_str()) {
                return Err(format!(
                    "unknown observability flag --{key}; known flags: {}",
                    OBS_FLAGS
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        let get = |name: &str| {
            values
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        };
        let path_flag = |name: &str| -> Result<Option<PathBuf>, String> {
            match get(name) {
                None => Ok(None),
                Some("") => Err(format!("--{name} requires a value")),
                Some(v) => Ok(Some(PathBuf::from(v))),
            }
        };
        let include_stream_timing = match get("obs-stream-timing") {
            None | Some("include") => true,
            Some("exclude") => false,
            Some(other) => {
                return Err(format!(
                    "--obs-stream-timing must be 'include' or 'exclude', got {other:?}"
                ))
            }
        };
        Ok(ObsCli {
            summary: get("obs-summary").is_some(),
            out: path_flag("obs-out")?,
            stream: path_flag("obs-stream")?,
            include_stream_timing,
            flame: path_flag("obs-flame")?,
        })
    }

    /// Builds straight from raw argv tokens (for binaries without a flag
    /// parser, like the quickstart example). Only `--obs-*` tokens are
    /// interpreted; a token's value is the following token unless that also
    /// starts with `--`.
    pub fn from_argv(argv: &[String]) -> Result<ObsCli, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let Some(name) = argv[i].strip_prefix("--") else {
                i += 1;
                continue;
            };
            if !name.starts_with("obs-") {
                i += 1;
                continue;
            }
            match argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    pairs.push((name.to_string(), value.clone()));
                    i += 2;
                }
                None => {
                    pairs.push((name.to_string(), String::new()));
                    i += 1;
                }
            }
        }
        Self::from_pairs(&pairs)
    }

    /// True when any export was requested (and the global registry should be
    /// enabled for the run).
    pub fn enabled(&self) -> bool {
        self.summary || self.out.is_some() || self.stream.is_some() || self.flame.is_some()
    }

    /// Enables the global registry and opens the event stream, as requested.
    /// Call once before the instrumented work.
    pub fn begin(&self, run: &str) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        crate::set_global_enabled(true);
        if let Some(path) = &self.stream {
            crate::stream_global_to_file(path, run, self.include_stream_timing)
                .map_err(|e| format!("cannot open obs stream {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// Closes the stream and writes the requested exports (summary to
    /// stdout, report, collapsed stacks). Call once after the instrumented
    /// work; `critical_path` comes from federated runs.
    pub fn finish(
        &self,
        run: &str,
        critical_path: Option<&[CriticalPathEntry]>,
    ) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        if self.stream.is_some() {
            crate::close_global_stream();
        }
        let snap = crate::global().snapshot();
        if self.summary {
            println!("{}", crate::render_summary_with(&snap, critical_path));
        }
        if let Some(dir) = &self.out {
            let path = crate::write_report_full(dir, run, &snap, critical_path)
                .map_err(|e| format!("cannot write obs report under {}: {e}", dir.display()))?;
            println!("obs report written to {}", path.display());
        }
        if let Some(file) = &self.flame {
            let path = crate::profile::write_flame(Path::new(file), &snap)
                .map_err(|e| format!("cannot write collapsed stacks to {}: {e}", file.display()))?;
            println!("collapsed stacks written to {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(list: &[(&str, &str)]) -> Vec<(String, String)> {
        list.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn known_flags_parse_into_fields() {
        let cli = ObsCli::from_pairs(&pairs(&[
            ("obs-summary", ""),
            ("obs-out", "results/obs"),
            ("obs-stream", "events.jsonl"),
            ("obs-stream-timing", "exclude"),
            ("obs-flame", "run.flame"),
            ("graphs", "100"),
        ]))
        .expect("all flags known");
        assert!(cli.summary);
        assert_eq!(cli.out.as_deref(), Some(Path::new("results/obs")));
        assert_eq!(cli.stream.as_deref(), Some(Path::new("events.jsonl")));
        assert!(!cli.include_stream_timing);
        assert_eq!(cli.flame.as_deref(), Some(Path::new("run.flame")));
        assert!(cli.enabled());
    }

    #[test]
    fn unknown_obs_flag_is_rejected_with_the_known_list() {
        let err = ObsCli::from_pairs(&pairs(&[("obs-steam", "x")])).unwrap_err();
        assert!(err.contains("--obs-steam"), "names the offender: {err}");
        for known in OBS_FLAGS {
            assert!(err.contains(known), "lists --{known}: {err}");
        }
    }

    #[test]
    fn bad_stream_timing_mode_and_missing_values_are_rejected() {
        let err = ObsCli::from_pairs(&pairs(&[("obs-stream-timing", "sometimes")])).unwrap_err();
        assert!(err.contains("sometimes"));
        let err = ObsCli::from_pairs(&pairs(&[("obs-flame", "")])).unwrap_err();
        assert!(err.contains("--obs-flame"));
        // Non-obs flags stay permissive; only the obs namespace is strict.
        let cli = ObsCli::from_pairs(&pairs(&[("definitely-not-a-flag", "x")])).unwrap();
        assert!(!cli.enabled());
    }

    #[test]
    fn argv_scan_only_interprets_obs_tokens() {
        let argv: Vec<String> = [
            "positional",
            "--graphs",
            "100",
            "--obs-flame",
            "q.flame",
            "--obs-summary",
            "--obs-out",
            "dir",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = ObsCli::from_argv(&argv).expect("parses");
        assert_eq!(cli.flame.as_deref(), Some(Path::new("q.flame")));
        assert!(cli.summary);
        assert_eq!(cli.out.as_deref(), Some(Path::new("dir")));
        assert!(cli.include_stream_timing, "defaults to include");
        // A boolean obs flag followed by another flag stays boolean.
        let argv: Vec<String> = ["--obs-summary", "--graphs"].iter().map(|s| s.to_string()).collect();
        assert!(ObsCli::from_argv(&argv).expect("parses").summary);
    }
}
