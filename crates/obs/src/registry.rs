//! The observability registry: hierarchical wall-clock spans plus counters,
//! gauges, and fixed-bucket histograms, behind one coarse mutex.
//!
//! Design constraints (see DESIGN.md §Observability):
//!
//! * **Cheap when off.** Every recording entry point first reads one relaxed
//!   atomic; a disabled registry does no allocation, no formatting, and no
//!   locking.
//! * **Unwind safe.** Spans are closed by [`SpanGuard`]'s `Drop`, so a
//!   panicking scope still records its span, and the inner mutex is treated
//!   as poison-tolerant.
//! * **Deterministic data, nondeterministic time.** Only span `elapsed_us`
//!   values depend on the wall clock. Counters, gauges, histograms, span
//!   names, and tree shape are pure functions of the seeded workload, which
//!   is what lets run reports be diffed across runs (timing excluded).

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

/// Spans retained per registry before new ones are dropped (a backstop for
/// pathological instrumentation loops, far above any real run).
const MAX_SPANS: usize = 200_000;

/// Default capacity of the in-memory flight recorder (recent events kept for
/// post-mortem inspection when streaming is on).
pub const FLIGHT_RECORDER_CAP: usize = 4096;

/// One observability event, emitted as it happens (streaming) and retained
/// in the bounded flight recorder. Span events carry the span's registry
/// index as a stable `id` so open/close pairs can be matched in the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened (`parent` = id of the enclosing open span, if any).
    SpanOpen {
        id: u64,
        parent: Option<u64>,
        name: String,
    },
    /// A span closed. `elapsed_us` always holds the wall-clock duration
    /// here; the JSONL writer strips it in timing-excluded mode.
    SpanClose {
        id: u64,
        name: String,
        elapsed_us: u64,
    },
    /// A counter was incremented by `delta`, reaching `total`.
    Counter { name: String, delta: u64, total: u64 },
    /// A gauge was set.
    Gauge { name: String, value: f64 },
    /// One histogram sample was recorded.
    Hist { name: String, value: f64 },
    /// A free-form boundary marker (e.g. `round[3]` at round start).
    Mark { name: String },
}

impl Event {
    /// The metric/span name this event is about.
    pub fn name(&self) -> &str {
        match self {
            Event::SpanOpen { name, .. }
            | Event::SpanClose { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Hist { name, .. }
            | Event::Mark { name } => name,
        }
    }
}

/// An [`Event`] stamped with its per-registry sequence number (strictly
/// increasing, so a parsed stream can be checked for gaps/reordering).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub seq: u64,
    pub event: Event,
}

/// Histogram names ending in this suffix hold wall-clock data; they are
/// excluded from deterministic exports and from timing-excluded streams,
/// and `obs-diff` treats their drift as advisory.
pub const TIMING_SUFFIX: &str = "_us";

/// Gauge names ending in this suffix hold wall-clock-derived throughput
/// (items per second). Like `_us` data they are nondeterministic, so they
/// get the same treatment: dropped from deterministic exports and
/// timing-excluded streams, advisory in `obs-diff`.
pub const RATE_SUFFIX: &str = "_per_sec";

/// True when a metric name designates wall-clock (nondeterministic) data:
/// `_us` durations and `_per_sec` throughput rates.
pub fn is_timing_name(name: &str) -> bool {
    name.ends_with(TIMING_SUFFIX) || name.ends_with(RATE_SUFFIX)
}

/// Prefix for metrics describing the *execution environment* (worker-pool
/// sizing and other host facts from `fexiot-par`) rather than workload
/// results. They legitimately differ between otherwise-identical runs on
/// different machines or `--threads` settings, so deterministic exports drop
/// them and `obs-diff` treats their drift as advisory.
pub const ENVIRONMENT_PREFIX: &str = "par.";

/// True when a metric name designates execution-environment data (see
/// [`ENVIRONMENT_PREFIX`]): machine-dependent but not wall-clock.
pub fn is_environment_name(name: &str) -> bool {
    name.starts_with(ENVIRONMENT_PREFIX)
}

/// Live streaming state: a JSONL sink plus the timing mode.
struct StreamState {
    sink: Box<dyn Write + Send>,
    include_timing: bool,
}

/// One recorded span instance.
struct SpanRec {
    name: String,
    parent: Option<usize>,
    start: Instant,
    /// Microseconds; `None` while the span is still open.
    elapsed_us: Option<u64>,
    /// Process-wide allocator stats at span open; `Some` only when the
    /// `track-alloc` feature is compiled in, so the default build carries no
    /// per-span allocation data at all.
    alloc_at_open: Option<crate::alloc::AllocStats>,
}

/// A fixed-bucket histogram over finite `f64` samples.
///
/// `edges` are the bucket boundaries: a sample `v` lands in interior bucket
/// `i` when `edges[i] <= v < edges[i + 1]`, below `edges[0]` in the
/// underflow bucket, and at or above the last edge in the overflow bucket.
/// Non-finite samples (NaN, ±∞) are rejected and only counted.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    rejected: u64,
}

impl Histogram {
    /// Creates a histogram. Edges must be at least two strictly increasing
    /// finite values; returns `None` otherwise.
    pub fn new(edges: &[f64]) -> Option<Self> {
        if edges.len() < 2
            || edges.iter().any(|e| !e.is_finite())
            || edges.windows(2).any(|w| w[0] >= w[1])
        {
            return None;
        }
        Some(Self {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() - 1],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected: 0,
        })
    }

    /// Records one sample; non-finite values are rejected (counted only).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.rejected += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < self.edges[0] {
            self.underflow += 1;
        } else if v >= *self.edges.last().expect("edges non-empty") {
            self.overflow += 1;
        } else {
            // Edges are sorted; partition_point returns the first edge > v.
            let i = self.edges.partition_point(|&e| e <= v) - 1;
            self.counts[i] += 1;
        }
    }

    /// Folds another histogram's snapshot into this one. Merging is
    /// commutative and associative on every integer field (counts, under/
    /// overflow, rejected) and on min/max; `sum` is associative up to f64
    /// rounding. Returns `false` (and merges nothing) when the bucket edges
    /// differ — histograms with different shapes cannot be combined.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> bool {
        if self.edges != other.edges {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.rejected += other.rejected;
        if let Some(m) = other.min {
            self.min = self.min.min(m);
        }
        if let Some(m) = other.max {
            self.max = self.max.max(m);
        }
        true
    }

    /// Rebuilds a histogram from a snapshot (for merging into a registry
    /// that has not seen this metric yet). `None` when the snapshot's edges
    /// are malformed.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Option<Self> {
        let mut h = Histogram::new(&snap.edges)?;
        h.counts.clone_from(&snap.counts);
        h.underflow = snap.underflow;
        h.overflow = snap.overflow;
        h.count = snap.count;
        h.sum = snap.sum;
        h.min = snap.min.unwrap_or(f64::INFINITY);
        h.max = snap.max.unwrap_or(f64::NEG_INFINITY);
        h.rejected = snap.rejected;
        Some(h)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            counts: self.counts.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
            count: self.count,
            sum: self.sum,
            min: (self.count > 0).then_some(self.min),
            max: (self.count > 0).then_some(self.max),
            rejected: self.rejected,
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub edges: Vec<f64>,
    /// Interior bucket counts (`edges.len() - 1` entries).
    pub counts: Vec<u64>,
    pub underflow: u64,
    pub overflow: u64,
    /// Accepted (finite) samples, including under/overflow.
    pub count: u64,
    pub sum: f64,
    pub min: Option<f64>,
    pub max: Option<f64>,
    /// Non-finite samples rejected.
    pub rejected: u64,
}

impl HistogramSnapshot {
    /// Mean of accepted samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Quantile estimate over the bucketed samples.
    ///
    /// Returns `None` when the histogram is empty or `q` is NaN or outside
    /// `[0, 1]`. Otherwise the estimate is the nearest-rank bucket with
    /// linear interpolation inside interior buckets, resolved against the
    /// exact extremes the histogram tracked: `q == 0` → `min`, `q == 1` →
    /// `max`, ranks falling in the underflow bucket → `min`, in the overflow
    /// bucket → `max`, and interior interpolations are clamped to
    /// `[min, max]` so an estimate never leaves the observed range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        if q <= 0.0 {
            return Some(min);
        }
        if q >= 1.0 {
            return Some(max);
        }
        // Smallest rank r in [1, count] such that q*count samples sit at or
        // below the r-th; walk cumulative counts to find its bucket.
        let target = ((q * self.count as f64).ceil().max(1.0) as u64).min(self.count);
        let mut seen = self.underflow;
        if target <= seen {
            return Some(min);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if target <= seen + c {
                let lo = self.edges[i];
                let hi = self.edges[i + 1];
                let frac = (target - seen) as f64 / c as f64;
                return Some((lo + frac * (hi - lo)).clamp(min, max));
            }
            seen += c;
        }
        // Remaining ranks live in the overflow bucket.
        Some(max)
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub name: String,
    /// Wall-clock microseconds (elapsed-so-far for spans still open at
    /// snapshot time). Excluded from deterministic exports.
    pub elapsed_us: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of nodes in this subtree (self included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }
}

/// Point-in-time copy of everything a registry holds. Maps are ordered so
/// exports are schema-stable and diffable.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub roots: Vec<SpanNode>,
    pub counters: std::collections::BTreeMap<String, u64>,
    pub gauges: std::collections::BTreeMap<String, f64>,
    pub histograms: std::collections::BTreeMap<String, HistogramSnapshot>,
    /// Spans discarded after the retention cap was hit.
    pub dropped_spans: u64,
}

impl Snapshot {
    /// Finds the first span node with this exact name, anywhere in the tree.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.roots, name)
    }
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRec>,
    /// Per-thread stack of open span indices (hierarchy = call nesting).
    open: HashMap<ThreadId, Vec<usize>>,
    // Metric maps are hash maps so the hot recording paths (and fleet-scale
    // `absorb` merges) pay O(1) per touch; snapshots sort into `BTreeMap`s
    // at export time to keep reports schema-stable and diffable.
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    histograms: HashMap<String, Histogram>,
    dropped_spans: u64,
    /// Next event sequence number (monotonic per registry, reset by `reset`).
    next_seq: u64,
    /// Bounded flight recorder of recent events: `(capacity, buffer)`.
    /// `None` = off, no overhead.
    recorder: Option<(usize, VecDeque<EventRecord>)>,
    /// Live JSONL event sink (`None` = no streaming).
    stream: Option<StreamState>,
}

impl Inner {
    /// True when events need to be materialized at all.
    fn events_on(&self) -> bool {
        self.recorder.is_some() || self.stream.is_some()
    }

    /// Stamps, records, and streams one event. Must be called under the
    /// registry lock; a sink write failure silently stops the stream (the
    /// recorder keeps working) — observability must never fail the run.
    fn emit(&mut self, event: Event) {
        if !self.events_on() {
            return;
        }
        let rec = EventRecord {
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if let Some(state) = &mut self.stream {
            let line = crate::stream::event_to_line(&rec, state.include_timing);
            let dead = match line {
                Some(text) => {
                    state.sink.write_all(text.as_bytes()).is_err()
                        || state.sink.write_all(b"\n").is_err()
                        || state.sink.flush().is_err()
                }
                None => false,
            };
            if dead {
                self.stream = None;
            }
        }
        if let Some((cap, buf)) = &mut self.recorder {
            while buf.len() >= *cap {
                buf.pop_front();
            }
            buf.push_back(rec);
        }
    }

    /// Counter update + event emission; must be called under the lock.
    fn counter_add_locked(&mut self, name: &str, v: u64) {
        let total = match self.counters.get_mut(name) {
            Some(c) => {
                *c += v;
                *c
            }
            None => {
                self.counters.insert(name.to_string(), v);
                v
            }
        };
        if self.events_on() {
            self.emit(Event::Counter {
                name: name.to_string(),
                delta: v,
                total,
            });
        }
    }

    /// Attributes the allocator delta over a closing span's window to that
    /// span's `*_allocs` / `*_bytes` counters and `*_peak_live_bytes` gauge
    /// (gauge keeps the max across the span's instances). Only reachable
    /// when the `track-alloc` feature captured stats at span open, so
    /// default builds never grow these metrics.
    fn attribute_alloc(
        &mut self,
        span_name: &str,
        open: crate::alloc::AllocStats,
        now: crate::alloc::AllocStats,
    ) {
        self.counter_add_locked(
            &format!("{span_name}_allocs"),
            now.allocs.saturating_sub(open.allocs),
        );
        self.counter_add_locked(
            &format!("{span_name}_bytes"),
            now.bytes.saturating_sub(open.bytes),
        );
        // Peak live bytes observed during the window: a new process-wide
        // peak set while the span ran, else the live level is the best
        // (lower-bound) estimate available without per-span accounting.
        let window_peak = if now.peak_live_bytes > open.peak_live_bytes {
            now.peak_live_bytes
        } else {
            open.live_bytes.max(now.live_bytes)
        };
        let key = format!("{span_name}_peak_live_bytes");
        let prev = self.gauges.get(&key).copied().unwrap_or(0.0);
        let value = (window_peak as f64).max(prev);
        self.gauges.insert(key, value);
        if self.events_on() {
            self.emit(Event::Gauge {
                name: format!("{span_name}_peak_live_bytes"),
                value,
            });
        }
    }
}

/// A thread-safe span/metric registry. The process-global instance lives in
/// [`crate::global`] (disabled until a run opts in); simulations own local,
/// always-enabled instances so concurrent runs never share counters.
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled registry (local use: simulators, tests).
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A registry with an explicit initial enable state.
    pub fn with_enabled(enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Clears every span, metric, and recorded event, and resets the event
    /// sequence to zero. The enable flag and any attached stream sink or
    /// flight recorder survive (with the recorder emptied), so a long-lived
    /// registry can be reused across runs without re-wiring exporters.
    pub fn reset(&self) {
        let mut inner = self.lock();
        let stream = inner.stream.take();
        let recorder_cap = inner.recorder.as_ref().map(|(cap, _)| *cap);
        *inner = Inner::default();
        inner.stream = stream;
        inner.recorder = recorder_cap.map(|cap| (cap, VecDeque::new()));
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Poison-tolerant: a panic inside an instrumented scope must not
        // take observability down with it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a span; it closes (records its duration) when the returned
    /// guard drops — including during a panic unwind. Parentage follows the
    /// per-thread nesting of currently open spans on this registry.
    pub fn span<S: Into<String>>(self: &Arc<Self>, name: S) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { reg: None, idx: 0 };
        }
        let start = Instant::now();
        // Captured before taking the lock so the registry's own bookkeeping
        // allocations are attributed to the enclosing span, not this one.
        let alloc_at_open = crate::alloc::is_tracking().then(crate::alloc::stats);
        let mut inner = self.lock();
        if inner.spans.len() >= MAX_SPANS {
            inner.dropped_spans += 1;
            return SpanGuard { reg: None, idx: 0 };
        }
        let tid = std::thread::current().id();
        let stack = inner.open.entry(tid).or_default();
        let parent = stack.last().copied();
        let idx = inner.spans.len();
        let name: String = name.into();
        if inner.events_on() {
            inner.emit(Event::SpanOpen {
                id: idx as u64,
                parent: parent.map(|p| p as u64),
                name: name.clone(),
            });
        }
        inner.spans.push(SpanRec {
            name,
            parent,
            start,
            elapsed_us: None,
            alloc_at_open,
        });
        inner.open.entry(tid).or_default().push(idx);
        SpanGuard {
            reg: Some(Arc::clone(self)),
            idx,
        }
    }

    fn close_span(&self, idx: usize) {
        // Captured before the lock for the same reason as in `span`: the
        // close-side bookkeeping below belongs to the parent's window.
        let alloc_now = crate::alloc::is_tracking().then(crate::alloc::stats);
        let mut inner = self.lock();
        let elapsed = inner.spans[idx].start.elapsed();
        let elapsed_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        inner.spans[idx].elapsed_us = Some(elapsed_us);
        let tid = std::thread::current().id();
        if let Some(stack) = inner.open.get_mut(&tid) {
            // Guards can be dropped out of order; remove wherever it sits.
            if let Some(pos) = stack.iter().rposition(|&i| i == idx) {
                stack.remove(pos);
            }
        }
        if inner.events_on() {
            let name = inner.spans[idx].name.clone();
            inner.emit(Event::SpanClose {
                id: idx as u64,
                name,
                elapsed_us,
            });
        }
        if let (Some(now), Some(open)) = (alloc_now, inner.spans[idx].alloc_at_open) {
            let name = inner.spans[idx].name.clone();
            inner.attribute_alloc(&name, open, now);
        }
    }

    /// Adds to a monotonic counter (created on first use). Counters are
    /// deterministic by contract, so timing-suffixed names are rejected in
    /// debug builds (durations belong in `_us` histograms, rates in
    /// `_per_sec` gauges).
    pub fn counter_add(&self, name: &str, v: u64) {
        debug_assert!(
            !is_timing_name(name),
            "counter {name:?} uses a timing suffix (`{TIMING_SUFFIX}`/`{RATE_SUFFIX}`); \
             counters must hold deterministic data"
        );
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.counter_add_locked(name, v);
    }

    /// Current counter value (0 if never recorded).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge (last write wins). Durations must be `_us` histograms,
    /// never gauges, so `_us`-suffixed gauge names are rejected in debug
    /// builds; wall-clock-derived rates are allowed but must end in
    /// `_per_sec` so exports can tell them apart from deterministic gauges.
    pub fn gauge_set(&self, name: &str, v: f64) {
        debug_assert!(
            !name.ends_with(TIMING_SUFFIX),
            "gauge {name:?} ends in `{TIMING_SUFFIX}`; record durations into a `_us` histogram \
             (rates use `{RATE_SUFFIX}`)"
        );
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner.gauges.insert(name.to_string(), v);
        if inner.events_on() {
            inner.emit(Event::Gauge {
                name: name.to_string(),
                value: v,
            });
        }
    }

    /// Records one sample into a fixed-bucket histogram; the bucket `edges`
    /// are bound on first use (later calls may pass the same or any edges —
    /// only the first registration counts). Invalid edges on first use drop
    /// the sample.
    ///
    /// Histograms bucketed with [`crate::buckets::TIME_US`] hold wall-clock
    /// microseconds and must be named `*_us` so deterministic exports can
    /// filter them; debug builds enforce this. (The converse is not checked:
    /// a `_us` histogram may use custom microsecond edges.)
    pub fn hist_record(&self, name: &str, edges: &[f64], v: f64) {
        debug_assert!(
            edges != crate::buckets::TIME_US || name.ends_with(TIMING_SUFFIX),
            "histogram {name:?} uses the TIME_US wall-clock buckets but does not end in \
             `{TIMING_SUFFIX}`; timing data must carry the timing suffix"
        );
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        let recorded = if let Some(h) = inner.histograms.get_mut(name) {
            h.record(v);
            true
        } else if let Some(mut h) = Histogram::new(edges) {
            h.record(v);
            inner.histograms.insert(name.to_string(), h);
            true
        } else {
            false
        };
        if recorded && inner.events_on() {
            inner.emit(Event::Hist {
                name: name.to_string(),
                value: v,
            });
        }
    }

    /// Emits a boundary marker event (e.g. `round[3]` at round start). Marks
    /// only exist in the event stream / flight recorder; they do not change
    /// any metric.
    pub fn mark(&self, name: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        if inner.events_on() {
            inner.emit(Event::Mark {
                name: name.to_string(),
            });
        }
    }

    /// Attaches a JSONL event sink: a header line naming `run` is written
    /// immediately, every subsequent event becomes one line (schema
    /// `fexiot-obs-events/v1`), and the flight recorder is turned on. With
    /// `include_timing == false`, span-close lines omit `elapsed_us` and
    /// samples for `*_us` histograms are suppressed, so the stream is
    /// bit-identical across same-seed runs. A failing sink is dropped.
    pub fn set_stream(&self, mut sink: Box<dyn Write + Send>, run: &str, include_timing: bool) {
        let header = crate::stream::header_line(run);
        let ok = sink.write_all(header.as_bytes()).is_ok()
            && sink.write_all(b"\n").is_ok()
            && sink.flush().is_ok();
        let mut inner = self.lock();
        inner.stream = ok.then_some(StreamState {
            sink,
            include_timing,
        });
        if inner.recorder.is_none() {
            inner.recorder = Some((FLIGHT_RECORDER_CAP, VecDeque::new()));
        }
    }

    /// Detaches the event sink (flushing it) and returns it, if one was set.
    pub fn take_stream(&self) -> Option<Box<dyn Write + Send>> {
        let mut inner = self.lock();
        inner.stream.take().map(|mut s| {
            let _ = s.sink.flush();
            s.sink
        })
    }

    /// Turns the bounded in-memory flight recorder on (keeping the newest
    /// `capacity` events) or off (`capacity == 0`).
    pub fn set_flight_recorder(&self, capacity: usize) {
        let mut inner = self.lock();
        inner.recorder = (capacity > 0).then(|| (capacity, VecDeque::new()));
    }

    /// The newest events retained by the flight recorder (oldest first).
    pub fn recent_events(&self) -> Vec<EventRecord> {
        self.lock()
            .recorder
            .as_ref()
            .map(|(_, buf)| buf.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Folds another histogram snapshot into the named histogram (created
    /// from the snapshot on first use). Returns `false` when the edges of an
    /// existing histogram differ (nothing is merged). No per-sample events
    /// are emitted — a merge is bulk data, not a recording site.
    pub fn hist_merge(&self, name: &str, snap: &HistogramSnapshot) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get_mut(name) {
            return h.merge(snap);
        }
        match Histogram::from_snapshot(snap) {
            Some(h) => {
                inner.histograms.insert(name.to_string(), h);
                true
            }
            None => false,
        }
    }

    /// Merges a complete [`Snapshot`] from another registry (e.g. a per-
    /// client child registry in the federated simulator) into this one:
    ///
    /// * span roots are attached under the calling thread's innermost open
    ///   span (or become new roots), preserving their recorded durations;
    /// * counters accumulate, gauges overwrite, histograms merge
    ///   ([`Histogram::merge`]; snapshots with mismatched edges are skipped
    ///   and counted in the returned value);
    /// * span open/close events are emitted in tree order so an attached
    ///   stream sees the merged trace.
    ///
    /// Returns the number of histograms that could NOT be merged.
    pub fn absorb(&self, snap: &Snapshot) -> usize {
        if !self.is_enabled() {
            return 0;
        }
        let mut inner = self.lock();
        // Pre-size the merge targets: a fleet round absorbs hundreds to
        // thousands of child snapshots, and growing the maps and span vec
        // incrementally rehashes/reallocates repeatedly. Reserving by the
        // incoming snapshot's size makes each merge at most one growth.
        inner.counters.reserve(snap.counters.len());
        inner.gauges.reserve(snap.gauges.len());
        inner.histograms.reserve(snap.histograms.len());
        let incoming_spans: usize = snap.roots.iter().map(SpanNode::size).sum();
        let span_room = MAX_SPANS.saturating_sub(inner.spans.len());
        inner.spans.reserve(incoming_spans.min(span_room));
        let tid = std::thread::current().id();
        let attach_under = inner.open.get(&tid).and_then(|s| s.last().copied());
        for root in &snap.roots {
            absorb_span(&mut inner, root, attach_under);
        }
        inner.dropped_spans += snap.dropped_spans;
        for (name, &v) in &snap.counters {
            inner.counter_add_locked(name, v);
        }
        for (name, &v) in &snap.gauges {
            inner.gauges.insert(name.clone(), v);
            if inner.events_on() {
                inner.emit(Event::Gauge {
                    name: name.clone(),
                    value: v,
                });
            }
        }
        let mut unmerged = 0usize;
        for (name, h) in &snap.histograms {
            let ok = if let Some(existing) = inner.histograms.get_mut(name) {
                existing.merge(h)
            } else {
                match Histogram::from_snapshot(h) {
                    Some(built) => {
                        inner.histograms.insert(name.clone(), built);
                        true
                    }
                    None => false,
                }
            };
            if !ok {
                unmerged += 1;
            }
        }
        unmerged
    }

    /// A point-in-time copy of everything recorded so far. Spans still open
    /// report their elapsed-so-far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); inner.spans.len()];
        let mut root_idx = Vec::new();
        for (i, s) in inner.spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p].push(i),
                None => root_idx.push(i),
            }
        }
        fn build(idx: usize, spans: &[SpanRec], children: &[Vec<usize>]) -> SpanNode {
            let s = &spans[idx];
            SpanNode {
                name: s.name.clone(),
                elapsed_us: s.elapsed_us.unwrap_or_else(|| {
                    s.start.elapsed().as_micros().min(u64::MAX as u128) as u64
                }),
                children: children[idx]
                    .iter()
                    .map(|&c| build(c, spans, children))
                    .collect(),
            }
        }
        Snapshot {
            roots: root_idx
                .iter()
                .map(|&i| build(i, &inner.spans, &children))
                .collect(),
            counters: inner.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            dropped_spans: inner.dropped_spans,
        }
    }

    /// A metrics-only snapshot: counters, gauges, and histograms, with the
    /// span tree left empty. Rebuilding the span tree dominates snapshot
    /// cost on fleet-scale runs, so per-round sampling hooks (the time-series
    /// store) use this instead of [`Registry::snapshot`].
    pub fn metrics_snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            roots: Vec::new(),
            counters: inner.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            dropped_spans: inner.dropped_spans,
        }
    }
}

/// Inserts one snapshot span subtree as synthetic span records (depth-first,
/// durations preserved), emitting open/close events so an attached stream
/// sees the merged trace. Respects the span retention cap.
fn absorb_span(inner: &mut Inner, node: &SpanNode, parent: Option<usize>) {
    if inner.spans.len() >= MAX_SPANS {
        inner.dropped_spans += node.size() as u64;
        return;
    }
    let idx = inner.spans.len();
    inner.spans.push(SpanRec {
        name: node.name.clone(),
        parent,
        start: Instant::now(),
        elapsed_us: Some(node.elapsed_us),
        // Absorbed spans already closed in their home registry; their
        // allocations were attributed there.
        alloc_at_open: None,
    });
    if inner.events_on() {
        inner.emit(Event::SpanOpen {
            id: idx as u64,
            parent: parent.map(|p| p as u64),
            name: node.name.clone(),
        });
    }
    for child in &node.children {
        absorb_span(inner, child, Some(idx));
    }
    if inner.events_on() {
        inner.emit(Event::SpanClose {
            id: idx as u64,
            name: node.name.clone(),
            elapsed_us: node.elapsed_us,
        });
    }
}

/// RAII guard returned by [`Registry::span`]; records the span's duration on
/// drop. A guard from a disabled registry is a no-op.
pub struct SpanGuard {
    reg: Option<Arc<Registry>>,
    idx: usize,
}

impl SpanGuard {
    /// A guard that records nothing (disabled path).
    pub fn noop() -> Self {
        Self { reg: None, idx: 0 }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(reg) = self.reg.take() {
            reg.close_span(self.idx);
        }
    }
}
