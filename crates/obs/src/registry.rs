//! The observability registry: hierarchical wall-clock spans plus counters,
//! gauges, and fixed-bucket histograms, behind one coarse mutex.
//!
//! Design constraints (see DESIGN.md §Observability):
//!
//! * **Cheap when off.** Every recording entry point first reads one relaxed
//!   atomic; a disabled registry does no allocation, no formatting, and no
//!   locking.
//! * **Unwind safe.** Spans are closed by [`SpanGuard`]'s `Drop`, so a
//!   panicking scope still records its span, and the inner mutex is treated
//!   as poison-tolerant.
//! * **Deterministic data, nondeterministic time.** Only span `elapsed_us`
//!   values depend on the wall clock. Counters, gauges, histograms, span
//!   names, and tree shape are pure functions of the seeded workload, which
//!   is what lets run reports be diffed across runs (timing excluded).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

/// Spans retained per registry before new ones are dropped (a backstop for
/// pathological instrumentation loops, far above any real run).
const MAX_SPANS: usize = 200_000;

/// One recorded span instance.
struct SpanRec {
    name: String,
    parent: Option<usize>,
    start: Instant,
    /// Microseconds; `None` while the span is still open.
    elapsed_us: Option<u64>,
}

/// A fixed-bucket histogram over finite `f64` samples.
///
/// `edges` are the bucket boundaries: a sample `v` lands in interior bucket
/// `i` when `edges[i] <= v < edges[i + 1]`, below `edges[0]` in the
/// underflow bucket, and at or above the last edge in the overflow bucket.
/// Non-finite samples (NaN, ±∞) are rejected and only counted.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    rejected: u64,
}

impl Histogram {
    /// Creates a histogram. Edges must be at least two strictly increasing
    /// finite values; returns `None` otherwise.
    pub fn new(edges: &[f64]) -> Option<Self> {
        if edges.len() < 2
            || edges.iter().any(|e| !e.is_finite())
            || edges.windows(2).any(|w| w[0] >= w[1])
        {
            return None;
        }
        Some(Self {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() - 1],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected: 0,
        })
    }

    /// Records one sample; non-finite values are rejected (counted only).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.rejected += 1;
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < self.edges[0] {
            self.underflow += 1;
        } else if v >= *self.edges.last().expect("edges non-empty") {
            self.overflow += 1;
        } else {
            // Edges are sorted; partition_point returns the first edge > v.
            let i = self.edges.partition_point(|&e| e <= v) - 1;
            self.counts[i] += 1;
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            counts: self.counts.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
            count: self.count,
            sum: self.sum,
            min: (self.count > 0).then_some(self.min),
            max: (self.count > 0).then_some(self.max),
            rejected: self.rejected,
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub edges: Vec<f64>,
    /// Interior bucket counts (`edges.len() - 1` entries).
    pub counts: Vec<u64>,
    pub underflow: u64,
    pub overflow: u64,
    /// Accepted (finite) samples, including under/overflow.
    pub count: u64,
    pub sum: f64,
    pub min: Option<f64>,
    pub max: Option<f64>,
    /// Non-finite samples rejected.
    pub rejected: u64,
}

impl HistogramSnapshot {
    /// Mean of accepted samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub name: String,
    /// Wall-clock microseconds (elapsed-so-far for spans still open at
    /// snapshot time). Excluded from deterministic exports.
    pub elapsed_us: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of nodes in this subtree (self included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }
}

/// Point-in-time copy of everything a registry holds. Maps are ordered so
/// exports are schema-stable and diffable.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub roots: Vec<SpanNode>,
    pub counters: std::collections::BTreeMap<String, u64>,
    pub gauges: std::collections::BTreeMap<String, f64>,
    pub histograms: std::collections::BTreeMap<String, HistogramSnapshot>,
    /// Spans discarded after the retention cap was hit.
    pub dropped_spans: u64,
}

impl Snapshot {
    /// Finds the first span node with this exact name, anywhere in the tree.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.roots, name)
    }
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRec>,
    /// Per-thread stack of open span indices (hierarchy = call nesting).
    open: HashMap<ThreadId, Vec<usize>>,
    counters: std::collections::BTreeMap<String, u64>,
    gauges: std::collections::BTreeMap<String, f64>,
    histograms: std::collections::BTreeMap<String, Histogram>,
    dropped_spans: u64,
}

/// A thread-safe span/metric registry. The process-global instance lives in
/// [`crate::global`] (disabled until a run opts in); simulations own local,
/// always-enabled instances so concurrent runs never share counters.
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled registry (local use: simulators, tests).
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A registry with an explicit initial enable state.
    pub fn with_enabled(enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Clears every span and metric (the enable flag is left as-is).
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Poison-tolerant: a panic inside an instrumented scope must not
        // take observability down with it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a span; it closes (records its duration) when the returned
    /// guard drops — including during a panic unwind. Parentage follows the
    /// per-thread nesting of currently open spans on this registry.
    pub fn span<S: Into<String>>(self: &Arc<Self>, name: S) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { reg: None, idx: 0 };
        }
        let start = Instant::now();
        let mut inner = self.lock();
        if inner.spans.len() >= MAX_SPANS {
            inner.dropped_spans += 1;
            return SpanGuard { reg: None, idx: 0 };
        }
        let tid = std::thread::current().id();
        let stack = inner.open.entry(tid).or_default();
        let parent = stack.last().copied();
        let idx = inner.spans.len();
        inner.spans.push(SpanRec {
            name: name.into(),
            parent,
            start,
            elapsed_us: None,
        });
        inner.open.entry(tid).or_default().push(idx);
        SpanGuard {
            reg: Some(Arc::clone(self)),
            idx,
        }
    }

    fn close_span(&self, idx: usize) {
        let mut inner = self.lock();
        let elapsed = inner.spans[idx].start.elapsed();
        inner.spans[idx].elapsed_us = Some(elapsed.as_micros().min(u64::MAX as u128) as u64);
        let tid = std::thread::current().id();
        if let Some(stack) = inner.open.get_mut(&tid) {
            // Guards can be dropped out of order; remove wherever it sits.
            if let Some(pos) = stack.iter().rposition(|&i| i == idx) {
                stack.remove(pos);
            }
        }
    }

    /// Adds to a monotonic counter (created on first use).
    pub fn counter_add(&self, name: &str, v: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c += v,
            None => {
                inner.counters.insert(name.to_string(), v);
            }
        }
    }

    /// Current counter value (0 if never recorded).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Records one sample into a fixed-bucket histogram; the bucket `edges`
    /// are bound on first use (later calls may pass the same or any edges —
    /// only the first registration counts). Invalid edges on first use drop
    /// the sample.
    pub fn hist_record(&self, name: &str, edges: &[f64], v: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        if let Some(h) = inner.histograms.get_mut(name) {
            h.record(v);
            return;
        }
        if let Some(mut h) = Histogram::new(edges) {
            h.record(v);
            inner.histograms.insert(name.to_string(), h);
        }
    }

    /// A point-in-time copy of everything recorded so far. Spans still open
    /// report their elapsed-so-far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); inner.spans.len()];
        let mut root_idx = Vec::new();
        for (i, s) in inner.spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p].push(i),
                None => root_idx.push(i),
            }
        }
        fn build(idx: usize, spans: &[SpanRec], children: &[Vec<usize>]) -> SpanNode {
            let s = &spans[idx];
            SpanNode {
                name: s.name.clone(),
                elapsed_us: s.elapsed_us.unwrap_or_else(|| {
                    s.start.elapsed().as_micros().min(u64::MAX as u128) as u64
                }),
                children: children[idx]
                    .iter()
                    .map(|&c| build(c, spans, children))
                    .collect(),
            }
        }
        Snapshot {
            roots: root_idx
                .iter()
                .map(|&i| build(i, &inner.spans, &children))
                .collect(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            dropped_spans: inner.dropped_spans,
        }
    }
}

/// RAII guard returned by [`Registry::span`]; records the span's duration on
/// drop. A guard from a disabled registry is a no-op.
pub struct SpanGuard {
    reg: Option<Arc<Registry>>,
    idx: usize,
}

impl SpanGuard {
    /// A guard that records nothing (disabled path).
    pub fn noop() -> Self {
        Self { reg: None, idx: 0 }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(reg) = self.reg.take() {
            reg.close_span(self.idx);
        }
    }
}
