//! A minimal first-party JSON value, writer, and parser.
//!
//! The build environment has no registry access, so run reports are written
//! and validated with this ~200-line implementation instead of `serde_json`.
//! Objects preserve insertion order (exports insert in sorted order, so the
//! serialized text is deterministic), numbers are `f64` or `u64`, and
//! non-finite floats serialize as `null` (JSON has no NaN/∞).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer, kept apart from `Num` so counters round-trip
    /// exactly even above 2^53.
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Json::UInt(_) | Json::Num(_))
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}', "expected ',' or '}'")?;
            return Ok(Json::Obj(members));
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']', "expected ',' or ']'")?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate halves map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always at a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'-') {
                let _ = self.eat(b'+');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("round[0]".into())),
            ("n".into(), Json::UInt(42)),
            ("loss".into(), Json::Num(0.125)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            (
                "child".into(),
                Json::Obj(vec![("esc\"ape\n".into(), Json::Str("a\\b".into()))]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_numbers_and_escapes() {
        assert_eq!(Json::parse("18446744073709551615"), Ok(Json::UInt(u64::MAX)));
        assert_eq!(Json::parse("-1.5e2"), Ok(Json::Num(-150.0)));
        assert_eq!(
            Json::parse("\"a\\u0041\\n\""),
            Ok(Json::Str("aA\n".into()))
        );
    }
}
