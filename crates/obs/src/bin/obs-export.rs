//! `obs-export [options] <report.json | stream.jsonl>` — export surfaces for
//! obs data.
//!
//! Default mode renders Prometheus text exposition from the input: a
//! `fexiot-obs/v1|v2|v3` run report (counters, gauges, histograms with
//! cumulative buckets, newest time-series samples, SLO verdict states) or a
//! `fexiot-obs-events/v1` JSONL stream (replayed counter totals and gauge
//! values). The input kind is auto-detected from its first line.
//!
//! Options:
//!   --watch            tail a JSONL stream and render a live terminal view
//!                      (round progress, cohort/aggregator status, quorum
//!                      margin, SLO status, per-round attribution)
//!   --once             with --watch: render the current state once and exit
//!                      (CI-friendly; no terminal control sequences)
//!   --interval-ms N    with --watch: poll interval (default 500)
//!   --section NAME     print one raw section of a report (e.g. `timeseries`,
//!                      `slo`, `root_cause`) as JSON — byte-comparable
//!                      across runs
//!   --chrome-trace     render a `fexiot-obs-causal/v1` graph file (from
//!                      `--obs-trace`) as Chrome trace-event JSON, loadable
//!                      in Perfetto / chrome://tracing
//!
//! Exit codes: 0 success, 2 usage/IO/parse error.

use fexiot_obs::{prometheus_from_report, prometheus_from_stream, Json, WatchState};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs-export [--watch [--once] [--interval-ms N]] [--section NAME] \
         [--chrome-trace] <report.json | stream.jsonl | trace.json>"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("obs-export: {msg}");
    ExitCode::from(2)
}

/// True when the file's first line is a `fexiot-obs-events/v1` header.
fn is_stream(text: &str) -> bool {
    text.lines()
        .next()
        .and_then(|l| Json::parse(l).ok())
        .and_then(|doc| doc.get("schema").and_then(Json::as_str).map(str::to_string))
        .as_deref()
        == Some(fexiot_obs::stream::EVENT_SCHEMA)
}

fn watch(path: &str, once: bool, interval_ms: u64) -> ExitCode {
    let mut last_frame = String::new();
    loop {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let state = match WatchState::from_stream(&text) {
            Ok(s) => s,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let frame = state.render();
        if once {
            print!("{frame}");
            return ExitCode::SUCCESS;
        }
        if frame != last_frame {
            // Clear + home, then the fresh frame.
            print!("\x1b[2J\x1b[H{frame}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            last_frame = frame;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut watch_mode = false;
    let mut once = false;
    let mut interval_ms = 500u64;
    let mut section: Option<String> = None;
    let mut chrome = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--watch" => watch_mode = true,
            "--once" => once = true,
            "--chrome-trace" => chrome = true,
            "--interval-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => interval_ms = v,
                _ => return usage(),
            },
            "--section" => match it.next() {
                Some(name) if !name.starts_with("--") => section = Some(name.clone()),
                _ => return usage(),
            },
            flag if flag.starts_with("--") => {
                eprintln!("obs-export: unknown flag {flag:?}");
                return usage();
            }
            path => files.push(path.to_string()),
        }
    }
    let [path] = files.as_slice() else {
        return usage();
    };
    if watch_mode {
        if section.is_some() || chrome {
            return fail("--watch is mutually exclusive with --section/--chrome-trace");
        }
        return watch(path, once, interval_ms);
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{path}: {e}")),
    };
    if chrome {
        if section.is_some() {
            return fail("--chrome-trace and --section are mutually exclusive");
        }
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => return fail(&format!("{path}: {e:?}")),
        };
        return match fexiot_obs::CausalGraph::parse(&doc) {
            Ok(graph) => {
                println!("{}", fexiot_obs::chrome_trace(&graph));
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("{path}: {e}")),
        };
    }
    if let Some(name) = section {
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => return fail(&format!("{path}: {e:?}")),
        };
        return match doc.get(&name) {
            Some(value) => {
                println!("{value}");
                ExitCode::SUCCESS
            }
            None => fail(&format!("{path}: no `{name}` section in report")),
        };
    }
    let rendered = if is_stream(&text) {
        prometheus_from_stream(&text)
    } else {
        match Json::parse(&text) {
            Ok(doc) => prometheus_from_report(&doc),
            Err(e) => Err(format!("{e:?}")),
        }
    };
    match rendered {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{path}: {e}")),
    }
}
