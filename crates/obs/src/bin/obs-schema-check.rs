//! `obs-schema-check <dir-or-file>...` — validates that emitted obs run
//! reports parse and conform to the `fexiot-obs/v4` schema (older v1–v3
//! reports are also accepted). Used by CI to
//! fail the build when an instrumentation change breaks the report format.
//!
//! Directory arguments expand to every `*.json` directly inside them; every
//! file is checked (reporting ALL failures, not just the first) and the
//! offending path leads each failure line. Exit codes: 0 all good, 1 any
//! report failed, 2 usage error.

use fexiot_obs::report::{check_report_file, collect_report_paths};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if args.is_empty() {
        eprintln!("usage: obs-schema-check <report.json | dir>...");
        return ExitCode::from(2);
    }
    let files = match collect_report_paths(&args) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("obs-schema-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for f in &files {
        match check_report_file(f) {
            Ok(()) => println!("ok: {}", f.display()),
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
