//! `obs-schema-check <dir-or-file>...` — validates that emitted obs run
//! reports parse and conform to the `fexiot-obs/v1` schema. Used by CI to
//! fail the build when an instrumentation change breaks the report format.

use fexiot_obs::{validate_report, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn check_file(path: &Path) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path:?}: {e}"))?;
    validate_report(&doc).map_err(|e| format!("{path:?}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs-schema-check <report.json | dir>...");
        return ExitCode::from(2);
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in &args {
        let path = PathBuf::from(arg);
        if path.is_dir() {
            let Ok(entries) = std::fs::read_dir(&path) else {
                eprintln!("cannot list {path:?}");
                return ExitCode::FAILURE;
            };
            let mut found: Vec<PathBuf> = entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            found.sort();
            files.extend(found);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        eprintln!("obs-schema-check: no .json reports found under {args:?}");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for f in &files {
        match check_file(f) {
            Ok(()) => println!("ok: {}", f.display()),
            Err(e) => {
                eprintln!("FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
