//! `obs-diff [options] <baseline.json> <current.json>` — compares two
//! `fexiot-obs/v1` run reports, or two `fexiot-bench/v1` benchmark documents
//! (auto-detected from the `schema` field), and exits non-zero when
//! deterministic data drifted (or, with `--strict-timing`, when timings
//! regressed beyond tolerance). This is the CI perf/behaviour regression
//! gate; the bench mode additionally treats allocation-count drift as
//! breaking while timing percentiles stay advisory.
//!
//! Options:
//!   --timing-tolerance FRAC   allowed fractional slowdown (default 0.25)
//!   --timing-floor-us N       ignore spans faster than this in the baseline
//!                             (default 1000)
//!   --strict-timing           timing regressions become breaking
//!   --json                    print the fexiot-obs-diff/v1 verdict document
//!
//! Exit codes: 0 pass, 1 fail (breaking findings), 2 usage/IO error.

use fexiot_obs::diff::{
    diff_bench_reports, diff_reports, validate_bench_report, DiffConfig, BENCH_SCHEMA,
};
use fexiot_obs::{validate_report, Json};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs-diff [--timing-tolerance FRAC] [--timing-floor-us N] \
         [--strict-timing] [--json] <baseline.json> <current.json>\n\
         (accepts two fexiot-obs/v1 reports or two fexiot-bench/v1 documents)"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) == Some(BENCH_SCHEMA) {
        validate_bench_report(&doc).map_err(|e| format!("{path}: {e}"))?;
    } else {
        validate_report(&doc).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = DiffConfig::default();
    let mut as_json = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timing-tolerance" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v >= 0.0 && v.is_finite() => cfg.timing_tolerance = v,
                _ => return usage(),
            },
            "--timing-floor-us" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => cfg.timing_floor_us = v,
                _ => return usage(),
            },
            "--strict-timing" => cfg.strict_timing = true,
            "--json" => as_json = true,
            flag if flag.starts_with("--") => {
                eprintln!("obs-diff: unknown flag {flag:?}");
                return usage();
            }
            path => files.push(path.to_string()),
        }
    }
    let [baseline, current] = files.as_slice() else {
        return usage();
    };
    let (base_doc, cur_doc) = match (load(baseline), load(current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("obs-diff: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let is_bench = |doc: &Json| doc.get("schema").and_then(Json::as_str) == Some(BENCH_SCHEMA);
    let report = match (is_bench(&base_doc), is_bench(&cur_doc)) {
        (true, true) => diff_bench_reports(&base_doc, &cur_doc, &cfg),
        (false, false) => diff_reports(&base_doc, &cur_doc, &cfg),
        _ => {
            eprintln!(
                "obs-diff: {baseline} and {current} use different schemas \
                 (cannot compare an obs report with a bench document)"
            );
            return ExitCode::from(2);
        }
    };
    if as_json {
        println!(
            "{}",
            report.to_json(
                &Path::new(baseline).display().to_string(),
                &Path::new(current).display().to_string()
            )
        );
    } else {
        print!("{}", report.render());
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
