//! Inclusive/exclusive span-time profiles and flamegraph-compatible
//! collapsed-stack export, derived from a registry [`Snapshot`]'s span tree.
//!
//! * **Inclusive** time is a span's recorded `elapsed_us`.
//! * **Exclusive** (self) time is inclusive minus the sum of the direct
//!   children's inclusive time, saturated at zero (children overlapping
//!   their parent's clock edge can nominally exceed it by a few µs).
//!
//! The collapsed format is the standard flamegraph.pl / inferno input: one
//! line per stack, `frame;frame;frame <value>`, where the value here is the
//! stack's aggregated exclusive microseconds. Span names are sanitized into
//! frames by replacing `;` and whitespace (the format's separators) with
//! `_`, and instances of the same stack path are summed, so output order and
//! content are deterministic given the span tree.

use crate::json::Json;
use crate::registry::{Snapshot, SpanNode};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregated statistics for one span path (all instances summed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// `;`-joined sanitized frames from root to this span.
    pub path: String,
    /// Number of span instances with this path.
    pub count: u64,
    /// Total wall-clock microseconds (children included).
    pub inclusive_us: u64,
    /// Total microseconds spent in the span itself (children excluded).
    pub exclusive_us: u64,
}

/// Sanitizes one span name into a collapsed-stack frame: `;` and whitespace
/// are the format's separators, so they become `_`.
pub fn frame(name: &str) -> String {
    name.chars()
        .map(|c| if c == ';' || c.is_whitespace() { '_' } else { c })
        .collect()
}

fn walk(node: &SpanNode, prefix: &str, out: &mut BTreeMap<String, (u64, u64, u64)>) {
    let path = if prefix.is_empty() {
        frame(&node.name)
    } else {
        format!("{prefix};{}", frame(&node.name))
    };
    let child_us: u64 = node.children.iter().map(|c| c.elapsed_us).sum();
    let exclusive = node.elapsed_us.saturating_sub(child_us);
    let entry = out.entry(path.clone()).or_insert((0, 0, 0));
    entry.0 += 1;
    entry.1 += node.elapsed_us;
    entry.2 += exclusive;
    for child in &node.children {
        walk(child, &path, out);
    }
}

/// Per-path profile of a snapshot's span tree, sorted by path.
pub fn profile(snap: &Snapshot) -> Vec<SpanStat> {
    let mut agg = BTreeMap::new();
    for root in &snap.roots {
        walk(root, "", &mut agg);
    }
    agg.into_iter()
        .map(|(path, (count, inclusive_us, exclusive_us))| SpanStat {
            path,
            count,
            inclusive_us,
            exclusive_us,
        })
        .collect()
}

/// The `n` paths with the most exclusive time, descending (ties broken by
/// path, so ordering is deterministic).
pub fn hot_spans(snap: &Snapshot, n: usize) -> Vec<SpanStat> {
    let mut stats = profile(snap);
    stats.sort_by(|a, b| {
        b.exclusive_us
            .cmp(&a.exclusive_us)
            .then_with(|| a.path.cmp(&b.path))
    });
    stats.truncate(n);
    stats
}

/// Renders the snapshot's span tree as collapsed stacks (one
/// `frame;frame value` line per path, value = exclusive µs, sorted by path;
/// trailing newline when non-empty).
pub fn collapsed_stacks(snap: &Snapshot) -> String {
    let mut out = String::new();
    for stat in profile(snap) {
        out.push_str(&format!("{} {}\n", stat.path, stat.exclusive_us));
    }
    out
}

/// Writes [`collapsed_stacks`] to `path` (parent directories created as
/// needed); returns the path written.
pub fn write_flame(path: &Path, snap: &Snapshot) -> io::Result<PathBuf> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, collapsed_stacks(snap))?;
    Ok(path.to_path_buf())
}

/// Parses collapsed-stack text back into `(stack_path, value)` pairs.
/// The inverse of [`collapsed_stacks`]; used by the round-trip tests.
pub fn parse_collapsed(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: missing value separator", i + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value {value:?}: {e}", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        out.push((stack.to_string(), value));
    }
    Ok(out)
}

/// Every sanitized span path present in a `fexiot-obs/v1` report document,
/// sorted and deduplicated — the reference set collapsed-stack lines must
/// round-trip against.
pub fn report_span_paths(doc: &Json) -> Vec<String> {
    fn walk_json(node: &Json, prefix: &str, out: &mut Vec<String>) {
        let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
        let path = if prefix.is_empty() {
            frame(name)
        } else {
            format!("{prefix};{}", frame(name))
        };
        if let Some(children) = node.get("children").and_then(Json::as_arr) {
            for c in children {
                walk_json(c, &path, out);
            }
        }
        out.push(path);
    }
    let mut out = Vec::new();
    if let Some(spans) = doc.get("spans").and_then(Json::as_arr) {
        for s in spans {
            walk_json(s, "", &mut out);
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, us: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name: name.into(),
            elapsed_us: us,
            children,
        }
    }

    fn snap(roots: Vec<SpanNode>) -> Snapshot {
        Snapshot {
            roots,
            ..Snapshot::default()
        }
    }

    #[test]
    fn exclusive_time_subtracts_children_and_saturates() {
        let s = snap(vec![node(
            "root",
            100,
            vec![node("a", 30, vec![]), node("b", 90, vec![])],
        )]);
        let prof = profile(&s);
        let by_path: std::collections::HashMap<_, _> =
            prof.iter().map(|p| (p.path.as_str(), p)).collect();
        // 30 + 90 > 100: exclusive saturates at zero instead of wrapping.
        assert_eq!(by_path["root"].exclusive_us, 0);
        assert_eq!(by_path["root"].inclusive_us, 100);
        assert_eq!(by_path["root;a"].exclusive_us, 30);
        assert_eq!(by_path["root;b"].exclusive_us, 90);
    }

    #[test]
    fn repeated_paths_aggregate() {
        let s = snap(vec![node(
            "round",
            100,
            vec![node("client", 20, vec![]), node("client", 30, vec![])],
        )]);
        let prof = profile(&s);
        let client = prof.iter().find(|p| p.path == "round;client").unwrap();
        assert_eq!(client.count, 2);
        assert_eq!(client.inclusive_us, 50);
        let root = prof.iter().find(|p| p.path == "round").unwrap();
        assert_eq!(root.exclusive_us, 50);
    }

    #[test]
    fn frames_are_sanitized_and_collapsed_round_trips() {
        let s = snap(vec![node("a b;c", 10, vec![node("leaf", 4, vec![])])]);
        let text = collapsed_stacks(&s);
        let parsed = parse_collapsed(&text).expect("own output parses");
        assert_eq!(
            parsed,
            vec![("a_b_c".to_string(), 6), ("a_b_c;leaf".to_string(), 4)]
        );
    }

    #[test]
    fn hot_spans_order_by_exclusive_time() {
        let s = snap(vec![
            node("slow", 500, vec![]),
            node("fast", 10, vec![]),
            node("mid", 50, vec![]),
        ]);
        let hot = hot_spans(&s, 2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].path, "slow");
        assert_eq!(hot[1].path, "mid");
    }

    #[test]
    fn report_paths_cover_collapsed_lines() {
        let s = snap(vec![node(
            "pipeline",
            100,
            vec![node("pipeline.corpus", 40, vec![])],
        )]);
        let doc = crate::report::to_json(&s, "t", crate::report::Timing::Include);
        let paths = report_span_paths(&doc);
        for (stack, _) in parse_collapsed(&collapsed_stacks(&s)).unwrap() {
            assert!(paths.contains(&stack), "missing {stack}");
        }
    }

    #[test]
    fn malformed_collapsed_lines_are_rejected() {
        assert!(parse_collapsed("no-value-here").is_err());
        assert!(parse_collapsed("stack notanumber").is_err());
        assert!(parse_collapsed(" 42").is_err());
    }
}
