//! Exporters: the JSON run report (one file per run, schema-stable), the
//! human-readable summary tree for the CLI, and timing-stripped deterministic
//! serialization for golden-style diffing.

use crate::json::Json;
use crate::registry::{is_environment_name, is_timing_name, HistogramSnapshot, Snapshot, SpanNode};
use crate::trace::{critical_path_to_json, render_critical_path, CriticalPathEntry};
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier written into every report (bump on breaking changes).
/// v2 added the optional `timeseries` and `slo` sections; v3 added the
/// optional `root_cause` section (causal-graph attribution of failing SLO
/// rules); v4 adds the optional `stream` section (streaming-service actor
/// stats and detection digest). v1/v2/v3 documents are still accepted by
/// [`validate_report`] so committed baselines keep working across the bumps.
pub const SCHEMA: &str = "fexiot-obs/v4";

/// The previous schema identifiers, still accepted on input.
pub const SCHEMA_V3: &str = "fexiot-obs/v3";
pub const SCHEMA_V2: &str = "fexiot-obs/v2";
pub const SCHEMA_V1: &str = "fexiot-obs/v1";

/// Optional report sections supplied by the run: already-rendered JSON for
/// the fleet-health telemetry bundle (`timeseries`, `slo` — v2), the causal
/// root-cause attribution (`root_cause` — v3), and the streaming-service
/// summary (`stream` — v4).
#[derive(Debug, Clone, Default)]
pub struct ReportExtras {
    pub timeseries: Option<Json>,
    pub slo: Option<Json>,
    pub root_cause: Option<Json>,
    pub stream: Option<Json>,
}

impl ReportExtras {
    /// Renders the sections out of a telemetry bundle. An empty store
    /// contributes no `timeseries` section (quickstart-style runs with the
    /// flags off stay byte-identical to plain v2 reports).
    pub fn from_telemetry(telemetry: &crate::timeseries::FleetTelemetry) -> Self {
        Self {
            timeseries: (!telemetry.store.is_empty()).then(|| telemetry.store.to_json()),
            slo: telemetry.slo.as_ref().map(|e| e.to_json()),
            root_cause: None,
            stream: None,
        }
    }
}

/// Whether span wall-clock fields are included in an export. Timing is the
/// only nondeterministic data a registry holds, so `Exclude` yields output
/// that is bit-identical across same-seed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    Include,
    Exclude,
}

fn span_to_json(node: &SpanNode, timing: Timing) -> Json {
    let mut members = vec![("name".to_string(), Json::Str(node.name.clone()))];
    if timing == Timing::Include {
        members.push(("elapsed_us".to_string(), Json::UInt(node.elapsed_us)));
    }
    members.push((
        "children".to_string(),
        Json::Arr(
            node.children
                .iter()
                .map(|c| span_to_json(c, timing))
                .collect(),
        ),
    ));
    Json::Obj(members)
}

fn hist_to_json(h: &HistogramSnapshot) -> Json {
    let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    Json::Obj(vec![
        (
            "edges".to_string(),
            Json::Arr(h.edges.iter().map(|&e| Json::Num(e)).collect()),
        ),
        (
            "counts".to_string(),
            Json::Arr(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
        ),
        ("underflow".to_string(), Json::UInt(h.underflow)),
        ("overflow".to_string(), Json::UInt(h.overflow)),
        ("count".to_string(), Json::UInt(h.count)),
        ("sum".to_string(), Json::Num(h.sum)),
        ("min".to_string(), opt(h.min)),
        ("max".to_string(), opt(h.max)),
        ("rejected".to_string(), Json::UInt(h.rejected)),
    ])
}

/// Renders a snapshot as the run-report JSON document. Keys are emitted in a
/// fixed order (metric maps are sorted), so two exports of equal snapshots
/// are byte-identical; with [`Timing::Exclude`] the text is additionally
/// identical across same-seed runs.
pub fn to_json(snap: &Snapshot, run: &str, timing: Timing) -> Json {
    to_json_full(snap, run, timing, None)
}

/// [`to_json`] plus an optional `critical_path` section (federated runs).
/// With [`Timing::Exclude`], histograms and gauges whose names mark them as
/// wall-clock data (`*_us` durations, `*_per_sec` rates — see
/// [`crate::is_timing_name`]) or as execution-environment facts (`par.*`
/// worker-pool sizing — see [`crate::registry::is_environment_name`]) are
/// omitted too — both vary across hosts/thread counts without affecting
/// results, the metric-shaped analogue of span `elapsed_us`.
pub fn to_json_full(
    snap: &Snapshot,
    run: &str,
    timing: Timing,
    critical_path: Option<&[CriticalPathEntry]>,
) -> Json {
    to_json_with(snap, run, timing, critical_path, &ReportExtras::default())
}

/// [`to_json_full`] plus the optional v2 `timeseries`/`slo` sections. Both
/// sections hold only deterministic data by construction (the store refuses
/// timing/environment metrics), so they are emitted under [`Timing::Exclude`]
/// too.
pub fn to_json_with(
    snap: &Snapshot,
    run: &str,
    timing: Timing,
    critical_path: Option<&[CriticalPathEntry]>,
    extras: &ReportExtras,
) -> Json {
    let mut members = vec![
        ("schema".to_string(), Json::Str(SCHEMA.to_string())),
        ("run".to_string(), Json::Str(run.to_string())),
        (
            "spans".to_string(),
            Json::Arr(snap.roots.iter().map(|r| span_to_json(r, timing)).collect()),
        ),
        (
            "counters".to_string(),
            Json::Obj(
                snap.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                    .collect(),
            ),
        ),
        (
            "gauges".to_string(),
            Json::Obj(
                snap.gauges
                    .iter()
                    .filter(|(k, _)| {
                        (timing == Timing::Include || !is_timing_name(k))
                            && !is_environment_name(k)
                    })
                    .map(|(k, &v)| (k.clone(), Json::Num(v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Json::Obj(
                snap.histograms
                    .iter()
                    .filter(|(k, _)| {
                        (timing == Timing::Include || !is_timing_name(k))
                            && !is_environment_name(k)
                    })
                    .map(|(k, h)| (k.clone(), hist_to_json(h)))
                    .collect(),
            ),
        ),
        ("dropped_spans".to_string(), Json::UInt(snap.dropped_spans)),
    ];
    if let Some(path) = critical_path {
        members.push(("critical_path".to_string(), critical_path_to_json(path)));
    }
    if let Some(ts) = &extras.timeseries {
        members.push(("timeseries".to_string(), ts.clone()));
    }
    if let Some(slo) = &extras.slo {
        members.push(("slo".to_string(), slo.clone()));
    }
    if let Some(rc) = &extras.root_cause {
        members.push(("root_cause".to_string(), rc.clone()));
    }
    if let Some(st) = &extras.stream {
        members.push(("stream".to_string(), st.clone()));
    }
    Json::Obj(members)
}

/// The deterministic (timing-free) serialization of a snapshot: bit-identical
/// across two runs with the same seed. This is what regression tests diff.
pub fn deterministic_json(snap: &Snapshot, run: &str) -> String {
    to_json(snap, run, Timing::Exclude).to_string()
}

/// Writes the run report to `<dir>/<run>.json` (directories created as
/// needed); returns the path written.
pub fn write_report(dir: &Path, run: &str, snap: &Snapshot) -> io::Result<PathBuf> {
    write_report_full(dir, run, snap, None)
}

/// [`write_report`] plus an optional `critical_path` section.
pub fn write_report_full(
    dir: &Path,
    run: &str,
    snap: &Snapshot,
    critical_path: Option<&[CriticalPathEntry]>,
) -> io::Result<PathBuf> {
    write_report_with(dir, run, snap, critical_path, &ReportExtras::default())
}

/// [`write_report_full`] plus the optional v2 `timeseries`/`slo` sections.
pub fn write_report_with(
    dir: &Path,
    run: &str,
    snap: &Snapshot,
    critical_path: Option<&[CriticalPathEntry]>,
    extras: &ReportExtras,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{run}.json"));
    std::fs::write(
        &path,
        to_json_with(snap, run, Timing::Include, critical_path, extras).to_string(),
    )?;
    Ok(path)
}

/// Validates that a JSON document is a well-formed obs report: schema
/// `fexiot-obs/v4` or an older `fexiot-obs/v1`..`v3` (identical except for
/// which optional sections may appear: v2 added `timeseries`/`slo`, v3 added
/// `root_cause`, v4 adds `stream`). Returns a description of the first
/// problem found.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != SCHEMA && schema != SCHEMA_V3 && schema != SCHEMA_V2 && schema != SCHEMA_V1 {
        return Err(format!(
            "unknown schema {schema:?} (expected {SCHEMA:?} or an older fexiot-obs/v1..v3)"
        ));
    }
    doc.get("run")
        .and_then(Json::as_str)
        .ok_or("missing string field 'run'")?;
    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'spans'")?;
    fn check_span(node: &Json, depth: usize) -> Result<(), String> {
        if depth > 64 {
            return Err("span tree deeper than 64 levels".to_string());
        }
        node.get("name")
            .and_then(Json::as_str)
            .ok_or("span missing string 'name'")?;
        if let Some(e) = node.get("elapsed_us") {
            if e.as_u64().is_none() {
                return Err("span 'elapsed_us' is not an unsigned integer".to_string());
            }
        }
        for c in node
            .get("children")
            .and_then(Json::as_arr)
            .ok_or("span missing array 'children'")?
        {
            check_span(c, depth + 1)?;
        }
        Ok(())
    }
    for s in spans {
        check_span(s, 0)?;
    }
    for (section, numeric) in [("counters", true), ("gauges", false)] {
        match doc.get(section) {
            Some(Json::Obj(members)) => {
                for (k, v) in members {
                    let ok = if numeric {
                        v.as_u64().is_some()
                    } else {
                        v.is_number() || *v == Json::Null
                    };
                    if !ok {
                        return Err(format!("{section}[{k:?}] has a malformed value"));
                    }
                }
            }
            _ => return Err(format!("missing object field '{section}'")),
        }
    }
    match doc.get("histograms") {
        Some(Json::Obj(members)) => {
            for (k, h) in members {
                let edges = h
                    .get("edges")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("histograms[{k:?}] missing 'edges'"))?;
                let counts = h
                    .get("counts")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("histograms[{k:?}] missing 'counts'"))?;
                if edges.len() != counts.len() + 1 {
                    return Err(format!(
                        "histograms[{k:?}]: {} edges need {} counts, found {}",
                        edges.len(),
                        edges.len() - 1,
                        counts.len()
                    ));
                }
                for field in ["underflow", "overflow", "count", "rejected"] {
                    if h.get(field).and_then(Json::as_u64).is_none() {
                        return Err(format!("histograms[{k:?}] missing integer '{field}'"));
                    }
                }
            }
        }
        _ => return Err("missing object field 'histograms'".to_string()),
    }
    doc.get("dropped_spans")
        .and_then(Json::as_u64)
        .ok_or("missing integer field 'dropped_spans'")?;
    if let Some(path) = doc.get("critical_path") {
        let entries = path
            .as_arr()
            .ok_or("'critical_path' is not an array")?;
        for (i, e) in entries.iter().enumerate() {
            for field in [
                "round",
                "total_ticks",
                "straggler_ticks",
                "backoff_ticks",
                "agg_ticks",
                "retries",
            ] {
                if e.get(field).and_then(Json::as_u64).is_none() {
                    return Err(format!("critical_path[{i}] missing integer '{field}'"));
                }
            }
            match e.get("client") {
                Some(Json::Null) => {}
                Some(c) if c.as_u64().is_some() => {}
                _ => {
                    return Err(format!(
                        "critical_path[{i}]: 'client' must be null or an unsigned integer"
                    ))
                }
            }
            e.get("cause")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("critical_path[{i}] missing string 'cause'"))?;
        }
    }
    if let Some(ts) = doc.get("timeseries") {
        crate::timeseries::validate_timeseries(ts)?;
    }
    if let Some(slo) = doc.get("slo") {
        crate::slo::validate_slo(slo)?;
    }
    if let Some(rc) = doc.get("root_cause") {
        crate::causal::validate_root_cause(rc)?;
    }
    if let Some(st) = doc.get("stream") {
        validate_stream_section(st)?;
    }
    Ok(())
}

/// Validates the v4 `stream` section: the streaming service's run summary
/// (whole-run totals, the detection digest, and per-actor mailbox stats).
fn validate_stream_section(st: &Json) -> Result<(), String> {
    for field in [
        "events",
        "detected",
        "vulnerable",
        "drifting",
        "shed",
        "stall_ticks",
        "rounds",
        "ticks",
    ] {
        if st.get(field).and_then(Json::as_u64).is_none() {
            return Err(format!("stream section missing integer '{field}'"));
        }
    }
    st.get("detections_digest")
        .and_then(Json::as_str)
        .ok_or("stream section missing string 'detections_digest'")?;
    let actors = st
        .get("actors")
        .and_then(Json::as_arr)
        .ok_or("stream section missing array 'actors'")?;
    for (i, a) in actors.iter().enumerate() {
        for field in ["name", "policy"] {
            if a.get(field).and_then(Json::as_str).is_none() {
                return Err(format!("stream actors[{i}] missing string '{field}'"));
            }
        }
        for field in [
            "capacity",
            "enqueued",
            "dequeued",
            "shed",
            "stall_ticks",
            "max_depth",
        ] {
            if a.get(field).and_then(Json::as_u64).is_none() {
                return Err(format!("stream actors[{i}] missing integer '{field}'"));
            }
        }
    }
    Ok(())
}

/// Validates one report file on disk (parse + [`validate_report`]), tagging
/// errors with the path.
pub fn check_report_file(path: &Path) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    validate_report(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

/// Expands schema-check arguments into report files: a file argument is kept
/// as-is, a directory contributes every `*.json` directly inside it (sorted,
/// so output order is stable). Errors on unreadable paths or a directory
/// containing no reports.
pub fn collect_report_paths(args: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for arg in args {
        let meta =
            std::fs::metadata(arg).map_err(|e| format!("{}: {e}", arg.display()))?;
        if !meta.is_dir() {
            out.push(arg.clone());
            continue;
        }
        let mut found = Vec::new();
        let entries =
            std::fs::read_dir(arg).map_err(|e| format!("{}: {e}", arg.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", arg.display()))?;
            let path = entry.path();
            if path.is_file() && path.extension().is_some_and(|e| e == "json") {
                found.push(path);
            }
        }
        if found.is_empty() {
            return Err(format!("{}: directory contains no *.json reports", arg.display()));
        }
        found.sort();
        out.append(&mut found);
    }
    Ok(out)
}

/// Renders the human-readable summary: the span tree with wall-clock
/// timings, then counters, gauges, and histogram digests.
pub fn render_summary(snap: &Snapshot) -> String {
    render_summary_with(snap, None)
}

/// [`render_summary`] plus the per-round critical path (federated runs).
pub fn render_summary_with(
    snap: &Snapshot,
    critical_path: Option<&[CriticalPathEntry]>,
) -> String {
    let mut out = String::new();
    out.push_str("── obs summary ──\n");
    if snap.roots.is_empty() {
        out.push_str("(no spans recorded)\n");
    }
    for root in &snap.roots {
        render_span(root, "", true, &mut out);
    }
    if snap.dropped_spans > 0 {
        out.push_str(&format!(
            "(span cap reached: {} spans dropped)\n",
            snap.dropped_spans
        ));
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (k, v) in &snap.counters {
            out.push_str(&format!("  {k} = {v}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (k, v) in &snap.gauges {
            out.push_str(&format!("  {k} = {v}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (k, h) in &snap.histograms {
            let stats = match (h.mean(), h.min, h.max) {
                (Some(mean), Some(min), Some(max)) => {
                    format!("mean {mean:.4}  min {min:.4}  max {max:.4}")
                }
                _ => "empty".to_string(),
            };
            out.push_str(&format!(
                "  {k}: n={}  {stats}  (under {} / over {} / rejected {})\n",
                h.count, h.underflow, h.overflow, h.rejected
            ));
        }
    }
    if let Some(path) = critical_path {
        if !path.is_empty() {
            out.push_str(&render_critical_path(path));
        }
    }
    out
}

/// Children shown per node in the summary tree before eliding the rest.
const SUMMARY_CHILD_CAP: usize = 24;

fn render_span(node: &SpanNode, prefix: &str, root: bool, out: &mut String) {
    let ms = node.elapsed_us as f64 / 1000.0;
    if root {
        out.push_str(&format!("{}{}  {:.1} ms\n", prefix, node.name, ms));
    }
    let shown = node.children.len().min(SUMMARY_CHILD_CAP);
    for (i, child) in node.children.iter().take(shown).enumerate() {
        let last = i + 1 == shown && node.children.len() <= SUMMARY_CHILD_CAP;
        let branch = if last { "└─ " } else { "├─ " };
        let cont = if last { "   " } else { "│  " };
        out.push_str(&format!(
            "{}{}{}  {:.1} ms\n",
            prefix,
            branch,
            child.name,
            child.elapsed_us as f64 / 1000.0
        ));
        render_span(child, &format!("{prefix}{cont}"), false, out);
    }
    if node.children.len() > SUMMARY_CHILD_CAP {
        out.push_str(&format!(
            "{}└─ … (+{} more)\n",
            prefix,
            node.children.len() - SUMMARY_CHILD_CAP
        ));
    }
}
