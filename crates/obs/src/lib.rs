//! # fexiot-obs
//!
//! First-party tracing and metrics for the FexIoT reproduction: hierarchical
//! wall-clock [spans](Registry::span), monotonic counters, gauges, and
//! fixed-bucket histograms, with three exporters — a schema-stable JSON run
//! report ([`report::write_report`]), a human-readable summary tree
//! ([`report::render_summary`]), and an in-memory [`Snapshot`] the test and
//! bench crates assert against.
//!
//! The build environment is offline, so this replaces the `tracing` /
//! `prometheus` crates with a small deterministic subsystem (same approach
//! as `vendor/`): no dependencies, coarse-mutex registry, one relaxed atomic
//! on the disabled path.
//!
//! ## Global vs. local registries
//!
//! Library instrumentation (the pipeline, GNN trainer, beam search) records
//! into the **process-global registry**, which is *disabled by default* —
//! existing runs and golden tests observe zero change until a CLI flag or
//! test calls [`set_global_enabled`]. The federated simulator additionally
//! owns a **local** always-enabled registry for its per-round accounting
//! (so concurrent simulations in one process never share counters) and can
//! be pointed at the global one with `FedSim::attach_obs`.
//!
//! ## Determinism rule
//!
//! Wall-clock data in a registry is exactly: span `elapsed_us`, `*_us`
//! histograms, and `*_per_sec` gauges (see [`is_timing_name`]). Exports
//! taken with [`report::Timing::Exclude`] drop all three and are
//! bit-identical across two runs with the same seed; nothing in this crate
//! feeds back into simulation state, so enabling observability never
//! perturbs results.
//!
//! ## Naming convention
//!
//! Dotted `crate.module.op` names for operations (`gnn.trainer.epoch_loss`,
//! `explain.search.expansions`), bare phase names for run-level roots
//! (`pipeline`), and `[index]` suffixes for instances (`round[3]`,
//! `client[0]`).

pub mod alloc;
pub mod causal;
pub mod cli;
pub mod diff;
pub mod export;
pub mod json;
pub mod profile;
pub mod registry;
pub mod report;
pub mod slo;
pub mod stream;
pub mod timeseries;
pub mod trace;

pub use alloc::AllocStats;
pub use causal::{
    chrome_trace, root_cause, root_cause_to_json, trace_id, validate_root_cause, CausalBuilder,
    CausalEdge, CausalGraph, CausalNode, CauseScore, EdgeKind, Entity, RuleRootCause,
    CAUSAL_SCHEMA,
};
pub use cli::ObsCli;
pub use export::{
    prometheus_from_report, prometheus_from_stream, validate_prometheus_text, WatchState,
};
pub use json::Json;
pub use profile::{collapsed_stacks, hot_spans, write_flame, SpanStat};
pub use registry::{
    is_environment_name, is_timing_name, Event, EventRecord, Histogram, HistogramSnapshot,
    Registry, Snapshot, SpanGuard, SpanNode, ENVIRONMENT_PREFIX, FLIGHT_RECORDER_CAP, RATE_SUFFIX,
    TIMING_SUFFIX,
};
pub use report::{
    check_report_file, collect_report_paths, deterministic_json, render_summary,
    render_summary_with, validate_report, write_report, write_report_full, Timing,
};
pub use slo::{SloEngine, SloRule, SloStatus, SloVerdict};
pub use timeseries::{FleetTelemetry, SampleSpec, TimeSeriesStore};
pub use trace::{critical_path, ClientRoundCost, CriticalPathEntry, RoundCost};

use std::cell::RefCell;
use std::sync::{Arc, LazyLock};

static GLOBAL: LazyLock<Arc<Registry>> = LazyLock::new(|| Arc::new(Registry::with_enabled(false)));

thread_local! {
    /// Per-thread override installed by [`with_registry`]; when set, the
    /// free-function instrumentation helpers below target it instead of the
    /// process-global registry.
    static SCOPED: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// The process-global registry (disabled until [`set_global_enabled`]).
pub fn global() -> &'static Arc<Registry> {
    &GLOBAL
}

/// Runs `f` with every free-function helper in this module ([`span`],
/// [`counter_add`], [`gauge_set`], [`hist_record`], [`mark`]) redirected to
/// `reg` **on the current thread only**. Used by `fexiot-par` worker threads
/// to route library instrumentation into a per-worker child registry that the
/// coordinator later merges with [`Registry::absorb`] in a deterministic
/// order — the scheme that keeps obs reports identical across thread counts.
/// Overrides nest; the previous target is restored on return (and on panic).
pub fn with_registry<R>(reg: &Arc<Registry>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Registry>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            SCOPED.with(|s| *s.borrow_mut() = prev);
        }
    }
    let prev = SCOPED.with(|s| s.borrow_mut().replace(Arc::clone(reg)));
    let _restore = Restore(prev);
    f()
}

/// The registry targeted by the free-function helpers on this thread: the
/// [`with_registry`] override when one is installed, else the global one.
fn target() -> Arc<Registry> {
    SCOPED.with(|s| {
        s.borrow()
            .as_ref()
            .map(Arc::clone)
            .unwrap_or_else(|| Arc::clone(&GLOBAL))
    })
}

/// Enables/disables the global registry. Library instrumentation is a no-op
/// while disabled (one relaxed atomic load per call site).
pub fn set_global_enabled(on: bool) {
    GLOBAL.set_enabled(on);
}

pub fn global_enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Opens a span on the thread's target registry (no-op guard while the
/// target is disabled). See [`with_registry`] for the per-thread override.
pub fn span(name: &str) -> SpanGuard {
    let reg = target();
    if !reg.is_enabled() {
        return SpanGuard::noop();
    }
    reg.span(name)
}

/// Adds to a counter on the thread's target registry (no-op while disabled).
pub fn counter_add(name: &str, v: u64) {
    target().counter_add(name, v);
}

/// Sets a gauge on the thread's target registry (no-op while disabled).
pub fn gauge_set(name: &str, v: f64) {
    target().gauge_set(name, v);
}

/// Records into a histogram on the thread's target registry (no-op while
/// disabled). `edges` bind on the histogram's first use; see
/// [`Registry::hist_record`].
pub fn hist_record(name: &str, edges: &[f64], v: f64) {
    target().hist_record(name, edges, v);
}

/// Emits a boundary marker on the thread's target registry (no-op while
/// disabled).
pub fn mark(name: &str) {
    target().mark(name);
}

/// Attaches a JSONL event stream on the global registry, writing to `path`
/// (truncated). See [`Registry::set_stream`] for the timing-mode semantics.
pub fn stream_global_to_file(
    path: &std::path::Path,
    run: &str,
    include_timing: bool,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    GLOBAL.set_stream(Box::new(std::io::BufWriter::new(file)), run, include_timing);
    Ok(())
}

/// Detaches and flushes the global registry's event stream, if any.
pub fn close_global_stream() {
    drop(GLOBAL.take_stream());
}

/// Bucket-edge presets shared by instrumentation sites.
pub mod buckets {
    /// Loss-like magnitudes (contrastive losses live in roughly [0, 10]).
    pub const LOSS: &[f64] = &[0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];
    /// Norm-like magnitudes spanning several decades.
    pub const NORM: &[f64] = &[0.0, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4];
    /// Small non-negative counts (retries, expansions per step).
    pub const SMALL_COUNT: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    /// Wall-clock durations in microseconds (log-spaced 100 µs .. 10 s).
    /// Histograms over these edges must use a `*_us` name so exports treat
    /// them as timing data (see [`crate::is_timing_name`]).
    pub const TIME_US: &[f64] = &[1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_global_records_nothing() {
        // Must not flip the global flag: other tests in this binary rely on
        // it staying off. The default-off path is the one exercised here.
        assert!(!global_enabled());
        counter_add("test.lib.counter", 3);
        gauge_set("test.lib.gauge", 1.0);
        hist_record("test.lib.hist", buckets::LOSS, 0.5);
        let _s = span("test.lib.span");
        let snap = global().snapshot();
        assert!(!snap.counters.contains_key("test.lib.counter"));
        assert!(!snap.gauges.contains_key("test.lib.gauge"));
        assert!(!snap.histograms.contains_key("test.lib.hist"));
    }
}
