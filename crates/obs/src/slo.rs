//! Declarative SLO rules evaluated deterministically against the per-round
//! time-series store.
//!
//! A rule binds a series to an aggregate over a trailing round window and a
//! comparison, e.g. *mean of `fed.round.quorum_aborted` over the last 20
//! rounds must be ≤ 0.05*. Rules are parsed from a committed TOML-subset or
//! JSON file, evaluated once per round, and their verdicts flow into
//! `RoundTelemetry`, the run report's `slo` section, and a nonzero CLI exit
//! code — the CI gate for fleet health.
//!
//! Evaluation reads only the (deterministic) time-series store, so same-seed
//! runs produce byte-identical verdicts at any thread count.

use crate::timeseries::TimeSeriesStore;
use crate::Json;

/// How the window of samples collapses to one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SloAgg {
    #[default]
    Mean,
    Min,
    Max,
    Sum,
    /// Newest sample in the window.
    Last,
}

impl SloAgg {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "mean" => Ok(SloAgg::Mean),
            "min" => Ok(SloAgg::Min),
            "max" => Ok(SloAgg::Max),
            "sum" => Ok(SloAgg::Sum),
            "last" => Ok(SloAgg::Last),
            other => Err(format!("unknown aggregate {other:?} (mean|min|max|sum|last)")),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            SloAgg::Mean => "mean",
            SloAgg::Min => "min",
            SloAgg::Max => "max",
            SloAgg::Sum => "sum",
            SloAgg::Last => "last",
        }
    }

    fn apply(&self, values: impl Iterator<Item = f64>) -> Option<f64> {
        let vals: Vec<f64> = values.collect();
        if vals.is_empty() {
            return None;
        }
        Some(match self {
            SloAgg::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
            SloAgg::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
            SloAgg::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            SloAgg::Sum => vals.iter().sum(),
            SloAgg::Last => *vals.last().expect("non-empty"),
        })
    }
}

/// The comparison between the aggregated value and the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    Le,
    Ge,
    Lt,
    Gt,
    Eq,
}

impl SloOp {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "<=" => Ok(SloOp::Le),
            ">=" => Ok(SloOp::Ge),
            "<" => Ok(SloOp::Lt),
            ">" => Ok(SloOp::Gt),
            "==" => Ok(SloOp::Eq),
            other => Err(format!("unknown comparison {other:?} (<=|>=|<|>|==)")),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            SloOp::Le => "<=",
            SloOp::Ge => ">=",
            SloOp::Lt => "<",
            SloOp::Gt => ">",
            SloOp::Eq => "==",
        }
    }

    fn holds(&self, value: f64, threshold: f64) -> bool {
        match self {
            SloOp::Le => value <= threshold,
            SloOp::Ge => value >= threshold,
            SloOp::Lt => value < threshold,
            SloOp::Gt => value > threshold,
            SloOp::Eq => value == threshold,
        }
    }
}

/// One declarative rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Stable identifier surfaced in verdicts (defaults to the metric name).
    pub name: String,
    /// Series name in the time-series store (e.g. `fed.round.quorum_aborted`
    /// or `fed.round.loss.p90`).
    pub metric: String,
    pub agg: SloAgg,
    /// Trailing window in rounds (`0` = all retained samples).
    pub window: usize,
    pub op: SloOp,
    pub threshold: f64,
    /// Verdict stays `NoData` until the window holds at least this many
    /// samples — young runs never fail a long-window rule.
    pub min_samples: usize,
}

impl SloRule {
    /// Human-readable form, e.g.
    /// `quorum-health: mean(fed.round.quorum_aborted) over last 20 <= 0.05`.
    pub fn describe(&self) -> String {
        let window = if self.window == 0 {
            "all rounds".to_string()
        } else {
            format!("last {}", self.window)
        };
        format!(
            "{}: {}({}) over {} {} {}",
            self.name,
            self.agg.name(),
            self.metric,
            window,
            self.op.symbol(),
            self.threshold
        )
    }
}

/// Outcome of one rule at one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloStatus {
    Pass,
    Fail,
    /// The series is missing or below `min_samples` — not a failure.
    NoData,
}

impl SloStatus {
    pub fn name(&self) -> &'static str {
        match self {
            SloStatus::Pass => "pass",
            SloStatus::Fail => "fail",
            SloStatus::NoData => "no_data",
        }
    }
}

/// The latest evaluation of one rule, plus its per-run failure accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    pub rule: SloRule,
    pub status: SloStatus,
    /// Aggregated value at the latest evaluation (`None` on `NoData`).
    pub value: Option<f64>,
    /// Round of the latest evaluation (`None` before any).
    pub round: Option<u64>,
    pub rounds_evaluated: u64,
    pub rounds_failed: u64,
    /// First round at which the rule failed, if it ever did.
    pub first_failed_round: Option<u64>,
}

impl SloVerdict {
    fn new(rule: SloRule) -> Self {
        Self {
            rule,
            status: SloStatus::NoData,
            value: None,
            round: None,
            rounds_evaluated: 0,
            rounds_failed: 0,
            first_failed_round: None,
        }
    }

    /// One summary line, e.g.
    /// `SLO FAIL quorum-health: mean(fed.round.quorum_aborted) over last 20 <= 0.05 (value 0.4, failed 3/10 rounds)`.
    pub fn render(&self) -> String {
        let mut line = format!("SLO {} {}", self.status.name().to_uppercase(), self.rule.describe());
        if let Some(v) = self.value {
            line.push_str(&format!(" (value {v}"));
            if self.rounds_failed > 0 {
                line.push_str(&format!(
                    ", failed {}/{} rounds",
                    self.rounds_failed, self.rounds_evaluated
                ));
            }
            line.push(')');
        }
        line
    }
}

/// Parses rules and evaluates them each round against the series store.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    verdicts: Vec<SloVerdict>,
}

impl SloEngine {
    pub fn new(rules: Vec<SloRule>) -> Self {
        Self {
            verdicts: rules.into_iter().map(SloVerdict::new).collect(),
        }
    }

    /// Parses a rules file. JSON documents (first non-space byte `{` or `[`)
    /// hold an array of rule objects (optionally under a `rule` key); anything
    /// else is read as the TOML subset: `[[rule]]` tables of `key = value`
    /// pairs with `#` comments. Keys: `metric` (required), `name`, `agg`,
    /// `window`, `op`, `threshold` (required), `min_samples`.
    pub fn parse(text: &str) -> Result<Self, String> {
        // `[[rule]]` (TOML array-of-tables) also starts with `[`; only a
        // single bracket or a brace marks the JSON form.
        let trimmed = text.trim_start();
        let json = trimmed.starts_with('{')
            || (trimmed.starts_with('[') && !trimmed.starts_with("[["));
        let rules = if json {
            parse_json_rules(text)?
        } else {
            parse_toml_rules(text)?
        };
        if rules.is_empty() {
            return Err("no [[rule]] entries in SLO file".into());
        }
        Ok(Self::new(rules))
    }

    pub fn rules(&self) -> impl Iterator<Item = &SloRule> {
        self.verdicts.iter().map(|v| &v.rule)
    }

    pub fn verdicts(&self) -> &[SloVerdict] {
        &self.verdicts
    }

    /// Evaluates every rule against the store's current series at `round`;
    /// returns how many rules are failing *now*.
    pub fn evaluate(&mut self, round: u64, store: &TimeSeriesStore) -> usize {
        let mut failing = 0;
        for v in &mut self.verdicts {
            let rule = &v.rule;
            let agg = store.series(&rule.metric).and_then(|s| {
                let n = s.tail(rule.window).count();
                (n >= rule.min_samples.max(1)).then(|| rule.agg.apply(s.tail(rule.window)))?
            });
            v.round = Some(round);
            match agg {
                None => {
                    v.status = SloStatus::NoData;
                    v.value = None;
                }
                Some(value) => {
                    v.rounds_evaluated += 1;
                    v.value = Some(value);
                    if rule.op.holds(value, rule.threshold) {
                        v.status = SloStatus::Pass;
                    } else {
                        v.status = SloStatus::Fail;
                        v.rounds_failed += 1;
                        if v.first_failed_round.is_none() {
                            v.first_failed_round = Some(round);
                        }
                        failing += 1;
                    }
                }
            }
        }
        failing
    }

    /// True when any rule failed at any evaluated round.
    pub fn any_failed(&self) -> bool {
        self.verdicts.iter().any(|v| v.rounds_failed > 0)
    }

    /// The report's `slo` section.
    pub fn to_json(&self) -> Json {
        let verdicts = self
            .verdicts
            .iter()
            .map(|v| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(v.rule.name.clone())),
                    ("rule".into(), Json::Str(v.rule.describe())),
                    ("metric".into(), Json::Str(v.rule.metric.clone())),
                    ("status".into(), Json::Str(v.status.name().to_string())),
                    (
                        "value".into(),
                        v.value.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("rounds_evaluated".into(), Json::UInt(v.rounds_evaluated)),
                    ("rounds_failed".into(), Json::UInt(v.rounds_failed)),
                    (
                        "first_failed_round".into(),
                        v.first_failed_round.map(Json::UInt).unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("failed".into(), Json::Bool(self.any_failed())),
            ("verdicts".into(), Json::Arr(verdicts)),
        ])
    }
}

/// Validates a report's `slo` section (v2 documents).
pub fn validate_slo(doc: &Json) -> Result<(), String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("slo: not an object".into());
    }
    if !matches!(doc.get("failed"), Some(Json::Bool(_))) {
        return Err("slo: missing boolean `failed`".into());
    }
    let verdicts = match doc.get("verdicts") {
        Some(Json::Arr(v)) => v,
        _ => return Err("slo: missing `verdicts` array".into()),
    };
    for v in verdicts {
        for key in ["name", "rule", "metric", "status"] {
            if v.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("slo verdict: missing string `{key}`"));
            }
        }
        match v.get("status").and_then(Json::as_str) {
            Some("pass") | Some("fail") | Some("no_data") => {}
            other => return Err(format!("slo verdict: bad status {other:?}")),
        }
        for key in ["rounds_evaluated", "rounds_failed"] {
            if v.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("slo verdict: missing integer `{key}`"));
            }
        }
    }
    Ok(())
}

fn rule_from_pairs(pairs: &[(String, TomlValue)], at: &str) -> Result<SloRule, String> {
    let mut metric = None;
    let mut name = None;
    let mut agg = SloAgg::default();
    let mut window = 0usize;
    let mut op = SloOp::Le;
    let mut threshold = None;
    let mut min_samples = 1usize;
    for (key, value) in pairs {
        match key.as_str() {
            "metric" => metric = Some(value.expect_str(key, at)?.to_string()),
            "name" => name = Some(value.expect_str(key, at)?.to_string()),
            "agg" => agg = SloAgg::parse(value.expect_str(key, at)?)?,
            "window" => window = value.expect_num(key, at)? as usize,
            "op" => op = SloOp::parse(value.expect_str(key, at)?)?,
            "threshold" => threshold = Some(value.expect_num(key, at)?),
            "min_samples" => min_samples = value.expect_num(key, at)? as usize,
            other => return Err(format!("{at}: unknown key {other:?}")),
        }
    }
    let metric = metric.ok_or_else(|| format!("{at}: missing `metric`"))?;
    let threshold = threshold.ok_or_else(|| format!("{at}: missing `threshold`"))?;
    if !threshold.is_finite() {
        return Err(format!("{at}: non-finite threshold"));
    }
    Ok(SloRule {
        name: name.unwrap_or_else(|| metric.clone()),
        metric,
        agg,
        window,
        op,
        threshold,
        min_samples: min_samples.max(1),
    })
}

/// A scalar in the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Num(f64),
}

impl TomlValue {
    fn expect_str<'a>(&'a self, key: &str, at: &str) -> Result<&'a str, String> {
        match self {
            TomlValue::Str(s) => Ok(s),
            TomlValue::Num(_) => Err(format!("{at}: `{key}` must be a string")),
        }
    }

    fn expect_num(&self, key: &str, at: &str) -> Result<f64, String> {
        match self {
            TomlValue::Num(v) => Ok(*v),
            TomlValue::Str(_) => Err(format!("{at}: `{key}` must be a number")),
        }
    }
}

/// Parses the committed-config TOML subset: `[[rule]]` array-of-table
/// headers, one `key = value` per line (quoted strings or bare numbers),
/// `#` comments, blank lines. That is all a rules file needs; anything else
/// is a parse error, not silently ignored.
fn parse_toml_rules(text: &str) -> Result<Vec<SloRule>, String> {
    let mut rules = Vec::new();
    let mut current: Option<Vec<(String, TomlValue)>> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let at = format!("SLO rules line {}", lineno + 1);
        let line = match raw.find('#') {
            // A `#` inside a quoted value is part of the value, not a
            // comment; only strip when no quote precedes it.
            Some(i) if !raw[..i].contains('"') => &raw[..i],
            _ => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            if let Some(pairs) = current.take() {
                rules.push(rule_from_pairs(&pairs, &at)?);
            }
            current = Some(Vec::new());
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("{at}: unsupported table {line:?} (only [[rule]])"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("{at}: expected `key = value`, got {line:?}"))?;
        let key = key.trim().to_string();
        let value = value.trim();
        let parsed = if let Some(stripped) = value.strip_prefix('"') {
            let inner = stripped
                .strip_suffix('"')
                .ok_or_else(|| format!("{at}: unterminated string"))?;
            TomlValue::Str(inner.to_string())
        } else {
            TomlValue::Num(
                value
                    .parse::<f64>()
                    .map_err(|_| format!("{at}: bad value {value:?} (quoted string or number)"))?,
            )
        };
        current
            .as_mut()
            .ok_or_else(|| format!("{at}: key outside [[rule]]"))?
            .push((key, parsed));
    }
    if let Some(pairs) = current.take() {
        rules.push(rule_from_pairs(&pairs, "SLO rules (last table)")?);
    }
    Ok(rules)
}

/// Parses the JSON form: `[{...}, ...]` or `{"rule": [{...}, ...]}`.
fn parse_json_rules(text: &str) -> Result<Vec<SloRule>, String> {
    let doc = Json::parse(text).map_err(|e| format!("SLO rules JSON: {e:?}"))?;
    let arr = match &doc {
        Json::Arr(a) => a.as_slice(),
        Json::Obj(_) => doc
            .get("rule")
            .and_then(Json::as_arr)
            .ok_or("SLO rules JSON object must hold a `rule` array")?,
        _ => return Err("SLO rules JSON must be an array of rule objects".into()),
    };
    let mut rules = Vec::new();
    for (i, obj) in arr.iter().enumerate() {
        let at = format!("SLO rules JSON rule {i}");
        let members = match obj {
            Json::Obj(m) => m,
            _ => return Err(format!("{at}: not an object")),
        };
        let mut pairs = Vec::new();
        for (k, v) in members {
            let value = match v {
                Json::Str(s) => TomlValue::Str(s.clone()),
                _ => TomlValue::Num(
                    v.as_f64().ok_or_else(|| format!("{at}: `{k}` must be string or number"))?,
                ),
            };
            pairs.push((k.clone(), value));
        }
        rules.push(rule_from_pairs(&pairs, &at)?);
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES_TOML: &str = r#"
# Fleet health gates.
[[rule]]
name = "quorum-health"
metric = "fed.round.quorum_aborted"
agg = "mean"
window = 20
op = "<="
threshold = 0.05

[[rule]]
metric = "fed.round.participants"
agg = "min"
op = ">="
threshold = 1
"#;

    #[test]
    fn toml_subset_parses_rules() {
        let engine = SloEngine::parse(RULES_TOML).expect("parses");
        let rules: Vec<&SloRule> = engine.rules().collect();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "quorum-health");
        assert_eq!(rules[0].window, 20);
        assert_eq!(rules[0].op, SloOp::Le);
        assert_eq!(
            rules[0].describe(),
            "quorum-health: mean(fed.round.quorum_aborted) over last 20 <= 0.05"
        );
        // Name defaults to the metric; window defaults to all rounds.
        assert_eq!(rules[1].name, "fed.round.participants");
        assert_eq!(rules[1].window, 0);
        assert_eq!(rules[1].agg, SloAgg::Min);
    }

    #[test]
    fn json_form_parses_the_same_rules() {
        let json = r#"[
            {"name":"quorum-health","metric":"fed.round.quorum_aborted","agg":"mean","window":20,"op":"<=","threshold":0.05},
            {"metric":"fed.round.participants","agg":"min","op":">=","threshold":1}
        ]"#;
        let a = SloEngine::parse(RULES_TOML).unwrap();
        let b = SloEngine::parse(json).unwrap();
        assert_eq!(a.rules().collect::<Vec<_>>(), b.rules().collect::<Vec<_>>());
    }

    #[test]
    fn malformed_rules_are_rejected() {
        for (text, why) in [
            ("", "empty"),
            ("[[rule]]\nthreshold = 1", "missing metric"),
            ("[[rule]]\nmetric = \"m\"", "missing threshold"),
            ("[[rule]]\nmetric = \"m\"\nthreshold = 1\nop = \"!=\"", "bad op"),
            ("[[rule]]\nmetric = \"m\"\nthreshold = 1\nagg = \"p99\"", "bad agg"),
            ("metric = \"m\"", "key outside table"),
            ("[rule]\nmetric = \"m\"", "non-array table"),
            ("[[rule]]\nmetric = \"m\"\nbogus = 1\nthreshold = 1", "unknown key"),
        ] {
            assert!(SloEngine::parse(text).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn evaluation_windows_and_min_samples() {
        let mut store = TimeSeriesStore::new(64);
        let mut engine = SloEngine::parse(
            "[[rule]]\nmetric = \"fed.round.aborts\"\nagg = \"mean\"\nwindow = 2\nop = \"<=\"\nthreshold = 0.5\nmin_samples = 2",
        )
        .unwrap();
        // Round 0: one sample < min_samples → NoData, not a failure.
        store.push_sample(0, "fed.round.aborts", 1.0);
        assert_eq!(engine.evaluate(0, &store), 0);
        assert_eq!(engine.verdicts()[0].status, SloStatus::NoData);
        // Round 1: window [1, 1] mean 1.0 > 0.5 → Fail.
        store.push_sample(1, "fed.round.aborts", 1.0);
        assert_eq!(engine.evaluate(1, &store), 1);
        assert_eq!(engine.verdicts()[0].status, SloStatus::Fail);
        assert_eq!(engine.verdicts()[0].first_failed_round, Some(1));
        // Rounds 2-3: healthy samples roll the window → Pass again, but the
        // run-level gate remembers the failure.
        store.push_sample(2, "fed.round.aborts", 0.0);
        store.push_sample(3, "fed.round.aborts", 0.0);
        assert_eq!(engine.evaluate(3, &store), 0);
        assert_eq!(engine.verdicts()[0].status, SloStatus::Pass);
        assert!(engine.any_failed());
        assert_eq!(engine.verdicts()[0].rounds_failed, 1);
        assert_eq!(engine.verdicts()[0].rounds_evaluated, 2);
    }

    #[test]
    fn slo_section_validates_and_renders() {
        let mut store = TimeSeriesStore::new(8);
        let mut engine =
            SloEngine::parse("[[rule]]\nmetric = \"fed.x\"\nop = \"<=\"\nthreshold = 0.0").unwrap();
        store.push_sample(0, "fed.x", 1.0);
        engine.evaluate(0, &store);
        let doc = engine.to_json();
        validate_slo(&doc).expect("section validates");
        validate_slo(&Json::parse(&doc.to_string()).unwrap()).expect("reparse validates");
        assert!(doc.get("failed") == Some(&Json::Bool(true)));
        let line = engine.verdicts()[0].render();
        assert!(line.starts_with("SLO FAIL fed.x:"), "{line}");
        assert!(validate_slo(&Json::Null).is_err());
    }
}
