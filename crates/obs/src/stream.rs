//! The JSONL event stream (schema `fexiot-obs-events/v1`): the line writer
//! used by the registry's live sink, and a parser for tools and tests.
//!
//! Layout: the first line is a header object
//! `{"schema":"fexiot-obs-events/v1","run":NAME}`; every following line is
//! one event object whose `"seq"` is strictly increasing. In timing-excluded
//! mode span-close lines drop `elapsed_us`, and samples for `*_us`
//! histograms and writes to `*_per_sec` gauges are suppressed entirely, so
//! the stream is bit-identical across same-seed runs (the mirror of
//! `Timing::Exclude` report exports).

use crate::json::Json;
use crate::registry::{is_environment_name, is_timing_name, Event, EventRecord};

/// True when a metric write is suppressed in timing-excluded streams:
/// wall-clock data (`*_us`, `*_per_sec`) and execution-environment facts
/// (`par.*` pool sizing) both vary across hosts/thread counts without
/// affecting results.
fn suppressed_when_excluded(name: &str) -> bool {
    is_timing_name(name) || is_environment_name(name)
}

/// Schema tag carried by the stream header line.
pub const EVENT_SCHEMA: &str = "fexiot-obs-events/v1";

/// The header line opening every stream (no trailing newline).
pub fn header_line(run: &str) -> String {
    Json::Obj(vec![
        ("schema".into(), Json::Str(EVENT_SCHEMA.into())),
        ("run".into(), Json::Str(run.into())),
    ])
    .to_string()
}

/// Serializes one event record as a JSON value, or `None` when the event is
/// suppressed in timing-excluded mode (samples of `*_us` histograms and
/// writes to `*_per_sec` gauges are wall-clock data and would break stream
/// determinism).
pub fn event_to_json(rec: &EventRecord, include_timing: bool) -> Option<Json> {
    let mut members = vec![("seq".to_string(), Json::UInt(rec.seq))];
    match &rec.event {
        Event::SpanOpen { id, parent, name } => {
            members.push(("ev".into(), Json::Str("span_open".into())));
            members.push(("id".into(), Json::UInt(*id)));
            members.push((
                "parent".into(),
                parent.map(Json::UInt).unwrap_or(Json::Null),
            ));
            members.push(("name".into(), Json::Str(name.clone())));
        }
        Event::SpanClose {
            id,
            name,
            elapsed_us,
        } => {
            members.push(("ev".into(), Json::Str("span_close".into())));
            members.push(("id".into(), Json::UInt(*id)));
            members.push(("name".into(), Json::Str(name.clone())));
            if include_timing {
                members.push(("elapsed_us".into(), Json::UInt(*elapsed_us)));
            }
        }
        Event::Counter { name, delta, total } => {
            members.push(("ev".into(), Json::Str("counter".into())));
            members.push(("name".into(), Json::Str(name.clone())));
            members.push(("delta".into(), Json::UInt(*delta)));
            members.push(("total".into(), Json::UInt(*total)));
        }
        Event::Gauge { name, value } => {
            if !include_timing && suppressed_when_excluded(name) {
                return None;
            }
            members.push(("ev".into(), Json::Str("gauge".into())));
            members.push(("name".into(), Json::Str(name.clone())));
            members.push(("value".into(), Json::Num(*value)));
        }
        Event::Hist { name, value } => {
            if !include_timing && suppressed_when_excluded(name) {
                return None;
            }
            members.push(("ev".into(), Json::Str("hist".into())));
            members.push(("name".into(), Json::Str(name.clone())));
            members.push(("value".into(), Json::Num(*value)));
        }
        Event::Mark { name } => {
            members.push(("ev".into(), Json::Str("mark".into())));
            members.push(("name".into(), Json::Str(name.clone())));
        }
    }
    Some(Json::Obj(members))
}

/// Serializes one event record as a JSONL line (no trailing newline), or
/// `None` when the event is suppressed in timing-excluded mode.
pub fn event_to_line(rec: &EventRecord, include_timing: bool) -> Option<String> {
    event_to_json(rec, include_timing).map(|j| j.to_string())
}

fn num(j: &Json) -> Option<f64> {
    match j {
        Json::UInt(v) => Some(*v as f64),
        Json::Num(v) => Some(*v),
        _ => None,
    }
}

fn field<'a>(obj: &'a Json, key: &str, line_no: usize) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("line {line_no}: missing field {key:?}"))
}

/// Parses one event line. `line_no` is used only in error messages.
pub fn parse_line(line: &str, line_no: usize) -> Result<EventRecord, String> {
    let obj = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
    let seq = field(&obj, "seq", line_no)?
        .as_u64()
        .ok_or_else(|| format!("line {line_no}: seq must be an unsigned integer"))?;
    let ev = field(&obj, "ev", line_no)?
        .as_str()
        .ok_or_else(|| format!("line {line_no}: ev must be a string"))?;
    let name = |key: &str| -> Result<String, String> {
        field(&obj, key, line_no)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("line {line_no}: {key} must be a string"))
    };
    let uint = |key: &str| -> Result<u64, String> {
        field(&obj, key, line_no)?
            .as_u64()
            .ok_or_else(|| format!("line {line_no}: {key} must be an unsigned integer"))
    };
    let value = |key: &str| -> Result<f64, String> {
        num(field(&obj, key, line_no)?)
            .ok_or_else(|| format!("line {line_no}: {key} must be a number"))
    };
    let event = match ev {
        "span_open" => Event::SpanOpen {
            id: uint("id")?,
            parent: match field(&obj, "parent", line_no)? {
                Json::Null => None,
                j => Some(j.as_u64().ok_or_else(|| {
                    format!("line {line_no}: parent must be null or an unsigned integer")
                })?),
            },
            name: name("name")?,
        },
        "span_close" => Event::SpanClose {
            id: uint("id")?,
            name: name("name")?,
            // Absent in timing-excluded streams; 0 marks "not recorded".
            elapsed_us: if obj.get("elapsed_us").is_some() {
                uint("elapsed_us")?
            } else {
                0
            },
        },
        "counter" => Event::Counter {
            name: name("name")?,
            delta: uint("delta")?,
            total: uint("total")?,
        },
        "gauge" => Event::Gauge {
            name: name("name")?,
            value: value("value")?,
        },
        "hist" => Event::Hist {
            name: name("name")?,
            value: value("value")?,
        },
        "mark" => Event::Mark { name: name("name")? },
        other => return Err(format!("line {line_no}: unknown event kind {other:?}")),
    };
    Ok(EventRecord { seq, event })
}

/// Parses a whole stream: header line first, then events with strictly
/// increasing sequence numbers. Blank lines are ignored. Returns the run
/// name from the header and the events in order.
pub fn parse_stream(text: &str) -> Result<(String, Vec<EventRecord>), String> {
    let mut run = None;
    let mut events = Vec::new();
    let mut last_seq: Option<u64> = None;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let Some(run_name) = &run else {
            let header = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
            let schema = field(&header, "schema", line_no)?
                .as_str()
                .ok_or_else(|| format!("line {line_no}: schema must be a string"))?;
            if schema != EVENT_SCHEMA {
                return Err(format!(
                    "line {line_no}: schema {schema:?} is not {EVENT_SCHEMA:?}"
                ));
            }
            run = Some(
                field(&header, "run", line_no)?
                    .as_str()
                    .ok_or_else(|| format!("line {line_no}: run must be a string"))?
                    .to_string(),
            );
            continue;
        };
        let _ = run_name;
        let rec = parse_line(line, line_no)?;
        if let Some(prev) = last_seq {
            if rec.seq <= prev {
                return Err(format!(
                    "line {line_no}: seq {} not greater than previous {prev} \
                     (stream gap or reordering)",
                    rec.seq
                ));
            }
        }
        last_seq = Some(rec.seq);
        events.push(rec);
    }
    match run {
        Some(run) => Ok((run, events)),
        None => Err("empty stream: missing header line".into()),
    }
}
