//! Deterministic causal trace graph over federated runs.
//!
//! The simulator's metrics say *what* degraded (participants dropped, a
//! quorum aborted); this module records *why*, as a graph: span nodes (the
//! run and each round) plus **fault-event nodes** — dropout, crash and
//! rejoin, straggler waits, lossy-link retries, quarantine, aggregator
//! crash/reassign, deadline misses, quorum aborts — linked by parent/child
//! and follows-from edges (crash → rejoin → stale-update decay; aggregator
//! crash → ring reassign).
//!
//! ## Determinism contract
//!
//! Trace/span IDs are derived by hashing `(seed, round, entity, kind)` —
//! never wall-clock or thread identity — and every node is emitted on the
//! coordinator thread in round order, so the same seed yields a
//! byte-identical graph at any `--threads` width. Timestamps (`ts`/`dur`)
//! come from a simulated tick counter. The only wall-clock field is
//! `wall_us`, which follows the crate's `_us` timing convention: it is
//! dropped from [`Timing::Exclude`] exports and carried only in the
//! timing-suffixed variant, which is excluded from byte comparison.
//!
//! ## Root-cause attribution
//!
//! [`root_cause`] generalizes [`crate::critical_path`] from per-round to
//! whole-run: for each failing SLO rule it walks the rule's trailing window
//! in the graph and ranks the fault kinds by attributed simulated-tick cost.

use crate::json::Json;
use crate::report::Timing;
use crate::slo::{SloEngine, SloStatus};

/// Schema tag of a serialized causal graph document.
pub const CAUSAL_SCHEMA: &str = "fexiot-obs-causal/v1";

/// Fault-event kinds that carry attribution cost. Structural nodes (`run`,
/// `round`) and recovery markers (`rejoin`, `agg_rejoin`) are excluded from
/// root-cause ranking — they describe the graph, not a degradation.
const STRUCTURAL_KINDS: [&str; 4] = ["run", "round", "rejoin", "agg_rejoin"];

/// What a causal node is about: the run, a round, one client, or one edge
/// aggregator. The entity picks the Chrome-trace track (`tid`) so Perfetto
/// renders one lane per client/aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    Run,
    Round,
    Client(usize),
    Aggregator(usize),
}

impl Entity {
    fn render(&self) -> String {
        match self {
            Entity::Run => "run".into(),
            Entity::Round => "round".into(),
            Entity::Client(c) => format!("client[{c}]"),
            Entity::Aggregator(a) => format!("agg[{a}]"),
        }
    }

    fn parse(s: &str) -> Option<Entity> {
        let idx = |prefix: &str| {
            s.strip_prefix(prefix)
                .and_then(|r| r.strip_suffix(']'))
                .and_then(|r| r.parse::<usize>().ok())
        };
        match s {
            "run" => Some(Entity::Run),
            "round" => Some(Entity::Round),
            _ => idx("client[")
                .map(Entity::Client)
                .or_else(|| idx("agg[").map(Entity::Aggregator)),
        }
    }

    /// Chrome-trace thread id: coordinator lane 0, aggregators from 1,
    /// clients from 1000 (edge-aggregator tiers are small by construction).
    fn tid(&self) -> u64 {
        match self {
            Entity::Run | Entity::Round => 0,
            Entity::Aggregator(a) => 1 + *a as u64,
            Entity::Client(c) => 1000 + *c as u64,
        }
    }
}

/// One node: a span (`run`, `round`) or a fault event. `ticks` is the
/// simulated-tick cost attributed to the event (unit cost 1 for tick-less
/// faults like dropout, so counting degradations ranks them too); `ts`/`dur`
/// are deterministic tick-counter coordinates for the Chrome-trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalNode {
    pub id: u64,
    pub round: u64,
    pub entity: Entity,
    pub kind: String,
    pub ticks: u64,
    pub ts: u64,
    pub dur: u64,
    /// Wall-clock µs since the run started when the node was emitted. The
    /// `_us` suffix marks it as timing data: excluded exports zero it.
    pub wall_us: u64,
}

/// Edge kinds: `Child` is containment (round → fault event), `Follows` is
/// causal succession across nodes (crash → rejoin, agg down → reassign).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    Child,
    Follows,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CausalEdge {
    pub from: u64,
    pub to: u64,
    pub kind: EdgeKind,
}

/// The whole causal trace of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalGraph {
    pub run: String,
    pub seed: u64,
    pub nodes: Vec<CausalNode>,
    pub edges: Vec<CausalEdge>,
}

/// FNV-1a over `(seed, round, entity, kind)`. No wall clock, no thread
/// identity: the ID of every node is a pure function of run semantics, which
/// is what makes same-seed graphs byte-identical across thread widths and
/// distinct-seed graphs (virtually certainly) ID-disjoint.
pub fn trace_id(seed: u64, round: u64, entity: Entity, kind: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&seed.to_le_bytes());
    eat(&round.to_le_bytes());
    let (tag, idx): (u8, u64) = match entity {
        Entity::Run => (0, 0),
        Entity::Round => (1, 0),
        Entity::Client(c) => (2, c as u64),
        Entity::Aggregator(a) => (3, a as u64),
    };
    eat(&[tag]);
    eat(&idx.to_le_bytes());
    eat(kind.as_bytes());
    h
}

impl CausalGraph {
    pub fn node(&self, id: u64) -> Option<&CausalNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Newest round any node belongs to (`None` on a round-less graph).
    pub fn last_round(&self) -> Option<u64> {
        self.nodes
            .iter()
            .filter(|n| n.entity != Entity::Run)
            .map(|n| n.round)
            .max()
    }

    /// Serializes the graph. [`Timing::Exclude`] zeroes `wall_us` (the only
    /// wall-clock field), making same-seed documents byte-identical at any
    /// thread width; [`Timing::Include`] is the timing-suffixed variant.
    pub fn to_json(&self, timing: Timing) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let mut members = vec![
                    ("id".into(), Json::UInt(n.id)),
                    ("round".into(), Json::UInt(n.round)),
                    ("entity".into(), Json::Str(n.entity.render())),
                    ("kind".into(), Json::Str(n.kind.clone())),
                    ("ticks".into(), Json::UInt(n.ticks)),
                    ("ts".into(), Json::UInt(n.ts)),
                    ("dur".into(), Json::UInt(n.dur)),
                ];
                if matches!(timing, Timing::Include) {
                    members.push(("wall_us".into(), Json::UInt(n.wall_us)));
                }
                Json::Obj(members)
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("from".into(), Json::UInt(e.from)),
                    ("to".into(), Json::UInt(e.to)),
                    (
                        "kind".into(),
                        Json::Str(
                            match e.kind {
                                EdgeKind::Child => "child",
                                EdgeKind::Follows => "follows",
                            }
                            .into(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(CAUSAL_SCHEMA.into())),
            ("run".into(), Json::Str(self.run.clone())),
            ("seed".into(), Json::UInt(self.seed)),
            ("nodes".into(), Json::Arr(nodes)),
            ("edges".into(), Json::Arr(edges)),
        ])
    }

    /// Parses and validates a [`CausalGraph::to_json`] document (either
    /// timing variant; absent `wall_us` reads back as 0).
    pub fn parse(doc: &Json) -> Result<CausalGraph, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing string field 'schema'")?;
        if schema != CAUSAL_SCHEMA {
            return Err(format!("unknown schema {schema:?} (expected {CAUSAL_SCHEMA:?})"));
        }
        let run = doc
            .get("run")
            .and_then(Json::as_str)
            .ok_or("missing string field 'run'")?
            .to_string();
        let seed = doc.get("seed").and_then(Json::as_u64).ok_or("missing uint field 'seed'")?;
        let uint = |n: &Json, field: &str, at: usize| {
            n.get(field)
                .and_then(Json::as_u64)
                .ok_or(format!("node[{at}]: missing uint field '{field}'"))
        };
        let mut nodes = Vec::new();
        for (i, n) in doc
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("missing array field 'nodes'")?
            .iter()
            .enumerate()
        {
            let entity = n
                .get("entity")
                .and_then(Json::as_str)
                .and_then(Entity::parse)
                .ok_or(format!("node[{i}]: bad 'entity'"))?;
            let kind = n
                .get("kind")
                .and_then(Json::as_str)
                .ok_or(format!("node[{i}]: missing string field 'kind'"))?
                .to_string();
            nodes.push(CausalNode {
                id: uint(n, "id", i)?,
                round: uint(n, "round", i)?,
                entity,
                kind,
                ticks: uint(n, "ticks", i)?,
                ts: uint(n, "ts", i)?,
                dur: uint(n, "dur", i)?,
                wall_us: n.get("wall_us").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        let mut edges = Vec::new();
        for (i, e) in doc
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or("missing array field 'edges'")?
            .iter()
            .enumerate()
        {
            let kind = match e.get("kind").and_then(Json::as_str) {
                Some("child") => EdgeKind::Child,
                Some("follows") => EdgeKind::Follows,
                other => return Err(format!("edge[{i}]: bad 'kind' {other:?}")),
            };
            let from = e
                .get("from")
                .and_then(Json::as_u64)
                .ok_or(format!("edge[{i}]: missing uint field 'from'"))?;
            let to = e
                .get("to")
                .and_then(Json::as_u64)
                .ok_or(format!("edge[{i}]: missing uint field 'to'"))?;
            if !nodes.iter().any(|n| n.id == from) || !nodes.iter().any(|n| n.id == to) {
                return Err(format!("edge[{i}]: endpoint not in node set"));
            }
            edges.push(CausalEdge { from, to, kind });
        }
        Ok(CausalGraph { run, seed, nodes, edges })
    }
}

/// Accumulates the causal graph during a run. All methods must be called
/// from the coordinator thread in round order; the builder never reads the
/// clock except to stamp `wall_us` (which excluded exports drop).
#[derive(Debug)]
pub struct CausalBuilder {
    graph: CausalGraph,
    start: std::time::Instant,
    next_ts: u64,
    round_node: Option<usize>,
    round_start_ts: u64,
    /// Open crash chain per client: the newest `crash` node id.
    client_down: Vec<Option<u64>>,
    /// Rejoin emitted this round, for the crash → rejoin → stale-decay chain.
    client_rejoin: Vec<Option<(u64, u64)>>,
    /// Open down chain per aggregator (sized lazily like the crash ledger).
    agg_down: Vec<Option<u64>>,
}

impl CausalBuilder {
    pub fn new(run: &str, seed: u64, n_clients: usize) -> Self {
        let mut builder = Self {
            graph: CausalGraph {
                run: run.to_string(),
                seed,
                nodes: Vec::new(),
                edges: Vec::new(),
            },
            start: std::time::Instant::now(),
            next_ts: 0,
            round_node: None,
            round_start_ts: 0,
            client_down: vec![None; n_clients],
            client_rejoin: vec![None; n_clients],
            agg_down: Vec::new(),
        };
        builder.push(0, Entity::Run, "run", 0, 0);
        builder
    }

    pub fn graph(&self) -> &CausalGraph {
        &self.graph
    }

    fn push(&mut self, round: u64, entity: Entity, kind: &str, ticks: u64, dur: u64) -> u64 {
        let id = trace_id(self.graph.seed, round, entity, kind);
        self.graph.nodes.push(CausalNode {
            id,
            round,
            entity,
            kind: kind.to_string(),
            ticks,
            ts: self.next_ts,
            dur,
            wall_us: self.start.elapsed().as_micros() as u64,
        });
        self.next_ts += dur;
        id
    }

    /// A fault event under the current round: unit duration floor so every
    /// event is visible on the trace timeline, parent edge to the round.
    fn fault(&mut self, round: u64, entity: Entity, kind: &str, ticks: u64) -> u64 {
        let dur = ticks.max(1);
        let id = self.push(round, entity, kind, ticks.max(1), dur);
        if let Some(r) = self.round_node {
            let parent = self.graph.nodes[r].id;
            self.edge(parent, id, EdgeKind::Child);
        }
        id
    }

    fn edge(&mut self, from: u64, to: u64, kind: EdgeKind) {
        self.graph.edges.push(CausalEdge { from, to, kind });
    }

    /// Closes the previous round span (if any) and opens `round`'s.
    pub fn begin_round(&mut self, round: usize) {
        self.close_round();
        for r in &mut self.client_rejoin {
            *r = None;
        }
        self.round_start_ts = self.next_ts;
        let id = self.push(round as u64, Entity::Round, "round", 0, 0);
        self.round_node = Some(self.graph.nodes.len() - 1);
        let run_id = self.graph.nodes[0].id;
        self.edge(run_id, id, EdgeKind::Child);
    }

    fn close_round(&mut self) {
        if let Some(r) = self.round_node.take() {
            // A round with no events still occupies one tick on the timeline.
            self.next_ts = self.next_ts.max(self.round_start_ts + 1);
            self.graph.nodes[r].dur = self.next_ts - self.round_start_ts;
        }
    }

    pub fn client_crash(&mut self, round: usize, c: usize) {
        let id = self.fault(round as u64, Entity::Client(c), "crash", 1);
        if let Some(prev) = self.client_down[c] {
            self.edge(prev, id, EdgeKind::Follows);
        }
        self.client_down[c] = Some(id);
    }

    /// Call for every client that is *not* down this round; emits a `rejoin`
    /// node (follows-from the crash chain) when a crash window just closed.
    pub fn client_up(&mut self, round: usize, c: usize) {
        if let Some(prev) = self.client_down[c].take() {
            let id = self.fault(round as u64, Entity::Client(c), "rejoin", 1);
            self.edge(prev, id, EdgeKind::Follows);
            self.client_rejoin[c] = Some((round as u64, id));
        }
    }

    pub fn client_dropout(&mut self, round: usize, c: usize) {
        self.fault(round as u64, Entity::Client(c), "dropout", 1);
    }

    /// A straggler the server waited out for `wait` ticks. Chains from this
    /// round's rejoin when the client just came back (crash → rejoin →
    /// stale-update decay).
    pub fn client_straggler(&mut self, round: usize, c: usize, wait: u64) -> u64 {
        let id = self.fault(round as u64, Entity::Client(c), "straggler", wait);
        if let Some((r, rejoin)) = self.client_rejoin[c] {
            if r == round as u64 {
                self.edge(rejoin, id, EdgeKind::Follows);
            }
        }
        id
    }

    pub fn stale_accept(&mut self, round: usize, c: usize, after: u64) {
        let id = self.fault(round as u64, Entity::Client(c), "stale_accept", 1);
        self.edge(after, id, EdgeKind::Follows);
    }

    pub fn stale_reject(&mut self, round: usize, c: usize, after: u64) {
        let id = self.fault(round as u64, Entity::Client(c), "stale_reject", 1);
        self.edge(after, id, EdgeKind::Follows);
    }

    pub fn retry(&mut self, round: usize, c: usize, backoff_ticks: u64) {
        self.fault(round as u64, Entity::Client(c), "retry", backoff_ticks);
    }

    pub fn lost_upload(&mut self, round: usize, c: usize, backoff_ticks: u64) {
        self.fault(round as u64, Entity::Client(c), "lost_upload", backoff_ticks);
    }

    pub fn quarantine(&mut self, round: usize, c: usize) {
        self.fault(round as u64, Entity::Client(c), "quarantine", 1);
    }

    pub fn deadline_miss(&mut self, round: usize, c: usize, report_ticks: u64) {
        self.fault(round as u64, Entity::Client(c), "deadline_miss", report_ticks);
    }

    /// An aggregator down inside a crash window. `affected` is the number of
    /// sampled cohort clients homed at it — the cost the outage put at risk.
    pub fn agg_crash(&mut self, round: usize, a: usize, affected: u64) -> u64 {
        self.agg_down_node(round, a, "agg_crash", affected)
    }

    /// An aggregator down from transient dropout (no open crash window).
    pub fn agg_dropout(&mut self, round: usize, a: usize, affected: u64) -> u64 {
        self.agg_down_node(round, a, "agg_dropout", affected)
    }

    fn agg_down_node(&mut self, round: usize, a: usize, kind: &str, affected: u64) -> u64 {
        if self.agg_down.len() <= a {
            self.agg_down.resize(a + 1, None);
        }
        let id = self.fault(round as u64, Entity::Aggregator(a), kind, affected.max(1));
        if let Some(prev) = self.agg_down[a] {
            self.edge(prev, id, EdgeKind::Follows);
        }
        self.agg_down[a] = Some(id);
        id
    }

    /// Call for every aggregator that is up this round; emits `agg_rejoin`
    /// when its down window just closed.
    pub fn agg_up(&mut self, round: usize, a: usize) {
        if let Some(prev) = self.agg_down.get_mut(a).and_then(Option::take) {
            let id = self.fault(round as u64, Entity::Aggregator(a), "agg_rejoin", 1);
            self.edge(prev, id, EdgeKind::Follows);
        }
    }

    pub fn agg_straggler(&mut self, round: usize, a: usize, delay: u64) {
        self.fault(round as u64, Entity::Aggregator(a), "agg_straggler", delay);
    }

    /// A cohort client rerouted off its dead home aggregator; follows-from
    /// that aggregator's down node (agg crash → ring reassign).
    pub fn agg_reassign(&mut self, round: usize, c: usize, after: Option<u64>) {
        let id = self.fault(round as u64, Entity::Client(c), "agg_reassign", 1);
        if let Some(after) = after {
            self.edge(after, id, EdgeKind::Follows);
        }
    }

    /// The round failed its quorum gate; `missing` cohort members never
    /// reported.
    pub fn quorum_abort(&mut self, round: usize, missing: u64) {
        self.fault(round as u64, Entity::Round, "quorum_abort", missing);
    }

    /// Closes the open round and the run span, returning the final graph.
    pub fn finish(mut self) -> CausalGraph {
        self.close_round();
        self.graph.nodes[0].dur = self.next_ts.max(1);
        self.graph
    }
}

/// Renders a causal graph as Chrome trace-event JSON (Perfetto-loadable):
/// thread-name metadata per entity lane, one complete (`X`) event per node
/// with deterministic tick-counter `ts`/`dur`, and one flow (`s`/`f`) pair
/// per follows-from edge. `wall_us` rides along as an event arg only when
/// the graph carries it (the timing-suffixed variant).
pub fn chrome_trace(graph: &CausalGraph) -> String {
    let mut events = Vec::new();
    let meta = |name: &str, tid: u64, value: &str| {
        Json::Obj(vec![
            ("name".into(), Json::Str(name.into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::UInt(1)),
            ("tid".into(), Json::UInt(tid)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(value.into()))]),
            ),
        ])
    };
    events.push(meta("process_name", 0, &format!("fexiot run {}", graph.run)));
    let mut tids: Vec<(u64, String)> = graph
        .nodes
        .iter()
        .map(|n| {
            let label = match n.entity {
                Entity::Run | Entity::Round => "coordinator".to_string(),
                Entity::Client(c) => format!("client {c}"),
                Entity::Aggregator(a) => format!("aggregator {a}"),
            };
            (n.entity.tid(), label)
        })
        .collect();
    tids.sort();
    tids.dedup();
    for (tid, label) in &tids {
        events.push(meta("thread_name", *tid, label));
    }
    for n in &graph.nodes {
        let name = match n.entity {
            Entity::Round => format!("round[{}]", n.round),
            _ => n.kind.clone(),
        };
        let cat = if STRUCTURAL_KINDS.contains(&n.kind.as_str()) { "span" } else { "fault" };
        let mut args = vec![
            ("round".into(), Json::UInt(n.round)),
            ("ticks".into(), Json::UInt(n.ticks)),
        ];
        if n.wall_us > 0 {
            args.push(("wall_us".into(), Json::UInt(n.wall_us)));
        }
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(name)),
            ("cat".into(), Json::Str(cat.into())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::UInt(n.ts)),
            ("dur".into(), Json::UInt(n.dur.max(1))),
            ("pid".into(), Json::UInt(1)),
            ("tid".into(), Json::UInt(n.entity.tid())),
            ("args".into(), Json::Obj(args)),
        ]));
    }
    for (i, e) in graph.edges.iter().enumerate() {
        if e.kind != EdgeKind::Follows {
            continue;
        }
        let (Some(from), Some(to)) = (graph.node(e.from), graph.node(e.to)) else {
            continue;
        };
        let flow = |ph: &str, n: &CausalNode, bind_end: bool| {
            let mut members = vec![
                ("name".into(), Json::Str("follows".into())),
                ("cat".into(), Json::Str("flow".into())),
                ("ph".into(), Json::Str(ph.into())),
                ("id".into(), Json::UInt(i as u64)),
                ("ts".into(), Json::UInt(n.ts)),
                ("pid".into(), Json::UInt(1)),
                ("tid".into(), Json::UInt(n.entity.tid())),
            ];
            if bind_end {
                members.push(("bp".into(), Json::Str("e".into())));
            }
            Json::Obj(members)
        };
        events.push(flow("s", from, false));
        events.push(flow("f", to, true));
    }
    Json::Obj(vec![
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("traceEvents".into(), Json::Arr(events)),
    ])
    .to_string()
}

/// One ranked cause for a failing rule.
#[derive(Debug, Clone, PartialEq)]
pub struct CauseScore {
    pub cause: String,
    /// Fault events of this kind inside the rule's window.
    pub events: u64,
    /// Total attributed simulated ticks.
    pub ticks: u64,
    /// Fraction of the window's total attributed ticks.
    pub share: f64,
}

/// Root-cause verdict for one failing SLO rule: the round window walked and
/// the causes ranked by attributed cost (dominant first).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleRootCause {
    pub rule: String,
    pub window: (u64, u64),
    pub causes: Vec<CauseScore>,
}

/// For each failing SLO rule, walks the rule's trailing round window in the
/// graph and ranks the fault kinds by attributed simulated-tick cost —
/// [`crate::critical_path`] generalized from per-round slowest-client to
/// whole-run dominant-cause. Ties break by event count, then kind name, so
/// the ranking is deterministic.
pub fn root_cause(graph: &CausalGraph, engine: &SloEngine) -> Vec<RuleRootCause> {
    let last_round = graph.last_round().unwrap_or(0);
    engine
        .verdicts()
        .iter()
        .filter(|v| v.status == SloStatus::Fail)
        .map(|v| {
            let window = v.rule.window as u64;
            let lo = if window == 0 {
                0
            } else {
                (last_round + 1).saturating_sub(window)
            };
            let mut by_kind: Vec<(String, u64, u64)> = Vec::new();
            for n in &graph.nodes {
                if STRUCTURAL_KINDS.contains(&n.kind.as_str())
                    || n.round < lo
                    || n.round > last_round
                {
                    continue;
                }
                match by_kind.iter_mut().find(|(k, _, _)| *k == n.kind) {
                    Some((_, events, ticks)) => {
                        *events += 1;
                        *ticks += n.ticks;
                    }
                    None => by_kind.push((n.kind.clone(), 1, n.ticks)),
                }
            }
            let total: u64 = by_kind.iter().map(|(_, _, t)| *t).sum();
            by_kind.sort_by(|a, b| {
                b.2.cmp(&a.2).then(b.1.cmp(&a.1)).then(a.0.cmp(&b.0))
            });
            RuleRootCause {
                rule: v.rule.name.clone(),
                window: (lo, last_round),
                causes: by_kind
                    .into_iter()
                    .map(|(cause, events, ticks)| CauseScore {
                        cause,
                        events,
                        ticks,
                        share: if total == 0 { 0.0 } else { ticks as f64 / total as f64 },
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Serializes [`root_cause`] output as the report's `root_cause` section.
pub fn root_cause_to_json(rules: &[RuleRootCause]) -> Json {
    Json::Obj(vec![(
        "rules".into(),
        Json::Arr(
            rules
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("rule".into(), Json::Str(r.rule.clone())),
                        (
                            "window".into(),
                            Json::Arr(vec![Json::UInt(r.window.0), Json::UInt(r.window.1)]),
                        ),
                        (
                            "causes".into(),
                            Json::Arr(
                                r.causes
                                    .iter()
                                    .map(|c| {
                                        Json::Obj(vec![
                                            ("cause".into(), Json::Str(c.cause.clone())),
                                            ("events".into(), Json::UInt(c.events)),
                                            ("ticks".into(), Json::UInt(c.ticks)),
                                            ("share".into(), Json::Num(c.share)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Validates a report's `root_cause` section.
pub fn validate_root_cause(doc: &Json) -> Result<(), String> {
    let rules = doc
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("root_cause: missing array field 'rules'")?;
    for (i, r) in rules.iter().enumerate() {
        let at = format!("root_cause.rules[{i}]");
        r.get("rule").and_then(Json::as_str).ok_or(format!("{at}: missing 'rule'"))?;
        let window = r
            .get("window")
            .and_then(Json::as_arr)
            .ok_or(format!("{at}: missing 'window'"))?;
        if window.len() != 2 || !window.iter().all(|w| w.as_u64().is_some()) {
            return Err(format!("{at}: 'window' must be [lo, hi]"));
        }
        for (j, c) in r
            .get("causes")
            .and_then(Json::as_arr)
            .ok_or(format!("{at}: missing 'causes'"))?
            .iter()
            .enumerate()
        {
            let at = format!("{at}.causes[{j}]");
            c.get("cause").and_then(Json::as_str).ok_or(format!("{at}: missing 'cause'"))?;
            for field in ["events", "ticks"] {
                c.get(field)
                    .and_then(Json::as_u64)
                    .ok_or(format!("{at}: missing uint '{field}'"))?;
            }
            let share = c
                .get("share")
                .and_then(Json::as_f64)
                .ok_or(format!("{at}: missing number 'share'"))?;
            if !(0.0..=1.0).contains(&share) {
                return Err(format!("{at}: share {share} outside [0, 1]"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small graph with one crash→rejoin chain, a straggler decay chain,
    /// and an aggregator crash with a reassign.
    fn sample_graph() -> CausalGraph {
        let mut b = CausalBuilder::new("unit", 42, 4);
        b.begin_round(0);
        b.client_crash(0, 1);
        b.client_up(0, 0);
        b.client_dropout(0, 2);
        let agg = b.agg_crash(0, 1, 2);
        b.agg_reassign(0, 3, Some(agg));
        b.begin_round(1);
        b.client_crash(1, 1);
        b.client_up(1, 0);
        b.agg_up(1, 1);
        b.begin_round(2);
        b.client_up(2, 1);
        let s = b.client_straggler(2, 1, 3);
        b.stale_accept(2, 1, s);
        b.retry(2, 3, 7);
        b.quorum_abort(2, 2);
        b.finish()
    }

    #[test]
    fn ids_are_pure_functions_of_semantics() {
        let a = trace_id(42, 3, Entity::Client(7), "crash");
        let b = trace_id(42, 3, Entity::Client(7), "crash");
        assert_eq!(a, b);
        assert_ne!(a, trace_id(43, 3, Entity::Client(7), "crash"));
        assert_ne!(a, trace_id(42, 4, Entity::Client(7), "crash"));
        assert_ne!(a, trace_id(42, 3, Entity::Client(8), "crash"));
        assert_ne!(a, trace_id(42, 3, Entity::Aggregator(7), "crash"));
        assert_ne!(a, trace_id(42, 3, Entity::Client(7), "dropout"));
    }

    #[test]
    fn builder_links_crash_rejoin_and_reassign_chains() {
        let g = sample_graph();
        let kind = |k: &str| g.nodes.iter().filter(|n| n.kind == k).count();
        assert_eq!(kind("run"), 1);
        assert_eq!(kind("round"), 3);
        assert_eq!(kind("crash"), 2);
        assert_eq!(kind("rejoin"), 1, "client 1 rejoins once, client 0 was never down");
        assert_eq!(kind("agg_crash"), 1);
        assert_eq!(kind("agg_rejoin"), 1);
        // Follows chain: crash(r0) → crash(r1) → rejoin(r2).
        let crash0 = trace_id(42, 0, Entity::Client(1), "crash");
        let crash1 = trace_id(42, 1, Entity::Client(1), "crash");
        let rejoin = trace_id(42, 2, Entity::Client(1), "rejoin");
        let follows = |from, to| {
            g.edges
                .iter()
                .any(|e| e.kind == EdgeKind::Follows && e.from == from && e.to == to)
        };
        assert!(follows(crash0, crash1));
        assert!(follows(crash1, rejoin));
        // Rejoin chains into the same-round straggler, straggler into decay.
        let straggler = trace_id(42, 2, Entity::Client(1), "straggler");
        assert!(follows(rejoin, straggler));
        assert!(follows(straggler, trace_id(42, 2, Entity::Client(1), "stale_accept")));
        // Aggregator crash chains into the reassign.
        assert!(follows(
            trace_id(42, 0, Entity::Aggregator(1), "agg_crash"),
            trace_id(42, 0, Entity::Client(3), "agg_reassign")
        ));
        // Every fault is a child of its round.
        let round0 = trace_id(42, 0, Entity::Round, "round");
        let dropout = trace_id(42, 0, Entity::Client(2), "dropout");
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == EdgeKind::Child && e.from == round0 && e.to == dropout));
    }

    #[test]
    fn excluded_json_round_trips_and_is_wall_clock_free() {
        let g = sample_graph();
        let doc = g.to_json(Timing::Exclude);
        assert!(!doc.to_string().contains("wall_us"));
        let back = CausalGraph::parse(&doc).expect("round-trips");
        assert_eq!(back.nodes.len(), g.nodes.len());
        assert_eq!(back.edges, g.edges);
        // Everything except wall_us survives exactly.
        for (a, b) in back.nodes.iter().zip(&g.nodes) {
            assert_eq!((a.id, a.round, a.entity, &a.kind, a.ticks, a.ts, a.dur),
                       (b.id, b.round, b.entity, &b.kind, b.ticks, b.ts, b.dur));
            assert_eq!(a.wall_us, 0);
        }
        // The timing variant carries the field and still parses.
        let timed = g.to_json(Timing::Include);
        assert!(timed.to_string().contains("wall_us"));
        CausalGraph::parse(&timed).expect("timing variant parses");
        // Corruption is caught.
        assert!(CausalGraph::parse(&Json::parse(r#"{"schema":"nope"}"#).unwrap()).is_err());
        let mut members = match doc {
            Json::Obj(m) => m,
            _ => unreachable!(),
        };
        members.retain(|(k, _)| k != "edges");
        assert!(CausalGraph::parse(&Json::Obj(members)).is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_flows_and_lanes() {
        let g = sample_graph();
        let text = chrome_trace(&g);
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(p))
                .count()
        };
        assert_eq!(ph("X"), g.nodes.len());
        let follows = g.edges.iter().filter(|e| e.kind == EdgeKind::Follows).count();
        assert_eq!(ph("s"), follows);
        assert_eq!(ph("f"), follows);
        // Lanes: coordinator, aggregator 1, and each client seen.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"coordinator"));
        assert!(names.contains(&"aggregator 1"));
        assert!(names.contains(&"client 1"));
        // Excluded graphs render without wall_us args.
        let clean = CausalGraph::parse(&g.to_json(Timing::Exclude)).unwrap();
        assert!(!chrome_trace(&clean).contains("wall_us"));
    }

    #[test]
    fn root_cause_ranks_dominant_ticks_first() {
        let g = sample_graph();
        let engine = SloEngine::parse(
            "[[rule]]\nname = \"floor\"\nmetric = \"fed.round.participants\"\nop = \">=\"\nthreshold = 100",
        )
        .expect("rule parses");
        // Force a failing verdict by evaluating against an empty-but-present
        // series below the threshold.
        let mut store = crate::timeseries::TimeSeriesStore::new(8);
        let mut engine = engine;
        for r in 0..3u64 {
            store.push_sample(r, "fed.round.participants", 1.0);
            engine.evaluate(r, &store);
        }
        let rcs = root_cause(&g, &engine);
        assert_eq!(rcs.len(), 1);
        assert_eq!(rcs[0].rule, "floor");
        assert_eq!(rcs[0].window, (0, 2), "window 0 = whole run");
        // retry carries 7 ticks — the dominant cause ahead of the straggler's
        // 3 and every unit-cost event.
        assert_eq!(rcs[0].causes[0].cause, "retry");
        assert_eq!(rcs[0].causes[0].ticks, 7);
        assert!(rcs[0].causes[0].share > rcs[0].causes[1].share);
        assert!(
            rcs[0].causes.iter().all(|c| c.cause != "rejoin" && c.cause != "round"),
            "structural kinds excluded: {:?}",
            rcs[0].causes
        );
        // Serialized section validates.
        validate_root_cause(&root_cause_to_json(&rcs)).expect("section validates");
        // Passing engines produce no entries.
        let ok = SloEngine::parse(
            "[[rule]]\nmetric = \"fed.round.participants\"\nop = \">=\"\nthreshold = 0",
        )
        .unwrap();
        assert!(root_cause(&g, &ok).is_empty());
    }

    #[test]
    fn same_build_sequence_yields_identical_documents() {
        let a = sample_graph().to_json(Timing::Exclude).to_string();
        let b = sample_graph().to_json(Timing::Exclude).to_string();
        assert_eq!(a, b, "excluded graphs are byte-identical");
        let other = {
            let mut b = CausalBuilder::new("unit", 43, 4);
            b.begin_round(0);
            b.client_crash(0, 1);
            b.finish()
        };
        let ids = |g: &CausalGraph| g.nodes.iter().map(|n| n.id).collect::<Vec<_>>();
        let a_ids = ids(&sample_graph());
        assert!(
            ids(&other).iter().all(|id| !a_ids.contains(id)),
            "distinct seeds give disjoint trace IDs"
        );
    }
}
