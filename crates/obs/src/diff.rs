//! Comparison of two `fexiot-obs/v1` run reports: the engine behind the
//! `obs-diff` binary and the CI regression gate.
//!
//! Severity model follows the determinism rule: everything except wall-clock
//! data is a pure function of the seeded workload, so **any** drift in
//! counters, gauges, non-timing histograms, span structure, or the critical
//! path is *breaking*. Span `elapsed_us` and `*_us` histograms are noisy by
//! nature, so regressions there are *advisory* by default and only fail the
//! diff beyond the configured tolerance with `strict_timing`.

use crate::json::Json;
use crate::registry::is_timing_name;

/// Schema tag of the machine-readable verdict document.
pub const DIFF_SCHEMA: &str = "fexiot-obs-diff/v1";

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Deterministic data drifted — the run changed behaviour.
    Breaking,
    /// Wall-clock data regressed beyond tolerance — worth a look.
    Advisory,
}

/// One observed difference between the two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub severity: Severity,
    /// What kind of data drifted: `counter`, `gauge`, `histogram`, `span`,
    /// `timing`, `critical_path`, or `report`.
    pub kind: &'static str,
    /// Dotted location, e.g. `counters.fed.sim.participants`.
    pub path: String,
    pub message: String,
}

/// Diff tuning knobs.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Fractional slowdown tolerated before a timing finding is raised
    /// (0.25 = current may be up to 25% slower than baseline).
    pub timing_tolerance: f64,
    /// Spans faster than this in the baseline are never timing-flagged
    /// (sub-millisecond spans are pure noise).
    pub timing_floor_us: u64,
    /// Promote timing findings to breaking (local perf gating; CI keeps
    /// them advisory because shared runners are noisy).
    pub strict_timing: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            timing_tolerance: 0.25,
            timing_floor_us: 1000,
            strict_timing: false,
        }
    }
}

/// Findings cap — a badly divergent pair of reports should produce a
/// readable verdict, not thousands of lines.
const MAX_FINDINGS: usize = 100;

/// The diff verdict: all findings plus pass/fail.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub findings: Vec<Finding>,
    /// Findings discarded after [`MAX_FINDINGS`].
    pub truncated: usize,
}

impl DiffReport {
    fn push(&mut self, severity: Severity, kind: &'static str, path: String, message: String) {
        if self.findings.len() >= MAX_FINDINGS {
            self.truncated += 1;
            return;
        }
        self.findings.push(Finding {
            severity,
            kind,
            path,
            message,
        });
    }

    pub fn breaking(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Breaking)
            .count()
    }

    pub fn advisory(&self) -> usize {
        self.findings.len() - self.breaking()
    }

    /// True when nothing breaking was found (advisory findings never fail).
    pub fn passed(&self) -> bool {
        self.breaking() == 0
    }

    /// The machine-readable verdict document (`fexiot-obs-diff/v1`).
    pub fn to_json(&self, baseline: &str, current: &str) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(DIFF_SCHEMA.into())),
            ("baseline".into(), Json::Str(baseline.into())),
            ("current".into(), Json::Str(current.into())),
            (
                "verdict".into(),
                Json::Str(if self.passed() { "pass" } else { "fail" }.into()),
            ),
            ("breaking".into(), Json::UInt(self.breaking() as u64)),
            ("advisory".into(), Json::UInt(self.advisory() as u64)),
            ("truncated".into(), Json::UInt(self.truncated as u64)),
            (
                "findings".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                (
                                    "severity".into(),
                                    Json::Str(
                                        match f.severity {
                                            Severity::Breaking => "breaking",
                                            Severity::Advisory => "advisory",
                                        }
                                        .into(),
                                    ),
                                ),
                                ("kind".into(), Json::Str(f.kind.into())),
                                ("path".into(), Json::Str(f.path.clone())),
                                ("message".into(), Json::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable rendering, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Breaking => "BREAKING",
                Severity::Advisory => "advisory",
            };
            out.push_str(&format!("{tag:9} {:13} {}: {}\n", f.kind, f.path, f.message));
        }
        if self.truncated > 0 {
            out.push_str(&format!("… {} more findings truncated\n", self.truncated));
        }
        out.push_str(&format!(
            "verdict: {} ({} breaking, {} advisory)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.breaking(),
            self.advisory()
        ));
        out
    }
}

fn num(j: &Json) -> Option<f64> {
    match j {
        Json::UInt(v) => Some(*v as f64),
        Json::Num(v) => Some(*v),
        _ => None,
    }
}

fn obj_members(doc: &Json, key: &str) -> Vec<(String, Json)> {
    match doc.get(key) {
        Some(Json::Obj(members)) => members.clone(),
        _ => Vec::new(),
    }
}

/// Walks both maps' key unions in sorted order, invoking `on_pair` with the
/// values (`None` = absent on that side).
fn union_keys<'a>(
    a: &'a [(String, Json)],
    b: &'a [(String, Json)],
    mut on_pair: impl FnMut(&str, Option<&'a Json>, Option<&'a Json>),
) {
    let mut keys: Vec<&str> = a.iter().chain(b.iter()).map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    let find = |m: &'a [(String, Json)], k: &str| m.iter().find(|(mk, _)| mk == k).map(|(_, v)| v);
    for k in keys {
        on_pair(k, find(a, k), find(b, k));
    }
}

/// Compares two validated `fexiot-obs/v1` reports.
pub fn diff_reports(baseline: &Json, current: &Json, cfg: &DiffConfig) -> DiffReport {
    let mut out = DiffReport::default();
    let timing_sev = if cfg.strict_timing {
        Severity::Breaking
    } else {
        Severity::Advisory
    };

    let run = |doc: &Json| {
        doc.get("run")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    if run(baseline) != run(current) {
        out.push(
            Severity::Advisory,
            "report",
            "run".into(),
            format!("run name changed: {:?} -> {:?}", run(baseline), run(current)),
        );
    }

    // Counters and gauges: deterministic scalars, exact match required.
    for (section, kind) in [("counters", "counter"), ("gauges", "gauge")] {
        let a = obj_members(baseline, section);
        let b = obj_members(current, section);
        union_keys(&a, &b, |k, va, vb| match (va, vb) {
            (Some(va), Some(vb)) => {
                if num(va) != num(vb) {
                    out.push(
                        Severity::Breaking,
                        kind,
                        format!("{section}.{k}"),
                        format!("{} -> {}", va, vb),
                    );
                }
            }
            (Some(va), None) => out.push(
                Severity::Breaking,
                kind,
                format!("{section}.{k}"),
                format!("disappeared (was {})", va),
            ),
            (None, Some(vb)) => out.push(
                Severity::Breaking,
                kind,
                format!("{section}.{k}"),
                format!("appeared (now {})", vb),
            ),
            (None, None) => unreachable!("key came from the union"),
        });
    }

    // Histograms: deterministic distributions unless the name marks them as
    // wall-clock data, in which case only mean drift beyond tolerance is
    // reported (at timing severity).
    let a = obj_members(baseline, "histograms");
    let b = obj_members(current, "histograms");
    union_keys(&a, &b, |k, va, vb| {
        let path = format!("histograms.{k}");
        match (va, vb) {
            (Some(va), Some(vb)) => {
                if is_timing_name(k) {
                    let mean = |h: &Json| -> Option<f64> {
                        let sum = h.get("sum").and_then(num)?;
                        let count = h.get("count").and_then(Json::as_u64)?;
                        (count > 0).then(|| sum / count as f64)
                    };
                    if let (Some(ma), Some(mb)) = (mean(va), mean(vb)) {
                        if ma > 0.0 && mb > ma * (1.0 + cfg.timing_tolerance) {
                            out.push(
                                timing_sev,
                                "timing",
                                path,
                                format!(
                                    "mean {:.1}us -> {:.1}us (+{:.0}%, tolerance {:.0}%)",
                                    ma,
                                    mb,
                                    (mb / ma - 1.0) * 100.0,
                                    cfg.timing_tolerance * 100.0
                                ),
                            );
                        }
                    }
                } else {
                    // Everything but f64 `sum`/`min`/`max` must match exactly;
                    // the float fields are deterministic too, so exact is right.
                    if va != vb {
                        let field = |h: &Json, f: &str| {
                            h.get(f).map(Json::to_string).unwrap_or_default()
                        };
                        let detail = ["count", "counts", "sum"]
                            .iter()
                            .find(|f| field(va, f) != field(vb, f))
                            .map(|f| format!("{f}: {} -> {}", field(va, f), field(vb, f)))
                            .unwrap_or_else(|| "distribution changed".into());
                        out.push(Severity::Breaking, "histogram", path, detail);
                    }
                }
            }
            (Some(_), None) => {
                let sev = if is_timing_name(k) { timing_sev } else { Severity::Breaking };
                out.push(sev, "histogram", path, "disappeared".into());
            }
            (None, Some(_)) => {
                let sev = if is_timing_name(k) { timing_sev } else { Severity::Breaking };
                out.push(sev, "histogram", path, "appeared".into());
            }
            (None, None) => unreachable!("key came from the union"),
        }
    });

    // Span trees: names and shape are deterministic; elapsed_us is advisory.
    let empty = Vec::new();
    let spans_a = baseline.get("spans").and_then(Json::as_arr).unwrap_or(&empty);
    let spans_b = current.get("spans").and_then(Json::as_arr).unwrap_or(&empty);
    diff_span_lists(spans_a, spans_b, "spans", cfg, timing_sev, &mut out);

    // Critical path: a pure function of the seeded fault plan.
    match (baseline.get("critical_path"), current.get("critical_path")) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a != b {
                out.push(
                    Severity::Breaking,
                    "critical_path",
                    "critical_path".into(),
                    "per-round critical path changed".into(),
                );
            }
        }
        (a, _) => out.push(
            Severity::Breaking,
            "critical_path",
            "critical_path".into(),
            if a.is_some() { "disappeared" } else { "appeared" }.to_string(),
        ),
    }

    out
}

fn span_name(node: &Json) -> &str {
    node.get("name").and_then(Json::as_str).unwrap_or("?")
}

fn diff_span_lists(
    a: &[Json],
    b: &[Json],
    path: &str,
    cfg: &DiffConfig,
    timing_sev: Severity,
    out: &mut DiffReport,
) {
    if a.len() != b.len() {
        out.push(
            Severity::Breaking,
            "span",
            path.to_string(),
            format!("{} children -> {}", a.len(), b.len()),
        );
        return;
    }
    for (i, (na, nb)) in a.iter().zip(b).enumerate() {
        let here = format!("{path}[{i}].{}", span_name(na));
        if span_name(na) != span_name(nb) {
            out.push(
                Severity::Breaking,
                "span",
                here,
                format!("name {:?} -> {:?}", span_name(na), span_name(nb)),
            );
            continue;
        }
        let elapsed = |n: &Json| n.get("elapsed_us").and_then(Json::as_u64);
        if let (Some(ea), Some(eb)) = (elapsed(na), elapsed(nb)) {
            if ea >= cfg.timing_floor_us
                && eb as f64 > ea as f64 * (1.0 + cfg.timing_tolerance)
            {
                out.push(
                    timing_sev,
                    "timing",
                    here.clone(),
                    format!(
                        "{}us -> {}us (+{:.0}%, tolerance {:.0}%)",
                        ea,
                        eb,
                        (eb as f64 / ea as f64 - 1.0) * 100.0,
                        cfg.timing_tolerance * 100.0
                    ),
                );
            }
        }
        fn kids(n: &Json) -> &[Json] {
            n.get("children").and_then(Json::as_arr).unwrap_or(&[])
        }
        diff_span_lists(kids(na), kids(nb), &here, cfg, timing_sev, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(counter: u64, elapsed: u64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"fexiot-obs/v1","run":"t","spans":[{{"name":"root","elapsed_us":{elapsed},"children":[]}}],"counters":{{"a.b":{counter}}},"gauges":{{}},"histograms":{{}},"dropped_spans":0}}"#
        ))
        .expect("valid report")
    }

    #[test]
    fn identical_reports_pass() {
        let d = diff_reports(&report(3, 100), &report(3, 100), &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        assert!(d.findings.is_empty());
    }

    #[test]
    fn counter_drift_is_breaking() {
        let d = diff_reports(&report(3, 100), &report(4, 100), &DiffConfig::default());
        assert!(!d.passed());
        assert_eq!(d.findings[0].kind, "counter");
        assert!(d.render().contains("counters.a.b"));
    }

    #[test]
    fn timing_regression_is_advisory_unless_strict() {
        let base = report(3, 10_000);
        let slow = report(3, 20_000);
        let lax = diff_reports(&base, &slow, &DiffConfig::default());
        assert!(lax.passed());
        assert_eq!(lax.advisory(), 1);
        let strict = diff_reports(
            &base,
            &slow,
            &DiffConfig {
                strict_timing: true,
                ..DiffConfig::default()
            },
        );
        assert!(!strict.passed());
    }

    #[test]
    fn sub_floor_spans_never_flag_timing() {
        let d = diff_reports(&report(3, 100), &report(3, 900), &DiffConfig::default());
        assert!(d.findings.is_empty(), "{}", d.render());
    }

    #[test]
    fn verdict_json_is_machine_readable() {
        let d = diff_reports(&report(3, 100), &report(4, 100), &DiffConfig::default());
        let doc = d.to_json("base.json", "cur.json");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(DIFF_SCHEMA));
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("fail"));
        assert_eq!(doc.get("breaking").and_then(Json::as_u64), Some(1));
    }
}
