//! Comparison of two obs run reports (`fexiot-obs/v4`, or the older v1–v3):
//! the engine behind the `obs-diff` binary and the CI regression gate.
//!
//! Severity model follows the determinism rule: everything except wall-clock
//! data is a pure function of the seeded workload, so **any** drift in
//! counters, gauges, non-timing histograms, span structure, or the critical
//! path is *breaking*. Span `elapsed_us` and `*_us` histograms are noisy by
//! nature, so regressions there are *advisory* by default and only fail the
//! diff beyond the configured tolerance with `strict_timing`.

use crate::json::Json;
use crate::registry::is_timing_name;

/// Schema tag of the machine-readable verdict document.
pub const DIFF_SCHEMA: &str = "fexiot-obs-diff/v1";

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Deterministic data drifted — the run changed behaviour.
    Breaking,
    /// Wall-clock data regressed beyond tolerance — worth a look.
    Advisory,
}

/// One observed difference between the two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub severity: Severity,
    /// What kind of data drifted: `counter`, `gauge`, `histogram`, `span`,
    /// `timing`, `critical_path`, `section`, `throughput`, `store`, or
    /// `report`.
    pub kind: &'static str,
    /// Dotted location, e.g. `counters.fed.sim.participants`.
    pub path: String,
    pub message: String,
}

/// Diff tuning knobs.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Fractional slowdown tolerated before a timing finding is raised
    /// (0.25 = current may be up to 25% slower than baseline).
    pub timing_tolerance: f64,
    /// Spans faster than this in the baseline are never timing-flagged
    /// (sub-millisecond spans are pure noise).
    pub timing_floor_us: u64,
    /// Promote timing findings to breaking (local perf gating; CI keeps
    /// them advisory because shared runners are noisy).
    pub strict_timing: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            timing_tolerance: 0.25,
            timing_floor_us: 1000,
            strict_timing: false,
        }
    }
}

/// Findings cap — a badly divergent pair of reports should produce a
/// readable verdict, not thousands of lines.
const MAX_FINDINGS: usize = 100;

/// The diff verdict: all findings plus pass/fail.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub findings: Vec<Finding>,
    /// Findings discarded after [`MAX_FINDINGS`].
    pub truncated: usize,
}

impl DiffReport {
    fn push(&mut self, severity: Severity, kind: &'static str, path: String, message: String) {
        if self.findings.len() >= MAX_FINDINGS {
            self.truncated += 1;
            return;
        }
        self.findings.push(Finding {
            severity,
            kind,
            path,
            message,
        });
    }

    pub fn breaking(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Breaking)
            .count()
    }

    pub fn advisory(&self) -> usize {
        self.findings.len() - self.breaking()
    }

    /// True when nothing breaking was found (advisory findings never fail).
    pub fn passed(&self) -> bool {
        self.breaking() == 0
    }

    /// The machine-readable verdict document (`fexiot-obs-diff/v1`).
    pub fn to_json(&self, baseline: &str, current: &str) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(DIFF_SCHEMA.into())),
            ("baseline".into(), Json::Str(baseline.into())),
            ("current".into(), Json::Str(current.into())),
            (
                "verdict".into(),
                Json::Str(if self.passed() { "pass" } else { "fail" }.into()),
            ),
            ("breaking".into(), Json::UInt(self.breaking() as u64)),
            ("advisory".into(), Json::UInt(self.advisory() as u64)),
            ("truncated".into(), Json::UInt(self.truncated as u64)),
            (
                "findings".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                (
                                    "severity".into(),
                                    Json::Str(
                                        match f.severity {
                                            Severity::Breaking => "breaking",
                                            Severity::Advisory => "advisory",
                                        }
                                        .into(),
                                    ),
                                ),
                                ("kind".into(), Json::Str(f.kind.into())),
                                ("path".into(), Json::Str(f.path.clone())),
                                ("message".into(), Json::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable rendering, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Breaking => "BREAKING",
                Severity::Advisory => "advisory",
            };
            out.push_str(&format!("{tag:9} {:13} {}: {}\n", f.kind, f.path, f.message));
        }
        if self.truncated > 0 {
            out.push_str(&format!("… {} more findings truncated\n", self.truncated));
        }
        out.push_str(&format!(
            "verdict: {} ({} breaking, {} advisory)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.breaking(),
            self.advisory()
        ));
        out
    }
}

fn num(j: &Json) -> Option<f64> {
    match j {
        Json::UInt(v) => Some(*v as f64),
        Json::Num(v) => Some(*v),
        _ => None,
    }
}

fn obj_members(doc: &Json, key: &str) -> Vec<(String, Json)> {
    match doc.get(key) {
        Some(Json::Obj(members)) => members.clone(),
        _ => Vec::new(),
    }
}

/// Walks both maps' key unions in sorted order, invoking `on_pair` with the
/// values (`None` = absent on that side).
fn union_keys<'a>(
    a: &'a [(String, Json)],
    b: &'a [(String, Json)],
    mut on_pair: impl FnMut(&str, Option<&'a Json>, Option<&'a Json>),
) {
    let mut keys: Vec<&str> = a.iter().chain(b.iter()).map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    let find = |m: &'a [(String, Json)], k: &str| m.iter().find(|(mk, _)| mk == k).map(|(_, v)| v);
    for k in keys {
        on_pair(k, find(a, k), find(b, k));
    }
}

/// Compares two validated obs reports (either schema version; the schema
/// tag itself is not compared, so a v1 baseline diffs cleanly against a v2
/// report — the new sections get advisory one-sided handling below).
pub fn diff_reports(baseline: &Json, current: &Json, cfg: &DiffConfig) -> DiffReport {
    let mut out = DiffReport::default();
    let timing_sev = if cfg.strict_timing {
        Severity::Breaking
    } else {
        Severity::Advisory
    };

    let run = |doc: &Json| {
        doc.get("run")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    if run(baseline) != run(current) {
        out.push(
            Severity::Advisory,
            "report",
            "run".into(),
            format!("run name changed: {:?} -> {:?}", run(baseline), run(current)),
        );
    }

    // Counters and gauges: deterministic scalars, exact match required —
    // except gauges whose names mark them as wall-clock rates (`*_per_sec`),
    // which get the timing treatment: only a slowdown beyond tolerance is
    // reported, at timing severity.
    for (section, kind) in [("counters", "counter"), ("gauges", "gauge")] {
        let a = obj_members(baseline, section);
        let b = obj_members(current, section);
        union_keys(&a, &b, |k, va, vb| {
            let timing = section == "gauges" && is_timing_name(k);
            let path = format!("{section}.{k}");
            match (va, vb) {
                (Some(va), Some(vb)) => {
                    if timing {
                        if let (Some(ra), Some(rb)) = (num(va), num(vb)) {
                            // Rates: lower is worse.
                            if ra > 0.0 && rb < ra / (1.0 + cfg.timing_tolerance) {
                                out.push(
                                    timing_sev,
                                    "timing",
                                    path,
                                    format!(
                                        "rate {ra:.1}/s -> {rb:.1}/s (-{:.0}%, tolerance {:.0}%)",
                                        (1.0 - rb / ra) * 100.0,
                                        cfg.timing_tolerance * 100.0
                                    ),
                                );
                            }
                        }
                    } else if num(va) != num(vb) {
                        out.push(Severity::Breaking, kind, path, format!("{} -> {}", va, vb));
                    }
                }
                (Some(va), None) => out.push(
                    if timing { timing_sev } else { Severity::Breaking },
                    kind,
                    path,
                    format!("disappeared (was {})", va),
                ),
                (None, Some(vb)) => out.push(
                    if timing { timing_sev } else { Severity::Breaking },
                    kind,
                    path,
                    format!("appeared (now {})", vb),
                ),
                (None, None) => unreachable!("key came from the union"),
            }
        });
    }

    // Histograms: deterministic distributions unless the name marks them as
    // wall-clock data, in which case only mean drift beyond tolerance is
    // reported (at timing severity).
    let a = obj_members(baseline, "histograms");
    let b = obj_members(current, "histograms");
    union_keys(&a, &b, |k, va, vb| {
        let path = format!("histograms.{k}");
        match (va, vb) {
            (Some(va), Some(vb)) => {
                if is_timing_name(k) {
                    let mean = |h: &Json| -> Option<f64> {
                        let sum = h.get("sum").and_then(num)?;
                        let count = h.get("count").and_then(Json::as_u64)?;
                        (count > 0).then(|| sum / count as f64)
                    };
                    if let (Some(ma), Some(mb)) = (mean(va), mean(vb)) {
                        if ma > 0.0 && mb > ma * (1.0 + cfg.timing_tolerance) {
                            out.push(
                                timing_sev,
                                "timing",
                                path,
                                format!(
                                    "mean {:.1}us -> {:.1}us (+{:.0}%, tolerance {:.0}%)",
                                    ma,
                                    mb,
                                    (mb / ma - 1.0) * 100.0,
                                    cfg.timing_tolerance * 100.0
                                ),
                            );
                        }
                    }
                } else {
                    // Everything but f64 `sum`/`min`/`max` must match exactly;
                    // the float fields are deterministic too, so exact is right.
                    if va != vb {
                        let field = |h: &Json, f: &str| {
                            h.get(f).map(Json::to_string).unwrap_or_default()
                        };
                        let detail = ["count", "counts", "sum"]
                            .iter()
                            .find(|f| field(va, f) != field(vb, f))
                            .map(|f| format!("{f}: {} -> {}", field(va, f), field(vb, f)))
                            .unwrap_or_else(|| "distribution changed".into());
                        out.push(Severity::Breaking, "histogram", path, detail);
                    }
                }
            }
            (Some(_), None) => {
                let sev = if is_timing_name(k) { timing_sev } else { Severity::Breaking };
                out.push(sev, "histogram", path, "disappeared".into());
            }
            (None, Some(_)) => {
                let sev = if is_timing_name(k) { timing_sev } else { Severity::Breaking };
                out.push(sev, "histogram", path, "appeared".into());
            }
            (None, None) => unreachable!("key came from the union"),
        }
    });

    // Span trees: names and shape are deterministic; elapsed_us is advisory.
    let empty = Vec::new();
    let spans_a = baseline.get("spans").and_then(Json::as_arr).unwrap_or(&empty);
    let spans_b = current.get("spans").and_then(Json::as_arr).unwrap_or(&empty);
    diff_span_lists(spans_a, spans_b, "spans", cfg, timing_sev, &mut out);

    // Critical path: a pure function of the seeded fault plan.
    match (baseline.get("critical_path"), current.get("critical_path")) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a != b {
                out.push(
                    Severity::Breaking,
                    "critical_path",
                    "critical_path".into(),
                    "per-round critical path changed".into(),
                );
            }
        }
        (a, _) => out.push(
            Severity::Breaking,
            "critical_path",
            "critical_path".into(),
            if a.is_some() { "disappeared" } else { "appeared" }.to_string(),
        ),
    }

    // v2 sections. A report with a section vs one without is the expected
    // v1→v2 (or flag on/off) situation — advisory, never breaking, so a
    // committed v1 baseline keeps passing against v2 reports. When both
    // sides carry the section, its contents are deterministic by
    // construction and compared exactly.
    match (baseline.get("timeseries"), current.get("timeseries")) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            let sa = obj_members(a, "series");
            let sb = obj_members(b, "series");
            union_keys(&sa, &sb, |k, va, vb| {
                if is_timing_name(k) {
                    return; // Defensive: the store refuses these on entry.
                }
                let path = format!("timeseries.{k}");
                match (va, vb) {
                    (Some(va), Some(vb)) => {
                        if va != vb {
                            out.push(
                                Severity::Breaking,
                                "timeseries",
                                path,
                                "per-round series changed".into(),
                            );
                        }
                    }
                    (Some(_), None) => {
                        out.push(Severity::Breaking, "timeseries", path, "disappeared".into())
                    }
                    (None, Some(_)) => {
                        out.push(Severity::Breaking, "timeseries", path, "appeared".into())
                    }
                    (None, None) => unreachable!("key came from the union"),
                }
            });
        }
        (a, _) => out.push(
            Severity::Advisory,
            "timeseries",
            "timeseries".into(),
            format!(
                "section {} (v1 baseline or time-series flag change)",
                if a.is_some() { "disappeared" } else { "appeared" }
            ),
        ),
    }
    match (baseline.get("slo"), current.get("slo")) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a != b {
                out.push(
                    Severity::Breaking,
                    "slo",
                    "slo".into(),
                    "SLO verdicts changed".into(),
                );
            }
        }
        (a, _) => out.push(
            Severity::Advisory,
            "slo",
            "slo".into(),
            format!(
                "section {} (v1 baseline or SLO flag change)",
                if a.is_some() { "disappeared" } else { "appeared" }
            ),
        ),
    }

    match (baseline.get("stream"), current.get("stream")) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a != b {
                let what = if a.get("detections_digest") != b.get("detections_digest") {
                    "streaming detection outputs changed (digest mismatch)"
                } else {
                    "streaming actor stats changed"
                };
                out.push(Severity::Breaking, "stream", "stream".into(), what.into());
            }
        }
        (a, _) => out.push(
            Severity::Advisory,
            "stream",
            "stream".into(),
            format!(
                "section {} (pre-v4 baseline or serve flag change)",
                if a.is_some() { "disappeared" } else { "appeared" }
            ),
        ),
    }

    // Sections this engine has no dedicated comparison for (v3's
    // `root_cause`, and whatever later schemas add): a one-sided appearance
    // is the expected old-baseline-vs-new-report situation — advisory,
    // matching the v1→v2 precedent above — while a both-sided mismatch is
    // still breaking, since every report section holds deterministic data
    // by construction.
    const KNOWN_SECTIONS: &[&str] = &[
        "schema",
        "run",
        "spans",
        "counters",
        "gauges",
        "histograms",
        "dropped_spans",
        "critical_path",
        "timeseries",
        "slo",
        "stream",
    ];
    let unknown = |doc: &Json| -> Vec<(String, Json)> {
        match doc {
            Json::Obj(members) => members
                .iter()
                .filter(|(k, _)| !KNOWN_SECTIONS.contains(&k.as_str()))
                .cloned()
                .collect(),
            _ => Vec::new(),
        }
    };
    let (a, b) = (unknown(baseline), unknown(current));
    union_keys(&a, &b, |k, va, vb| {
        match (va, vb) {
            (Some(va), Some(vb)) => {
                if va != vb {
                    out.push(
                        Severity::Breaking,
                        "section",
                        k.to_string(),
                        "section contents changed".into(),
                    );
                }
            }
            (one, _) => out.push(
                Severity::Advisory,
                "section",
                k.to_string(),
                format!(
                    "section {} (older-schema baseline or flag change)",
                    if one.is_some() { "disappeared" } else { "appeared" }
                ),
            ),
        }
    });

    out
}

fn span_name(node: &Json) -> &str {
    node.get("name").and_then(Json::as_str).unwrap_or("?")
}

fn diff_span_lists(
    a: &[Json],
    b: &[Json],
    path: &str,
    cfg: &DiffConfig,
    timing_sev: Severity,
    out: &mut DiffReport,
) {
    if a.len() != b.len() {
        out.push(
            Severity::Breaking,
            "span",
            path.to_string(),
            format!("{} children -> {}", a.len(), b.len()),
        );
        return;
    }
    for (i, (na, nb)) in a.iter().zip(b).enumerate() {
        let here = format!("{path}[{i}].{}", span_name(na));
        if span_name(na) != span_name(nb) {
            out.push(
                Severity::Breaking,
                "span",
                here,
                format!("name {:?} -> {:?}", span_name(na), span_name(nb)),
            );
            continue;
        }
        let elapsed = |n: &Json| n.get("elapsed_us").and_then(Json::as_u64);
        if let (Some(ea), Some(eb)) = (elapsed(na), elapsed(nb)) {
            if ea >= cfg.timing_floor_us
                && eb as f64 > ea as f64 * (1.0 + cfg.timing_tolerance)
            {
                out.push(
                    timing_sev,
                    "timing",
                    here.clone(),
                    format!(
                        "{}us -> {}us (+{:.0}%, tolerance {:.0}%)",
                        ea,
                        eb,
                        (eb as f64 / ea as f64 - 1.0) * 100.0,
                        cfg.timing_tolerance * 100.0
                    ),
                );
            }
        }
        fn kids(n: &Json) -> &[Json] {
            n.get("children").and_then(Json::as_arr).unwrap_or(&[])
        }
        diff_span_lists(kids(na), kids(nb), &here, cfg, timing_sev, out);
    }
}

/// Schema tag of the per-workload benchmark document emitted by the
/// `fexiot-bench` perf harness (`crates/bench/src/perf.rs`).
pub const BENCH_SCHEMA: &str = "fexiot-bench/v1";

/// Timing percentile fields every `fexiot-bench/v1` document carries (all
/// unsigned microseconds).
pub const BENCH_TIMING_FIELDS: &[&str] = &["mean", "p50", "p90", "p99", "min", "max", "total"];

/// Validates that a JSON document is a well-formed `fexiot-bench/v1`
/// benchmark report. Returns a description of the first problem found.
pub fn validate_bench_report(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("unknown schema {schema:?} (expected {BENCH_SCHEMA:?})"));
    }
    for field in ["workload", "scale"] {
        doc.get(field)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string field '{field}'"))?;
    }
    for field in ["reps", "seed", "threads"] {
        doc.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer field '{field}'"))?;
    }
    // Optional fleet-identity fields (federated workloads only): typed when
    // present, absent otherwise.
    if let Some(v) = doc.get("clients") {
        v.as_u64()
            .ok_or("'clients' must be an unsigned integer when present")?;
    }
    if let Some(v) = doc.get("topology") {
        v.as_str().ok_or("'topology' must be a string when present")?;
    }
    // Optional throughput digest (streaming workloads only): typed when
    // present, absent otherwise.
    if let Some(tp) = doc.get("throughput") {
        for field in ["events", "events_per_sec", "latency_p99_ticks"] {
            if tp.get(field).and_then(Json::as_u64).is_none() {
                return Err(format!("throughput missing integer field '{field}'"));
            }
        }
    }
    // Optional artifact-store digest (the store_warm workload only): the
    // warm-loaded payload digest and byte count are deterministic; the cold
    // populate time and derived speedup are wall-clock.
    if let Some(st) = doc.get("store") {
        st.get("digest")
            .and_then(Json::as_str)
            .ok_or("store missing string field 'digest'")?;
        for field in ["blob_bytes", "cold_us", "speedup_milli"] {
            if st.get(field).and_then(Json::as_u64).is_none() {
                return Err(format!("store missing integer field '{field}'"));
            }
        }
    }
    match doc.get("items") {
        Some(Json::Obj(members)) => {
            for (k, v) in members {
                if v.as_u64().is_none() {
                    return Err(format!("items[{k:?}] is not an unsigned integer"));
                }
            }
        }
        _ => return Err("missing object field 'items'".into()),
    }
    let alloc = doc.get("alloc").ok_or("missing object field 'alloc'")?;
    match alloc.get("tracked") {
        Some(Json::Bool(_)) => {}
        _ => return Err("alloc.tracked must be a boolean".into()),
    }
    for field in ["allocs", "bytes", "peak_live_bytes"] {
        if alloc.get(field).and_then(Json::as_u64).is_none() {
            return Err(format!("alloc missing integer field '{field}'"));
        }
    }
    let timing = doc
        .get("timing_us")
        .ok_or("missing object field 'timing_us'")?;
    for field in BENCH_TIMING_FIELDS {
        if timing.get(field).and_then(Json::as_u64).is_none() {
            return Err(format!("timing_us missing integer field '{field}'"));
        }
    }
    Ok(())
}

/// Compares two validated `fexiot-bench/v1` documents. Identity fields
/// (workload, scale, reps, seed, threads) and item counts are deterministic
/// — drift is breaking (timing across different thread counts is never
/// comparable). Allocation counters are breaking only when both runs
/// tracked allocations (a tracked/untracked mismatch is advisory, since the
/// untracked side holds zeros by construction). Timing percentiles get the
/// usual wall-clock treatment: p50 slowdown beyond `timing_tolerance` above
/// `timing_floor_us` at timing severity.
pub fn diff_bench_reports(baseline: &Json, current: &Json, cfg: &DiffConfig) -> DiffReport {
    let mut out = DiffReport::default();
    let timing_sev = if cfg.strict_timing {
        Severity::Breaking
    } else {
        Severity::Advisory
    };

    let str_field = |doc: &Json, f: &str| {
        doc.get(f).and_then(Json::as_str).unwrap_or("?").to_string()
    };
    let uint_field = |doc: &Json, f: &str| doc.get(f).and_then(Json::as_u64).unwrap_or(0);
    for field in ["workload", "scale"] {
        let (a, b) = (str_field(baseline, field), str_field(current, field));
        if a != b {
            out.push(
                Severity::Breaking,
                "report",
                field.into(),
                format!("{a:?} -> {b:?} (comparing different benchmarks)"),
            );
        }
    }
    for field in ["reps", "seed", "threads"] {
        let (a, b) = (uint_field(baseline, field), uint_field(current, field));
        if a != b {
            out.push(
                Severity::Breaking,
                "report",
                field.into(),
                format!("{a} -> {b} (runs are not comparable)"),
            );
        }
    }
    // Fleet-identity fields are optional but breaking whenever either side
    // carries one: a 5-client flat run and a 2000-client hierarchical run
    // measure different workloads even at the same seed.
    for field in ["clients", "topology"] {
        let render = |doc: &Json| doc.get(field).map(|v| v.to_string());
        let (a, b) = (render(baseline), render(current));
        if a != b {
            let show = |v: &Option<String>| v.clone().unwrap_or_else(|| "absent".into());
            out.push(
                Severity::Breaking,
                "report",
                field.into(),
                format!("{} -> {} (runs are not comparable)", show(&a), show(&b)),
            );
        }
    }

    // Item counts are pure functions of (seed, scale): exact match.
    let a = obj_members(baseline, "items");
    let b = obj_members(current, "items");
    union_keys(&a, &b, |k, va, vb| {
        let path = format!("items.{k}");
        match (va, vb) {
            (Some(va), Some(vb)) => {
                if num(va) != num(vb) {
                    out.push(Severity::Breaking, "item", path, format!("{} -> {}", va, vb));
                }
            }
            (Some(va), None) => out.push(
                Severity::Breaking,
                "item",
                path,
                format!("disappeared (was {})", va),
            ),
            (None, Some(vb)) => out.push(
                Severity::Breaking,
                "item",
                path,
                format!("appeared (now {})", vb),
            ),
            (None, None) => unreachable!("key came from the union"),
        }
    });

    let tracked = |doc: &Json| matches!(
        doc.get("alloc").and_then(|a| a.get("tracked")),
        Some(Json::Bool(true))
    );
    match (tracked(baseline), tracked(current)) {
        (true, true) => {
            for field in ["allocs", "bytes", "peak_live_bytes"] {
                let get = |doc: &Json| {
                    doc.get("alloc").and_then(|a| a.get(field)).and_then(Json::as_u64)
                };
                let (a, b) = (get(baseline), get(current));
                if a != b {
                    out.push(
                        Severity::Breaking,
                        "alloc",
                        format!("alloc.{field}"),
                        format!(
                            "{} -> {} (allocation drift is deterministic data)",
                            a.unwrap_or(0),
                            b.unwrap_or(0)
                        ),
                    );
                }
            }
        }
        (true, false) | (false, true) => out.push(
            Severity::Advisory,
            "alloc",
            "alloc.tracked".into(),
            "one run was built without `track-alloc`; allocation counters not compared".into(),
        ),
        (false, false) => {}
    }

    // Streaming throughput: the event count and virtual-time p99 latency
    // are deterministic data (breaking on drift); the wall-clock-derived
    // sustained rate gets the advisory timing treatment. One-sided presence
    // is advisory — the baseline may simply predate the streaming workload.
    let tp = |doc: &Json, f: &str| {
        doc.get("throughput").and_then(|t| t.get(f)).and_then(Json::as_u64)
    };
    match (baseline.get("throughput").is_some(), current.get("throughput").is_some()) {
        (true, true) => {
            for field in ["events", "latency_p99_ticks"] {
                let (a, b) = (tp(baseline, field), tp(current, field));
                if a != b {
                    out.push(
                        Severity::Breaking,
                        "throughput",
                        format!("throughput.{field}"),
                        format!(
                            "{} -> {} (deterministic streaming data)",
                            a.unwrap_or(0),
                            b.unwrap_or(0)
                        ),
                    );
                }
            }
            if let (Some(ra), Some(rb)) = (
                tp(baseline, "events_per_sec"),
                tp(current, "events_per_sec"),
            ) {
                if ra > 0 && (rb as f64) < ra as f64 * (1.0 - cfg.timing_tolerance) {
                    out.push(
                        timing_sev,
                        "timing",
                        "throughput.events_per_sec".into(),
                        format!(
                            "{ra}/s -> {rb}/s ({:.0}%, tolerance {:.0}%)",
                            (rb as f64 / ra as f64 - 1.0) * 100.0,
                            cfg.timing_tolerance * 100.0
                        ),
                    );
                }
            }
        }
        (true, false) | (false, true) => out.push(
            Severity::Advisory,
            "throughput",
            "throughput".into(),
            "only one run carries a streaming throughput digest; not compared".into(),
        ),
        (false, false) => {}
    }

    // Artifact-store digest (store_warm workload): the warm-loaded payload
    // digest and byte count are deterministic data — drift means the store
    // serialized different artifacts for the same configuration, which is
    // breaking. The cold populate time and the derived warm speedup are
    // wall-clock and get the advisory timing treatment (a speedup *drop*
    // beyond tolerance is flagged; an improvement never is).
    fn st<'a>(doc: &'a Json, f: &str) -> Option<&'a Json> {
        doc.get("store").and_then(|s| s.get(f))
    }
    match (baseline.get("store").is_some(), current.get("store").is_some()) {
        (true, true) => {
            let digest = |doc: &Json| {
                st(doc, "digest").and_then(Json::as_str).unwrap_or("?").to_string()
            };
            let (da, db) = (digest(baseline), digest(current));
            if da != db {
                out.push(
                    Severity::Breaking,
                    "store",
                    "store.digest".into(),
                    format!("{da} -> {db} (warm-loaded artifact bytes changed)"),
                );
            }
            let (ba, bb) = (
                st(baseline, "blob_bytes").and_then(Json::as_u64),
                st(current, "blob_bytes").and_then(Json::as_u64),
            );
            if ba != bb {
                out.push(
                    Severity::Breaking,
                    "store",
                    "store.blob_bytes".into(),
                    format!(
                        "{} -> {} (deterministic artifact size)",
                        ba.unwrap_or(0),
                        bb.unwrap_or(0)
                    ),
                );
            }
            if let (Some(sa), Some(sb)) = (
                st(baseline, "speedup_milli").and_then(Json::as_u64),
                st(current, "speedup_milli").and_then(Json::as_u64),
            ) {
                if sa > 0 && (sb as f64) < sa as f64 * (1.0 - cfg.timing_tolerance) {
                    out.push(
                        timing_sev,
                        "timing",
                        "store.speedup_milli".into(),
                        format!(
                            "warm speedup {:.1}x -> {:.1}x ({:.0}%, tolerance {:.0}%)",
                            sa as f64 / 1000.0,
                            sb as f64 / 1000.0,
                            (sb as f64 / sa as f64 - 1.0) * 100.0,
                            cfg.timing_tolerance * 100.0
                        ),
                    );
                }
            }
        }
        (true, false) | (false, true) => out.push(
            Severity::Advisory,
            "store",
            "store".into(),
            "only one run carries an artifact-store digest; not compared".into(),
        ),
        (false, false) => {}
    }

    let p50 = |doc: &Json| {
        doc.get("timing_us").and_then(|t| t.get("p50")).and_then(Json::as_u64)
    };
    if let (Some(ta), Some(tb)) = (p50(baseline), p50(current)) {
        if ta >= cfg.timing_floor_us && tb as f64 > ta as f64 * (1.0 + cfg.timing_tolerance) {
            out.push(
                timing_sev,
                "timing",
                "timing_us.p50".into(),
                format!(
                    "{ta}us -> {tb}us (+{:.0}%, tolerance {:.0}%)",
                    (tb as f64 / ta as f64 - 1.0) * 100.0,
                    cfg.timing_tolerance * 100.0
                ),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(counter: u64, elapsed: u64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"fexiot-obs/v1","run":"t","spans":[{{"name":"root","elapsed_us":{elapsed},"children":[]}}],"counters":{{"a.b":{counter}}},"gauges":{{}},"histograms":{{}},"dropped_spans":0}}"#
        ))
        .expect("valid report")
    }

    #[test]
    fn identical_reports_pass() {
        let d = diff_reports(&report(3, 100), &report(3, 100), &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        assert!(d.findings.is_empty());
    }

    #[test]
    fn counter_drift_is_breaking() {
        let d = diff_reports(&report(3, 100), &report(4, 100), &DiffConfig::default());
        assert!(!d.passed());
        assert_eq!(d.findings[0].kind, "counter");
        assert!(d.render().contains("counters.a.b"));
    }

    #[test]
    fn timing_regression_is_advisory_unless_strict() {
        let base = report(3, 10_000);
        let slow = report(3, 20_000);
        let lax = diff_reports(&base, &slow, &DiffConfig::default());
        assert!(lax.passed());
        assert_eq!(lax.advisory(), 1);
        let strict = diff_reports(
            &base,
            &slow,
            &DiffConfig {
                strict_timing: true,
                ..DiffConfig::default()
            },
        );
        assert!(!strict.passed());
    }

    #[test]
    fn sub_floor_spans_never_flag_timing() {
        let d = diff_reports(&report(3, 100), &report(3, 900), &DiffConfig::default());
        assert!(d.findings.is_empty(), "{}", d.render());
    }

    #[test]
    fn verdict_json_is_machine_readable() {
        let d = diff_reports(&report(3, 100), &report(4, 100), &DiffConfig::default());
        let doc = d.to_json("base.json", "cur.json");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(DIFF_SCHEMA));
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("fail"));
        assert_eq!(doc.get("breaking").and_then(Json::as_u64), Some(1));
    }

    /// A v2 report: same shape as [`report`] plus `timeseries`/`slo`.
    fn report_v2(counter: u64, series_values: &str, slo_failed: bool) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"fexiot-obs/v2","run":"t","spans":[{{"name":"root","elapsed_us":100,"children":[]}}],"counters":{{"a.b":{counter}}},"gauges":{{}},"histograms":{{}},"dropped_spans":0,"timeseries":{{"capacity":4096,"series":{{"fed.round.participants":{{"kind":"sample","rounds":[0,1],"values":{series_values},"dropped":0}}}}}},"slo":{{"failed":{slo_failed},"verdicts":[{{"name":"r","rule":"r: mean(m) over all rounds <= 1","metric":"m","status":"{}","value":0.5,"rounds_evaluated":2,"rounds_failed":{},"first_failed_round":null}}]}}}}"#,
            if slo_failed { "fail" } else { "pass" },
            if slo_failed { 1 } else { 0 },
        ))
        .expect("valid v2 report")
    }

    #[test]
    fn v1_baseline_diffs_cleanly_against_v2_report() {
        // The v1→v2 compatibility contract: both versions validate, and a v1
        // baseline vs a v2 report (new sections appeared) yields advisory
        // findings only — no spurious breakage from the schema bump.
        let v1 = report(3, 100);
        let v2 = report_v2(3, "[2,2]", false);
        crate::report::validate_report(&v1).expect("v1 still validates");
        crate::report::validate_report(&v2).expect("v2 validates");
        let d = diff_reports(&v1, &v2, &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.advisory(), 2, "{}", d.render()); // timeseries + slo appeared
        // And symmetrically when the baseline is the v2 report.
        let d = diff_reports(&v2, &v1, &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
    }

    /// A v3 report: same shape as [`report_v2`] plus a `root_cause` section.
    fn report_v3(counter: u64, top_cause: &str) -> Json {
        let mut doc = report_v2(counter, "[2,2]", true);
        if let Json::Obj(members) = &mut doc {
            members[0].1 = Json::Str("fexiot-obs/v3".into());
            members.push((
                "root_cause".into(),
                Json::parse(&format!(
                    r#"{{"rules":[{{"rule":"r","window":[0,1],"causes":[{{"cause":"{top_cause}","events":3,"ticks":9,"share":1}}]}}]}}"#
                ))
                .expect("valid section"),
            ));
        }
        doc
    }

    #[test]
    fn v2_baseline_diffs_cleanly_against_v3_report() {
        // The v2→v3 compatibility contract, matching the v1→v2 precedent: a
        // v2 baseline vs a v3 report (root_cause section appeared) yields an
        // advisory finding only, in both directions.
        let v2 = report_v2(3, "[2,2]", true);
        let v3 = report_v3(3, "straggler");
        crate::report::validate_report(&v2).expect("v2 still validates");
        crate::report::validate_report(&v3).expect("v3 validates");
        let d = diff_reports(&v2, &v3, &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.advisory(), 1, "{}", d.render()); // root_cause appeared
        assert_eq!(d.findings[0].kind, "section");
        let d = diff_reports(&v3, &v2, &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        // Both sides carrying the section still compare exactly: a different
        // top cause is deterministic drift, hence breaking.
        let d = diff_reports(&report_v3(3, "straggler"), &report_v3(3, "agg_crash"), &DiffConfig::default());
        assert!(!d.passed(), "{}", d.render());
        assert_eq!(d.findings[0].kind, "section");
        assert_eq!(d.findings[0].path, "root_cause");
    }

    /// A v4 report: same shape as [`report_v2`] plus a `stream` section.
    fn report_v4(counter: u64, digest: &str, shed: u64) -> Json {
        let mut doc = report_v2(counter, "[2,2]", false);
        if let Json::Obj(members) = &mut doc {
            members[0].1 = Json::Str("fexiot-obs/v4".into());
            members.push((
                "stream".into(),
                Json::parse(&format!(
                    r#"{{"events":10,"detected":10,"vulnerable":2,"drifting":0,"shed":{shed},"stall_ticks":0,"rounds":1,"ticks":5,"detections_digest":"fnv1a:{digest}","actors":[{{"name":"maintain","capacity":32,"policy":"block","enqueued":10,"dequeued":10,"shed":0,"stall_ticks":0,"max_depth":3}}]}}"#
                ))
                .expect("valid section"),
            ));
        }
        doc
    }

    #[test]
    fn v2_baseline_diffs_cleanly_against_v4_stream_report() {
        // The pre-v4 compatibility contract: a baseline without the `stream`
        // section vs a streaming report yields an advisory finding only.
        let v2 = report_v2(3, "[2,2]", false);
        let v4 = report_v4(3, "00000000deadbeef", 0);
        crate::report::validate_report(&v4).expect("v4 validates");
        let d = diff_reports(&v2, &v4, &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.advisory(), 1, "{}", d.render()); // stream appeared
        assert_eq!(d.findings[0].kind, "stream");
        let d = diff_reports(&v4, &v2, &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        // Both sides carrying the section compare exactly — detection-output
        // drift names the digest, other drift names the actor stats.
        let d = diff_reports(
            &report_v4(3, "00000000deadbeef", 0),
            &report_v4(3, "00000000cafef00d", 0),
            &DiffConfig::default(),
        );
        assert!(!d.passed(), "{}", d.render());
        assert_eq!(d.findings[0].kind, "stream");
        assert!(d.findings[0].message.contains("digest"), "{}", d.render());
        let d = diff_reports(
            &report_v4(3, "00000000deadbeef", 0),
            &report_v4(3, "00000000deadbeef", 4),
            &DiffConfig::default(),
        );
        assert!(!d.passed(), "{}", d.render());
        assert!(
            d.findings[0].message.contains("actor stats"),
            "{}",
            d.render()
        );
    }

    #[test]
    fn timeseries_and_slo_drift_between_v2_reports_is_breaking() {
        let base = report_v2(3, "[2,2]", false);
        let d = diff_reports(&base, &report_v2(3, "[2,2]", false), &DiffConfig::default());
        assert!(d.passed() && d.findings.is_empty(), "{}", d.render());
        // Same cumulative counters, different per-round trajectory: caught.
        let d = diff_reports(&base, &report_v2(3, "[1,3]", false), &DiffConfig::default());
        assert!(!d.passed());
        assert_eq!(d.findings[0].kind, "timeseries");
        // SLO verdict flip: caught.
        let d = diff_reports(&base, &report_v2(3, "[2,2]", true), &DiffConfig::default());
        assert!(!d.passed());
        assert!(d.findings.iter().any(|f| f.kind == "slo"), "{}", d.render());
    }

    fn report_with_gauges(gauges: &str) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"fexiot-obs/v1","run":"t","spans":[],"counters":{{}},"gauges":{gauges},"histograms":{{}},"dropped_spans":0}}"#
        ))
        .expect("valid report")
    }

    #[test]
    fn rate_gauge_appearance_and_drift_are_advisory() {
        let base = report_with_gauges("{}");
        let cur = report_with_gauges(r#"{"pipeline.featurize.sentences_per_sec":120.5}"#);
        let d = diff_reports(&base, &cur, &DiffConfig::default());
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.advisory(), 1);

        // A >tolerance rate drop is flagged — but still advisory by default.
        let fast = report_with_gauges(r#"{"x_per_sec":1000.0}"#);
        let slow = report_with_gauges(r#"{"x_per_sec":100.0}"#);
        let d = diff_reports(&fast, &slow, &DiffConfig::default());
        assert!(d.passed());
        assert_eq!(d.findings[0].kind, "timing");
        // A rate *increase* is never a finding.
        let d = diff_reports(&slow, &fast, &DiffConfig::default());
        assert!(d.findings.is_empty(), "{}", d.render());
    }

    #[test]
    fn deterministic_gauge_drift_stays_breaking() {
        let a = report_with_gauges(r#"{"fed.sim.mean_loss":0.5}"#);
        let b = report_with_gauges(r#"{"fed.sim.mean_loss":0.75}"#);
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert!(!d.passed());
        assert_eq!(d.findings[0].kind, "gauge");
    }

    fn bench(seed: u64, graphs: u64, allocs: u64, tracked: bool, p50: u64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"fexiot-bench/v1","workload":"featurize","scale":"small","reps":5,"seed":{seed},"threads":1,"items":{{"graphs":{graphs}}},"alloc":{{"tracked":{tracked},"allocs":{allocs},"bytes":0,"peak_live_bytes":0}},"timing_us":{{"mean":{p50},"p50":{p50},"p90":{p50},"p99":{p50},"min":{p50},"max":{p50},"total":{p50}}}}}"#
        ))
        .expect("valid bench doc")
    }

    #[test]
    fn bench_docs_validate_and_identical_pass() {
        let doc = bench(42, 150, 0, false, 5000);
        validate_bench_report(&doc).expect("well-formed");
        let d = diff_bench_reports(&doc, &bench(42, 150, 0, false, 5000), &DiffConfig::default());
        assert!(d.passed() && d.findings.is_empty(), "{}", d.render());
        assert!(validate_bench_report(&report(1, 1)).is_err(), "obs schema must be rejected");
    }

    #[test]
    fn bench_item_and_seed_drift_are_breaking() {
        let d = diff_bench_reports(
            &bench(42, 150, 0, false, 5000),
            &bench(42, 151, 0, false, 5000),
            &DiffConfig::default(),
        );
        assert!(!d.passed());
        assert_eq!(d.findings[0].kind, "item");
        let d = diff_bench_reports(
            &bench(42, 150, 0, false, 5000),
            &bench(43, 150, 0, false, 5000),
            &DiffConfig::default(),
        );
        assert!(!d.passed());
        assert_eq!(d.findings[0].kind, "report");
    }

    #[test]
    fn bench_fleet_identity_drift_is_breaking() {
        let with_fleet = |clients: u64, topology: &str| {
            let mut doc = bench(42, 150, 0, false, 5000);
            if let Json::Obj(members) = &mut doc {
                members.push(("clients".into(), Json::UInt(clients)));
                members.push(("topology".into(), Json::Str(topology.into())));
            }
            doc
        };
        let a = with_fleet(2000, "hier:2");
        validate_bench_report(&a).expect("fleet identity fields are valid");
        // Same fleet shape: clean pass.
        let d = diff_bench_reports(&a, &with_fleet(2000, "hier:2"), &DiffConfig::default());
        assert!(d.passed() && d.findings.is_empty(), "{}", d.render());
        // Different fleet size, and fleet vs no-fleet: both breaking.
        let d = diff_bench_reports(&a, &with_fleet(100, "hier:2"), &DiffConfig::default());
        assert!(!d.passed());
        assert_eq!(d.findings[0].path, "clients");
        let d = diff_bench_reports(&a, &bench(42, 150, 0, false, 5000), &DiffConfig::default());
        assert!(!d.passed(), "fleet vs flat must not compare");
        // A malformed fleet field is rejected up front.
        let mut bad = bench(42, 150, 0, false, 5000);
        if let Json::Obj(members) = &mut bad {
            members.push(("clients".into(), Json::Str("many".into())));
        }
        assert!(validate_bench_report(&bad).is_err());
    }

    #[test]
    fn bench_throughput_mixes_deterministic_and_advisory_severities() {
        let with_tp = |events: u64, eps: u64, p99: u64| {
            let mut doc = bench(42, 150, 0, false, 5000);
            if let Json::Obj(members) = &mut doc {
                members.push((
                    "throughput".into(),
                    Json::Obj(vec![
                        ("events".into(), Json::UInt(events)),
                        ("events_per_sec".into(), Json::UInt(eps)),
                        ("latency_p99_ticks".into(), Json::UInt(p99)),
                    ]),
                ));
            }
            doc
        };
        let cfg = DiffConfig::default();
        let a = with_tp(240, 50_000, 1);
        validate_bench_report(&a).expect("throughput fields are valid");
        // Identical digests: clean pass.
        let d = diff_bench_reports(&a, &with_tp(240, 50_000, 1), &cfg);
        assert!(d.passed() && d.findings.is_empty(), "{}", d.render());
        // Event count and virtual-time p99 are deterministic: breaking.
        let d = diff_bench_reports(&a, &with_tp(239, 50_000, 1), &cfg);
        assert!(!d.passed());
        assert_eq!(d.findings[0].path, "throughput.events");
        let d = diff_bench_reports(&a, &with_tp(240, 50_000, 9), &cfg);
        assert!(!d.passed());
        assert_eq!(d.findings[0].path, "throughput.latency_p99_ticks");
        // A sustained-rate collapse past tolerance is advisory wall-clock.
        let d = diff_bench_reports(&a, &with_tp(240, 10_000, 1), &cfg);
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.findings[0].path, "throughput.events_per_sec");
        assert_eq!(d.findings[0].severity, Severity::Advisory);
        // One-sided presence (pre-streaming baseline): advisory only.
        let d = diff_bench_reports(&bench(42, 150, 0, false, 5000), &a, &cfg);
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.findings[0].kind, "throughput");
        // A malformed throughput field is rejected up front.
        let mut bad = bench(42, 150, 0, false, 5000);
        if let Json::Obj(members) = &mut bad {
            members.push(("throughput".into(), Json::Obj(vec![])));
        }
        assert!(validate_bench_report(&bad).is_err());
    }

    #[test]
    fn bench_store_digest_mixes_deterministic_and_advisory_severities() {
        let with_store = |digest: &str, blob_bytes: u64, speedup_milli: u64| {
            let mut doc = bench(42, 150, 0, false, 5000);
            if let Json::Obj(members) = &mut doc {
                members.push((
                    "store".into(),
                    Json::Obj(vec![
                        ("digest".into(), Json::Str(digest.to_string())),
                        ("blob_bytes".into(), Json::UInt(blob_bytes)),
                        ("cold_us".into(), Json::UInt(90_000)),
                        ("speedup_milli".into(), Json::UInt(speedup_milli)),
                    ]),
                ));
            }
            doc
        };
        let cfg = DiffConfig::default();
        let a = with_store("fnv1a:00000000deadbeef", 40_000, 12_000);
        validate_bench_report(&a).expect("store fields are valid");
        // Identical digests: clean pass.
        let d = diff_bench_reports(&a, &with_store("fnv1a:00000000deadbeef", 40_000, 12_000), &cfg);
        assert!(d.passed() && d.findings.is_empty(), "{}", d.render());
        // Payload digest and blob size are deterministic: breaking.
        let d = diff_bench_reports(&a, &with_store("fnv1a:0000000000000bad", 40_000, 12_000), &cfg);
        assert!(!d.passed());
        assert_eq!(d.findings[0].path, "store.digest");
        let d = diff_bench_reports(&a, &with_store("fnv1a:00000000deadbeef", 39_999, 12_000), &cfg);
        assert!(!d.passed());
        assert_eq!(d.findings[0].path, "store.blob_bytes");
        // A warm-speedup collapse past tolerance is advisory wall-clock; an
        // improvement is never flagged.
        let d = diff_bench_reports(&a, &with_store("fnv1a:00000000deadbeef", 40_000, 2_000), &cfg);
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.findings[0].path, "store.speedup_milli");
        assert_eq!(d.findings[0].severity, Severity::Advisory);
        let d = diff_bench_reports(&a, &with_store("fnv1a:00000000deadbeef", 40_000, 90_000), &cfg);
        assert!(d.findings.is_empty(), "{}", d.render());
        // One-sided presence (pre-store baseline): advisory only.
        let d = diff_bench_reports(&bench(42, 150, 0, false, 5000), &a, &cfg);
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.findings[0].kind, "store");
        // A malformed store section is rejected up front.
        let mut bad = bench(42, 150, 0, false, 5000);
        if let Json::Obj(members) = &mut bad {
            members.push(("store".into(), Json::Obj(vec![])));
        }
        assert!(validate_bench_report(&bad).is_err());
    }

    #[test]
    fn bench_alloc_drift_breaking_only_when_both_tracked() {
        let cfg = DiffConfig::default();
        let d = diff_bench_reports(&bench(42, 150, 100, true, 5000), &bench(42, 150, 101, true, 5000), &cfg);
        assert!(!d.passed());
        assert_eq!(d.findings[0].kind, "alloc");
        // Tracked vs untracked: advisory note, no breaking comparison.
        let d = diff_bench_reports(&bench(42, 150, 100, true, 5000), &bench(42, 150, 0, false, 5000), &cfg);
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.advisory(), 1);
    }

    #[test]
    fn bench_timing_drift_advisory_unless_strict() {
        let base = bench(42, 150, 0, false, 10_000);
        let slow = bench(42, 150, 0, false, 20_000);
        let d = diff_bench_reports(&base, &slow, &DiffConfig::default());
        assert!(d.passed());
        assert_eq!(d.advisory(), 1);
        let d = diff_bench_reports(
            &base,
            &slow,
            &DiffConfig { strict_timing: true, ..DiffConfig::default() },
        );
        assert!(!d.passed());
    }
}
