//! Per-round cost attribution and critical-path analysis for federated runs.
//!
//! The simulator has no real network, so the "time" attributed here is
//! **deterministic simulated ticks**, not wall-clock: straggler rounds of
//! delay (bounded by the staleness window) plus exponential-backoff ticks
//! spent on lossy-link retries. That keeps the critical path a pure function
//! of the seeded `FaultPlan` — same seed, same path — which is what lets the
//! e2e tests assert "round 3's slowest chain is the scripted straggler".

use crate::json::Json;

/// Simulated-tick cost one client accrued in one round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientRoundCost {
    pub client: usize,
    /// The client ran local training this round.
    pub trained: bool,
    /// The client's update made it into the aggregate.
    pub contributed: bool,
    /// The update was quarantined (corruption / norm guard).
    pub quarantined: bool,
    /// The upload exhausted retries and was lost.
    pub lost_upload: bool,
    /// Rounds of straggler delay the server waited out (staleness-bounded).
    pub straggler_ticks: u64,
    /// Exponential-backoff ticks spent re-sending on lossy links.
    pub backoff_ticks: u64,
    /// Ticks the client's update sat at a straggling edge aggregator before
    /// reaching the server (hierarchical topology only).
    pub agg_ticks: u64,
    /// Retransmissions beyond the first attempt (uploads + downloads).
    pub retries: u64,
}

impl ClientRoundCost {
    /// Total simulated ticks attributed to this client this round.
    pub fn total_ticks(&self) -> u64 {
        self.straggler_ticks + self.backoff_ticks + self.agg_ticks
    }
}

/// All per-client costs for one federated round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundCost {
    pub round: usize,
    pub costs: Vec<ClientRoundCost>,
}

/// One critical-path entry: the slowest client chain of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathEntry {
    pub round: usize,
    /// `None` when no client accrued any cost (an all-clear round).
    pub client: Option<usize>,
    pub total_ticks: u64,
    pub straggler_ticks: u64,
    pub backoff_ticks: u64,
    pub agg_ticks: u64,
    pub retries: u64,
    /// Dominant cost source: `straggler`, `backoff`, `aggregator`, or
    /// `idle`.
    pub cause: &'static str,
}

/// Computes the per-round critical path: for each round, the client with the
/// highest simulated-tick cost (ties broken by lowest client id, so the
/// result is deterministic). Rounds where nobody accrued cost produce an
/// `idle` entry with `client: None`.
pub fn critical_path(rounds: &[RoundCost]) -> Vec<CriticalPathEntry> {
    rounds
        .iter()
        .map(|round| {
            let slowest = round
                .costs
                .iter()
                .filter(|c| c.total_ticks() > 0)
                // Highest cost wins; ties resolve to the lowest client id
                // regardless of the order costs were recorded in.
                .min_by_key(|c| (std::cmp::Reverse(c.total_ticks()), c.client));
            match slowest {
                Some(c) => CriticalPathEntry {
                    round: round.round,
                    client: Some(c.client),
                    total_ticks: c.total_ticks(),
                    straggler_ticks: c.straggler_ticks,
                    backoff_ticks: c.backoff_ticks,
                    agg_ticks: c.agg_ticks,
                    retries: c.retries,
                    // The aggregator tier only wins a strict majority of the
                    // ticks; client-side causes keep their original priority
                    // order so flat-topology paths are byte-identical.
                    cause: if c.agg_ticks > c.straggler_ticks && c.agg_ticks > c.backoff_ticks {
                        "aggregator"
                    } else if c.straggler_ticks >= c.backoff_ticks {
                        "straggler"
                    } else {
                        "backoff"
                    },
                },
                None => CriticalPathEntry {
                    round: round.round,
                    client: None,
                    total_ticks: 0,
                    straggler_ticks: 0,
                    backoff_ticks: 0,
                    agg_ticks: 0,
                    retries: 0,
                    cause: "idle",
                },
            }
        })
        .collect()
}

/// Serializes a critical path as the report's `critical_path` array.
pub fn critical_path_to_json(path: &[CriticalPathEntry]) -> Json {
    Json::Arr(
        path.iter()
            .map(|e| {
                Json::Obj(vec![
                    ("round".into(), Json::UInt(e.round as u64)),
                    (
                        "client".into(),
                        e.client.map(|c| Json::UInt(c as u64)).unwrap_or(Json::Null),
                    ),
                    ("total_ticks".into(), Json::UInt(e.total_ticks)),
                    ("straggler_ticks".into(), Json::UInt(e.straggler_ticks)),
                    ("backoff_ticks".into(), Json::UInt(e.backoff_ticks)),
                    ("agg_ticks".into(), Json::UInt(e.agg_ticks)),
                    ("retries".into(), Json::UInt(e.retries)),
                    ("cause".into(), Json::Str(e.cause.into())),
                ])
            })
            .collect(),
    )
}

/// One human-readable line per round, for the summary tree.
pub fn render_critical_path(path: &[CriticalPathEntry]) -> String {
    let mut out = String::from("critical path (simulated ticks)\n");
    for e in path {
        let line = match e.client {
            Some(c) => format!(
                "  round[{}]  client[{}]  {} ticks (straggler {}, backoff {}, agg {}, retries {}) <- {}\n",
                e.round,
                c,
                e.total_ticks,
                e.straggler_ticks,
                e.backoff_ticks,
                e.agg_ticks,
                e.retries,
                e.cause
            ),
            None => format!("  round[{}]  idle (no client accrued cost)\n", e.round),
        };
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(client: usize, straggler: u64, backoff: u64) -> ClientRoundCost {
        ClientRoundCost {
            client,
            trained: true,
            contributed: true,
            straggler_ticks: straggler,
            backoff_ticks: backoff,
            retries: backoff.min(3),
            ..Default::default()
        }
    }

    #[test]
    fn picks_the_slowest_client_per_round() {
        let rounds = vec![
            RoundCost {
                round: 0,
                costs: vec![cost(0, 0, 1), cost(1, 2, 1), cost(2, 0, 0)],
            },
            RoundCost {
                round: 1,
                costs: vec![cost(0, 0, 0), cost(1, 0, 0)],
            },
        ];
        let path = critical_path(&rounds);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].client, Some(1));
        assert_eq!(path[0].total_ticks, 3);
        assert_eq!(path[0].cause, "straggler");
        assert_eq!(path[1].client, None);
        assert_eq!(path[1].cause, "idle");
    }

    #[test]
    fn ties_break_to_the_lowest_client_id() {
        let rounds = vec![RoundCost {
            round: 7,
            costs: vec![cost(2, 1, 1), cost(0, 2, 0), cost(1, 0, 2)],
        }];
        let path = critical_path(&rounds);
        assert_eq!(path[0].client, Some(0));
        assert_eq!(path[0].round, 7);
    }

    #[test]
    fn backoff_dominant_cost_is_labelled_backoff() {
        let rounds = vec![RoundCost {
            round: 0,
            costs: vec![cost(0, 1, 4)],
        }];
        assert_eq!(critical_path(&rounds)[0].cause, "backoff");
    }

    #[test]
    fn aggregator_dominant_cost_is_labelled_aggregator() {
        let mut slow = cost(3, 1, 1);
        slow.agg_ticks = 4;
        let rounds = vec![RoundCost {
            round: 2,
            costs: vec![cost(0, 2, 0), slow],
        }];
        let path = critical_path(&rounds);
        assert_eq!(path[0].client, Some(3));
        assert_eq!(path[0].total_ticks, 6);
        assert_eq!(path[0].agg_ticks, 4);
        assert_eq!(path[0].cause, "aggregator");
        // Ties between aggregator and client causes keep the client label.
        let mut tied = cost(1, 3, 0);
        tied.agg_ticks = 3;
        let rounds = vec![RoundCost {
            round: 0,
            costs: vec![tied],
        }];
        assert_eq!(critical_path(&rounds)[0].cause, "straggler");
    }
}
