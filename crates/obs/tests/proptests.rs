//! Property tests for the observability layer: the JSONL event codec must
//! round-trip arbitrary events exactly, and histogram merging must be
//! associative and commutative (the federated trace merge relies on both —
//! per-client snapshots land in arbitrary grouping as rounds interleave).

use fexiot_obs::stream::{event_to_line, header_line, parse_line, parse_stream};
use fexiot_obs::{Event, EventRecord, Histogram};
use proptest::prelude::*;

/// Builds an event from a generated discriminant and payload. Names cycle
/// through representative shapes, including `[index]` instances and a
/// timing (`_us`) histogram.
fn make_event(kind: u8, id: u64, value_bits: u32, name_sel: u8) -> Event {
    let name = match name_sel % 5 {
        0 => "fed.sim.participants".to_string(),
        1 => format!("round[{}]", id % 10),
        2 => format!("client[{}]", id % 7),
        3 => "gnn.trainer.epoch_loss".to_string(),
        _ => "fed.client.step_us".to_string(),
    };
    // Dyadic rational: exact in f64 and through shortest-round-trip Display.
    let value = f64::from(value_bits) / 256.0;
    match kind % 6 {
        0 => Event::SpanOpen {
            id,
            parent: id.is_multiple_of(3).then_some(id / 2),
            name,
        },
        1 => Event::SpanClose {
            id,
            name,
            elapsed_us: u64::from(value_bits),
        },
        2 => Event::Counter {
            name,
            delta: u64::from(value_bits),
            total: id.saturating_add(u64::from(value_bits)),
        },
        3 => Event::Gauge { name, value },
        4 => Event::Hist { name, value },
        _ => Event::Mark { name },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_lines_round_trip_exactly(
        kind in 0u8..6,
        id in 0u64..1_000_000,
        value_bits in 0u32..u32::MAX,
        name_sel in 0u8..5,
        seq in 0u64..1_000_000,
    ) {
        let rec = EventRecord { seq, event: make_event(kind, id, value_bits, name_sel) };
        let line = event_to_line(&rec, true).expect("timing-included mode serializes everything");
        let parsed = parse_line(&line, 1).expect("emitted line parses");
        prop_assert_eq!(&parsed, &rec);
        // A second serialization is byte-identical (canonical form).
        prop_assert_eq!(event_to_line(&parsed, true).unwrap(), line);
    }

    #[test]
    fn streams_of_events_round_trip_in_order(
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let mut text = header_line("prop");
        text.push('\n');
        let mut records = Vec::new();
        for i in 0..n {
            let x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64);
            let event = make_event((x % 6) as u8, x % 4096, (x >> 13) as u32, (x % 5) as u8);
            let rec = EventRecord { seq: i as u64, event };
            if let Some(line) = event_to_line(&rec, true) {
                text.push_str(&line);
                text.push('\n');
                records.push(rec);
            }
        }
        let (run, parsed) = parse_stream(&text).expect("assembled stream parses");
        prop_assert_eq!(run, "prop");
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        seed in 0u64..10_000,
        na in 0usize..30,
        nb in 0usize..30,
        nc in 0usize..30,
    ) {
        let edges = &[0.0, 1.0, 4.0, 16.0, 64.0];
        // Dyadic samples keep every sum exact, so snapshot equality is
        // legitimate bitwise equality, not approximate.
        let fill = |count: usize, salt: u64| {
            let mut h = Histogram::new(edges).unwrap();
            for i in 0..count {
                let x = seed.wrapping_mul(31).wrapping_add(salt).wrapping_add(i as u64);
                h.record((x % 1024) as f64 / 8.0);
            }
            h
        };
        let (a, b, c) = (fill(na, 1), fill(nb, 2), fill(nc, 3));

        // (a + b) + c
        let mut left = Histogram::from_snapshot(&a.snapshot()).unwrap();
        prop_assert!(left.merge(&b.snapshot()));
        prop_assert!(left.merge(&c.snapshot()));
        // a + (b + c)
        let mut bc = Histogram::from_snapshot(&b.snapshot()).unwrap();
        prop_assert!(bc.merge(&c.snapshot()));
        let mut right = Histogram::from_snapshot(&a.snapshot()).unwrap();
        prop_assert!(right.merge(&bc.snapshot()));
        prop_assert_eq!(left.snapshot(), right.snapshot());

        // a + b == b + a
        let mut ab = Histogram::from_snapshot(&a.snapshot()).unwrap();
        prop_assert!(ab.merge(&b.snapshot()));
        let mut ba = Histogram::from_snapshot(&b.snapshot()).unwrap();
        prop_assert!(ba.merge(&a.snapshot()));
        prop_assert_eq!(ab.snapshot(), ba.snapshot());

        // Merge totals are conserved.
        prop_assert_eq!(left.snapshot().count, (na + nb + nc) as u64);
    }

    #[test]
    fn mismatched_edges_never_merge(seed in 0u64..1000) {
        let mut a = Histogram::new(&[0.0, 1.0, 2.0]).unwrap();
        let b = Histogram::new(&[0.0, (seed % 100 + 3) as f64]).unwrap();
        let before = a.snapshot();
        prop_assert!(!a.merge(&b.snapshot()));
        prop_assert_eq!(a.snapshot(), before, "failed merge must not mutate");
    }
}
