//! Integration tests for the PR-3 observability subsystems: the flight
//! recorder, the JSONL event stream, child-registry trace merging, and the
//! schema-check helpers.

use fexiot_obs::stream::{event_to_line, parse_stream};
use fexiot_obs::{
    check_report_file, collect_report_paths, deterministic_json, Event, Registry,
    FLIGHT_RECORDER_CAP,
};
use std::sync::{Arc, Mutex};

fn registry() -> Arc<Registry> {
    Arc::new(Registry::with_enabled(true))
}

#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        Self(Arc::new(Mutex::new(Vec::new())))
    }
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn flight_recorder_keeps_the_newest_events_within_cap() {
    let reg = registry();
    reg.set_flight_recorder(8);
    for i in 0..20u64 {
        reg.counter_add("t.ring", i);
    }
    let recent = reg.recent_events();
    assert_eq!(recent.len(), 8, "ring buffer must hold exactly its capacity");
    // Strictly increasing seq, ending at the last emission.
    for w in recent.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
    assert_eq!(recent.last().unwrap().seq, 19);
    match &recent.last().unwrap().event {
        Event::Counter { total, .. } => assert_eq!(*total, (0..20).sum::<u64>()),
        other => panic!("expected a counter event, got {other:?}"),
    }
}

#[test]
fn default_flight_recorder_cap_bounds_memory() {
    let reg = registry();
    let buf = SharedBuf::new();
    // Attaching a stream turns the recorder on at the default capacity.
    reg.set_stream(Box::new(buf), "cap-test", true);
    for _ in 0..(FLIGHT_RECORDER_CAP + 100) {
        reg.counter_add("t.cap", 1);
    }
    assert_eq!(reg.recent_events().len(), FLIGHT_RECORDER_CAP);
}

#[test]
fn stream_round_trips_through_the_parser() {
    let reg = registry();
    let buf = SharedBuf::new();
    reg.set_stream(Box::new(buf.clone()), "rt", true);
    {
        let _outer = reg.span("outer");
        let _inner = reg.span("inner.op");
        reg.counter_add("t.count", 2);
        reg.counter_add("t.count", 3);
        reg.gauge_set("t.gauge", 0.5);
        reg.hist_record("t.hist", &[0.0, 1.0, 2.0], 1.5);
        reg.mark("phase[1]");
    }
    drop(reg.take_stream());

    let (run, events) = parse_stream(&buf.text()).expect("stream parses");
    assert_eq!(run, "rt");
    // Events survive the write→parse round trip exactly (timing included,
    // so span_close keeps its elapsed_us).
    let reparsed: Vec<String> = events
        .iter()
        .map(|e| event_to_line(e, true).expect("round-tripped event serializes"))
        .collect();
    let text = buf.text();
    let original: Vec<&str> = text.lines().skip(1).collect();
    assert_eq!(reparsed, original);
    // Order is call order: outer opens before inner, inner closes first.
    let names: Vec<&str> = events.iter().map(|e| e.event.name()).collect();
    let pos = |n: &str| names.iter().position(|&x| x == n).unwrap_or(usize::MAX);
    assert!(pos("outer") < pos("inner.op"));
    let closes: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.event, Event::SpanClose { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(closes.len(), 2);
    assert_eq!(events[closes[0]].event.name(), "inner.op");
    assert_eq!(events[closes[1]].event.name(), "outer");
}

#[test]
fn timing_excluded_stream_drops_wall_clock_fields() {
    let reg = registry();
    let buf = SharedBuf::new();
    reg.set_stream(Box::new(buf.clone()), "notiming", false);
    {
        let _s = reg.span("op");
        reg.hist_record("op.step_us", &[0.0, 1e3, 1e6], 42.0);
        reg.hist_record("op.norm", &[0.0, 1.0], 0.5);
    }
    drop(reg.take_stream());
    let text = buf.text();
    assert!(!text.contains("elapsed_us"), "span timing leaked: {text}");
    assert!(!text.contains("step_us"), "timing histogram leaked: {text}");
    assert!(text.contains("op.norm"), "non-timing histogram missing: {text}");
    parse_stream(&text).expect("timing-excluded stream still parses");
}

#[test]
fn parse_stream_rejects_corrupt_input() {
    assert!(parse_stream("").is_err(), "empty input has no header");
    assert!(
        parse_stream("{\"schema\":\"bogus/v9\",\"run\":\"x\"}\n").is_err(),
        "wrong schema must be rejected"
    );
    let good = "{\"schema\":\"fexiot-obs-events/v1\",\"run\":\"x\"}\n";
    assert!(parse_stream(good).is_ok(), "header-only stream is empty but valid");
    let out_of_order = format!(
        "{good}{}\n{}\n",
        "{\"seq\":1,\"ev\":\"mark\",\"name\":\"a\"}", "{\"seq\":1,\"ev\":\"mark\",\"name\":\"b\"}"
    );
    assert!(
        parse_stream(&out_of_order).is_err(),
        "non-increasing seq must be rejected"
    );
}

#[test]
fn absorb_merges_child_trace_under_the_open_span() {
    let parent = registry();
    let child = registry();
    {
        let _s = child.span("child.work");
        child.counter_add("child.items", 7);
        child.hist_record("child.norm", &[0.0, 1.0, 10.0], 0.5);
    }
    {
        let _round = parent.span("round[0]");
        let _client = parent.span("client[0]");
        assert_eq!(parent.absorb(&child.snapshot()), 0, "no hist mismatches");
    }
    let snap = parent.snapshot();
    let round = snap.find_span("round[0]").expect("round span");
    let client = round
        .children
        .iter()
        .find(|s| s.name == "client[0]")
        .expect("client span");
    assert!(
        client.children.iter().any(|s| s.name == "child.work"),
        "child span not attached under client[0]: {client:?}"
    );
    assert_eq!(snap.counters["child.items"], 7);
    assert_eq!(snap.histograms["child.norm"].count, 1);

    // Absorbing a second snapshot accumulates counters and histograms.
    let child2 = registry();
    child2.counter_add("child.items", 3);
    child2.hist_record("child.norm", &[0.0, 1.0, 10.0], 2.0);
    parent.absorb(&child2.snapshot());
    let snap = parent.snapshot();
    assert_eq!(snap.counters["child.items"], 10);
    assert_eq!(snap.histograms["child.norm"].count, 2);
}

#[test]
fn absorb_counts_edge_mismatched_histograms_instead_of_merging() {
    let parent = registry();
    parent.hist_record("shared.h", &[0.0, 1.0], 0.5);
    let child = registry();
    child.hist_record("shared.h", &[0.0, 2.0, 4.0], 1.0);
    assert_eq!(parent.absorb(&child.snapshot()), 1, "edge mismatch reported");
    let snap = parent.snapshot();
    assert_eq!(
        snap.histograms["shared.h"].count, 1,
        "mismatched histogram must not be merged"
    );
}

#[test]
fn timing_histograms_stay_out_of_deterministic_exports() {
    let reg = registry();
    reg.hist_record("work.step_us", &[0.0, 1e3, 1e6], 123.0);
    reg.hist_record("work.norm", &[0.0, 1.0, 10.0], 0.7);
    let json = deterministic_json(&reg.snapshot(), "t");
    assert!(!json.contains("step_us"), "timing histogram leaked: {json}");
    assert!(json.contains("work.norm"), "non-timing histogram missing");
}

#[test]
fn schema_check_helpers_walk_files_and_directories() {
    let dir = std::env::temp_dir().join(format!("fexiot-obs-sc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let reg = registry();
    reg.counter_add("t.count", 1);
    let good = fexiot_obs::write_report(&dir, "good", &reg.snapshot()).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\":\"nope\"}").unwrap();

    assert!(check_report_file(&good).is_ok());
    let err = check_report_file(&bad).unwrap_err();
    assert!(err.contains("schema"), "unhelpful error: {err}");

    // A directory argument expands to every *.json inside, sorted.
    let paths = collect_report_paths(std::slice::from_ref(&dir)).unwrap();
    assert_eq!(paths, vec![bad.clone(), good.clone()]);
    // Empty directories are an error, not a silent pass.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(collect_report_paths(&[empty]).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
