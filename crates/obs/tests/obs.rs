//! Unit coverage for the observability registry: histogram bucketing edge
//! cases, span nesting and unwind safety, exact concurrent counting, and
//! report export/validation round trips.

use fexiot_obs::report::{to_json, Timing};
use fexiot_obs::{
    buckets, deterministic_json, render_summary, validate_report, Histogram, Json, Registry,
};
use std::sync::Arc;

#[test]
fn histogram_buckets_underflow_interior_and_overflow() {
    let mut h = Histogram::new(&[0.0, 1.0, 2.0, 4.0]).expect("valid edges");
    h.record(-0.5); // underflow
    h.record(0.0); // first bucket, inclusive lower edge
    h.record(0.999); // first bucket
    h.record(1.0); // second bucket, boundary goes up
    h.record(3.999); // third bucket
    h.record(4.0); // overflow, inclusive last edge
    h.record(100.0); // overflow
    let s = h.snapshot();
    assert_eq!(s.underflow, 1);
    assert_eq!(s.counts, vec![2, 1, 1]);
    assert_eq!(s.overflow, 2);
    assert_eq!(s.count, 7);
    assert_eq!(s.min, Some(-0.5));
    assert_eq!(s.max, Some(100.0));
}

#[test]
fn histogram_quantile_edge_cases() {
    // Empty histogram: every quantile is None.
    let empty = Histogram::new(&[0.0, 1.0]).expect("valid edges").snapshot();
    assert_eq!(empty.quantile(0.5), None);
    assert_eq!(empty.quantile(0.0), None);

    // Out-of-range and NaN q: None even with data.
    let mut h = Histogram::new(&[0.0, 1.0, 2.0]).expect("valid edges");
    h.record(0.5);
    let s = h.snapshot();
    assert_eq!(s.quantile(-0.1), None);
    assert_eq!(s.quantile(1.1), None);
    assert_eq!(s.quantile(f64::NAN), None);

    // Single interior bucket, one sample: every quantile resolves to the
    // exact min/max, never an interpolated bucket midpoint outside them.
    assert_eq!(s.quantile(0.0), Some(0.5));
    assert_eq!(s.quantile(0.5), Some(0.5));
    assert_eq!(s.quantile(1.0), Some(0.5));

    // Overflow-heavy: ranks past the interior land on max, not an edge.
    let mut h = Histogram::new(&[0.0, 1.0]).expect("valid edges");
    h.record(0.5);
    for _ in 0..9 {
        h.record(50.0); // all overflow
    }
    let s = h.snapshot();
    assert_eq!(s.quantile(0.9), Some(50.0));
    assert_eq!(s.quantile(1.0), Some(50.0));
    // Lowest rank interpolates inside the interior bucket; the estimate may
    // sit anywhere in [min, bucket upper edge] but never in the overflow.
    let low = s.quantile(0.05).unwrap();
    assert!((0.5..=1.0).contains(&low), "q0.05 estimate {low} escaped the interior");

    // Underflow: low quantiles resolve to min.
    let mut h = Histogram::new(&[0.0, 1.0]).expect("valid edges");
    h.record(-5.0);
    h.record(-3.0);
    h.record(0.5);
    let s = h.snapshot();
    assert_eq!(s.quantile(0.25), Some(-5.0), "underflow ranks report min");
    assert_eq!(s.quantile(1.0), Some(0.5));

    // Interior interpolation stays within [min, max] and is monotone in q.
    let mut h = Histogram::new(&[0.0, 10.0]).expect("valid edges");
    for v in [2.0, 4.0, 6.0, 8.0] {
        h.record(v);
    }
    let s = h.snapshot();
    let (q25, q75) = (s.quantile(0.25).unwrap(), s.quantile(0.75).unwrap());
    assert!(q25 <= q75, "quantiles must be monotone: {q25} vs {q75}");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let v = s.quantile(q).unwrap();
        assert!((2.0..=8.0).contains(&v), "q{q} estimate {v} escaped [min, max]");
    }
}

#[test]
fn histogram_rejects_nan_and_infinities() {
    let mut h = Histogram::new(&[0.0, 1.0]).expect("valid edges");
    h.record(f64::NAN);
    h.record(f64::INFINITY);
    h.record(f64::NEG_INFINITY);
    h.record(0.5);
    let s = h.snapshot();
    assert_eq!(s.rejected, 3, "all non-finite samples rejected");
    assert_eq!(s.count, 1, "only the finite sample counted");
    assert!(s.sum.is_finite());
    assert_eq!(s.min, Some(0.5));
}

#[test]
fn histogram_rejects_malformed_edges() {
    assert!(Histogram::new(&[]).is_none(), "empty");
    assert!(Histogram::new(&[1.0]).is_none(), "single edge");
    assert!(Histogram::new(&[1.0, 1.0]).is_none(), "non-increasing");
    assert!(Histogram::new(&[2.0, 1.0]).is_none(), "decreasing");
    assert!(Histogram::new(&[0.0, f64::NAN]).is_none(), "NaN edge");
    assert!(
        Histogram::new(&[0.0, f64::INFINITY]).is_none(),
        "infinite edge"
    );
}

#[test]
fn histogram_empty_snapshot_has_no_min_max() {
    let h = Histogram::new(buckets::LOSS).expect("valid edges");
    let s = h.snapshot();
    assert_eq!(s.count, 0);
    assert_eq!(s.min, None);
    assert_eq!(s.max, None);
    assert_eq!(s.mean(), None);
}

#[test]
fn spans_nest_by_call_structure() {
    let reg = Arc::new(Registry::new());
    {
        let _root = reg.span("outer");
        {
            let _a = reg.span("inner_a");
        }
        let _b = reg.span("inner_b");
    }
    let _sibling = reg.span("sibling_root");
    let snap = reg.snapshot();
    assert_eq!(snap.roots.len(), 2);
    assert_eq!(snap.roots[0].name, "outer");
    let children: Vec<&str> = snap.roots[0]
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(children, vec!["inner_a", "inner_b"]);
    assert_eq!(snap.roots[1].name, "sibling_root");
    assert!(snap.roots[1].children.is_empty());
}

#[test]
fn panicking_scope_still_closes_its_span() {
    let reg = Arc::new(Registry::new());
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _root = reg.span("doomed");
        let _child = reg.span("doomed.child");
        panic!("instrumented code failed");
    }));
    assert!(caught.is_err(), "the panic must propagate");
    // Both spans were closed by their guards during unwinding, and the
    // registry is still usable afterwards (no poisoned-mutex wedge).
    let _after = reg.span("after_panic");
    reg.counter_add("after.panic", 1);
    let snap = reg.snapshot();
    let doomed = snap.find_span("doomed").expect("doomed span recorded");
    assert_eq!(doomed.children.len(), 1);
    assert_eq!(snap.counters["after.panic"], 1);
    // A span opened after the unwind is a fresh root, not a child of the
    // panicked span (its stack entry was removed on drop).
    assert!(snap.roots.iter().any(|r| r.name == "after_panic"));
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let reg = Arc::new(Registry::new());
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    reg.counter_add("test.concurrent", 1);
                    if i % 64 == 0 {
                        reg.hist_record("test.concurrent.hist", buckets::SMALL_COUNT, t as f64);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(
        reg.counter_value("test.concurrent"),
        THREADS as u64 * PER_THREAD,
        "increments were lost"
    );
    let snap = reg.snapshot();
    assert_eq!(
        snap.histograms["test.concurrent.hist"].count,
        (THREADS as u64) * PER_THREAD.div_ceil(64)
    );
}

#[test]
fn concurrent_spans_keep_per_thread_parentage() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let _outer = reg.span(format!("thread[{t}]"));
                let _inner = reg.span(format!("thread[{t}].work"));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let snap = reg.snapshot();
    assert_eq!(snap.roots.len(), 4, "one root per thread");
    for root in &snap.roots {
        assert_eq!(root.children.len(), 1, "inner nested under its own thread");
        assert!(root.children[0].name.starts_with(&root.name));
    }
}

#[test]
fn disabled_registry_is_inert_and_reenables() {
    let reg = Arc::new(Registry::with_enabled(false));
    {
        let _s = reg.span("ghost");
        reg.counter_add("ghost", 1);
        reg.gauge_set("ghost", 1.0);
        reg.hist_record("ghost", buckets::LOSS, 0.5);
    }
    let snap = reg.snapshot();
    assert!(snap.roots.is_empty() && snap.counters.is_empty() && snap.histograms.is_empty());
    reg.set_enabled(true);
    reg.counter_add("real", 2);
    assert_eq!(reg.counter_value("real"), 2);
}

#[test]
fn report_export_roundtrips_and_validates() {
    let reg = Arc::new(Registry::new());
    {
        let _r = reg.span("pipeline");
        let _c = reg.span("pipeline.corpus");
        reg.counter_add("fed.sim.participants", 5);
        reg.gauge_set("fed.sim.mean_loss", 0.75);
        reg.hist_record("gnn.trainer.epoch_loss", buckets::LOSS, 0.3);
        reg.hist_record("gnn.trainer.epoch_loss", buckets::LOSS, f64::NAN);
    }
    let snap = reg.snapshot();
    let doc = to_json(&snap, "unit", Timing::Include);
    validate_report(&doc).expect("emitted report conforms to its own schema");
    let reparsed = Json::parse(&doc.to_string()).expect("serialized report parses");
    // Integer-valued floats reparse as integers, so compare re-serialized
    // text (the fixed point of the writer/parser pair), not value trees.
    assert_eq!(reparsed.to_string(), doc.to_string(), "writer/parser round trip");
    assert_eq!(
        reparsed.get("counters").unwrap().get("fed.sim.participants"),
        Some(&Json::UInt(5))
    );

    // Timing-free form contains no elapsed_us key anywhere.
    let det = deterministic_json(&snap, "unit");
    assert!(!det.contains("elapsed_us"));
    validate_report(&Json::parse(&det).expect("deterministic form parses"))
        .expect("deterministic form also conforms");

    // Summary renders the tree and the metric digests.
    let summary = render_summary(&snap);
    assert!(summary.contains("pipeline"));
    assert!(summary.contains("pipeline.corpus"));
    assert!(summary.contains("fed.sim.participants = 5"));
    assert!(summary.contains("gnn.trainer.epoch_loss"));
}

#[test]
fn validate_report_rejects_malformed_documents() {
    let cases = [
        ("{}", "empty object"),
        (
            r#"{"schema":"bogus","run":"x","spans":[],"counters":{},"gauges":{},"histograms":{},"dropped_spans":0}"#,
            "wrong schema",
        ),
        (
            r#"{"schema":"fexiot-obs/v1","run":"x","spans":[{"children":[]}],"counters":{},"gauges":{},"histograms":{},"dropped_spans":0}"#,
            "span without name",
        ),
        (
            r#"{"schema":"fexiot-obs/v1","run":"x","spans":[],"counters":{"a":-1},"gauges":{},"histograms":{},"dropped_spans":0}"#,
            "negative counter",
        ),
        (
            r#"{"schema":"fexiot-obs/v1","run":"x","spans":[],"counters":{},"gauges":{},"histograms":{"h":{"edges":[0,1],"counts":[1,2],"underflow":0,"overflow":0,"count":3,"rejected":0}},"dropped_spans":0}"#,
            "edge/count length mismatch",
        ),
    ];
    for (text, why) in cases {
        let doc = Json::parse(text).expect("test document parses");
        assert!(validate_report(&doc).is_err(), "accepted: {why}");
    }
}

#[test]
fn snapshot_deltas_support_round_accounting() {
    // The federated simulator computes RoundTelemetry as counter deltas;
    // lock in the arithmetic it relies on.
    let reg = Arc::new(Registry::new());
    reg.counter_add("fed.sim.lost_messages", 2);
    let before = reg.counter_value("fed.sim.lost_messages");
    reg.counter_add("fed.sim.lost_messages", 3);
    assert_eq!(reg.counter_value("fed.sim.lost_messages") - before, 3);
    reg.reset();
    assert_eq!(reg.counter_value("fed.sim.lost_messages"), 0);
}

#[test]
fn absorb_preserves_two_levels_of_nesting_and_merges_histograms() {
    // A child registry records a grandchild-deep span tree plus metrics, as
    // a federated client would.
    let child = Arc::new(Registry::new());
    {
        let _w = child.span("client.work");
        {
            let _i = child.span("client.work.batch");
            let _l = child.span("client.work.batch.step");
            child.counter_add("client.steps", 4);
        }
        child.hist_record("client.step_us", buckets::TIME_US, 120.0);
        child.hist_record("client.step_us", buckets::TIME_US, 450.0);
    }
    let child_snap = child.snapshot();

    let parent = Arc::new(Registry::new());
    parent.hist_record("client.step_us", buckets::TIME_US, 80.0);
    {
        let _round = parent.span("server.round");
        assert_eq!(parent.absorb(&child_snap), 0);
    }

    let snap = parent.snapshot();
    // The absorbed tree hangs under the span that was open during absorb,
    // with the grandchild level intact; profile paths lock the ordering.
    let paths: Vec<(String, u64)> = fexiot_obs::profile::profile(&snap)
        .into_iter()
        .map(|s| (s.path, s.count))
        .collect();
    assert_eq!(
        paths,
        vec![
            ("server.round".to_string(), 1),
            ("server.round;client.work".to_string(), 1),
            ("server.round;client.work;client.work.batch".to_string(), 1),
            (
                "server.round;client.work;client.work.batch;client.work.batch.step".to_string(),
                1
            ),
        ]
    );
    // Counters accumulate and histograms merge across the absorb.
    assert_eq!(snap.counters["client.steps"], 4);
    let h = &snap.histograms["client.step_us"];
    assert_eq!(h.counts.iter().sum::<u64>() + h.underflow + h.overflow, 3);

    // A second absorb of the same snapshot under a fresh round adds another
    // instance of every path rather than collapsing them.
    {
        let _round = parent.span("server.round");
        assert_eq!(parent.absorb(&child_snap), 0);
    }
    let again = fexiot_obs::profile::profile(&parent.snapshot());
    for stat in &again {
        assert_eq!(stat.count, 2, "path {} should have two instances", stat.path);
    }
    assert_eq!(parent.snapshot().counters["client.steps"], 8);
}
