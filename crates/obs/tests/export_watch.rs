//! Integration test for `obs-export --watch --once`: record an event stream
//! the way FedSim emits one, replay it through the real binary, and assert
//! the rendered fleet view — cohort counts, quorum margin, and SLO status.

use fexiot_obs::Registry;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn temp_stream(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fexiot-watch-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("stream.jsonl")
}

/// Records `events` to a JSONL stream file and returns the frame printed by
/// `obs-export --watch --once` for it.
fn watch_once(path: &PathBuf, record: impl FnOnce(&Registry)) -> String {
    let file = std::fs::File::create(path).expect("create stream file");
    let reg = Arc::new(Registry::new());
    reg.set_stream(Box::new(file), "watch-e2e", false);
    record(&reg);
    drop(reg.take_stream());

    let out = Command::new(env!("CARGO_BIN_EXE_obs-export"))
        .args(["--watch", "--once"])
        .arg(path)
        .output()
        .expect("run obs-export");
    assert!(
        out.status.success(),
        "obs-export failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 frame")
}

#[test]
fn watch_once_renders_fleet_view_from_recorded_stream() {
    let path = temp_stream("fleet");
    let frame = watch_once(&path, |reg| {
        // Round 0: healthy, all rules passing.
        reg.mark("round[0]");
        reg.counter_add("fed.sim.sampled", 16);
        reg.counter_add("fed.sim.participants", 14);
        reg.counter_add("fed.sim.dropped", 2);
        reg.mark("slo_failing[0]");
        // Round 1: an aggregator crash degrades the round; the root-cause
        // engine names it. The watch view shows this round's deltas only.
        reg.mark("round[1]");
        reg.counter_add("fed.sim.sampled", 16);
        reg.counter_add("fed.sim.participants", 9);
        reg.counter_add("fed.sim.dropped", 5);
        reg.counter_add("fed.sim.quarantined", 2);
        reg.counter_add("fed.agg.down", 1);
        reg.counter_add("fed.agg.reassigned", 8);
        reg.counter_add("fed.agg.deadline_missed", 1);
        reg.counter_add("fed.sim.stale_accepted", 3);
        reg.counter_add("fed.sim.retried_messages", 2);
        reg.counter_add("fed.sim.lost_messages", 1);
        reg.counter_add("fed.sim.backoff_ticks", 6);
        reg.gauge_set("fed.round.quorum_margin", -0.125);
        reg.gauge_set("fed.sim.mean_loss", 0.4375);
        reg.mark("slo_failing[1]");
        reg.mark("slo_top_cause[agg_crash]");
    });

    assert!(frame.contains("── obs watch · run watch-e2e ──"), "{frame}");
    assert!(frame.contains("round 1 in flight · 2 started"), "{frame}");
    assert!(
        frame.contains("cohort: sampled 16  participants 9  dropped 5  quarantined 2"),
        "{frame}"
    );
    assert!(
        frame.contains("aggregators: down 1  reassigned 8  quorum aborts 0  deadline misses 1"),
        "{frame}"
    );
    assert!(
        frame.contains("quorum margin: -0.125 (weight above threshold)"),
        "{frame}"
    );
    assert!(frame.contains("SLO: 1 failing · top cause agg_crash"), "{frame}");
    assert!(
        frame.contains("attribution: stale accepted 3  retries 2  lost msgs 1  backoff ticks 6"),
        "{frame}"
    );
    assert!(frame.contains("mean loss 0.4375"), "{frame}");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn watch_once_clears_top_cause_when_rules_recover() {
    let path = temp_stream("recover");
    let frame = watch_once(&path, |reg| {
        reg.mark("round[0]");
        reg.mark("slo_failing[2]");
        reg.mark("slo_top_cause[crash]");
        // Recovery: the newest verdict count wins and a zero clears the
        // stale top cause.
        reg.mark("round[1]");
        reg.counter_add("fed.sim.sampled", 4);
        reg.counter_add("fed.sim.participants", 4);
        reg.mark("slo_failing[0]");
    });

    assert!(frame.contains("SLO: all rules passing"), "{frame}");
    assert!(!frame.contains("top cause"), "{frame}");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn watch_once_banners_when_no_slo_rules_loaded() {
    // A stream with no `slo_failing` marks (no SLO engine attached) must say
    // so explicitly instead of rendering an empty verdict area.
    let path = temp_stream("noslo");
    let frame = watch_once(&path, |reg| {
        reg.mark("round[0]");
        reg.counter_add("fed.sim.participants", 4);
    });
    assert!(frame.contains("SLO: no rules loaded"), "{frame}");
    assert!(!frame.contains("all rules passing"), "{frame}");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn watch_once_renders_streaming_lanes_for_serve_streams() {
    let path = temp_stream("stream");
    let frame = watch_once(&path, |reg| {
        reg.mark("round[0]");
        reg.counter_add("stream.ingest.events", 64);
        reg.counter_add("stream.detect.events", 60);
        reg.counter_add("stream.mailbox.shed", 3);
        reg.gauge_set("stream.actor.mailbox_depth", 7.0);
        reg.gauge_set("stream.detect.latency_p99_ticks", 5.0);
        reg.mark("slo_failing[1]");
        reg.mark("stream_backpressure[shard[1]]");
        // Round 1 deltas are what the frame shows.
        reg.mark("round[1]");
        reg.counter_add("stream.ingest.events", 10);
        reg.counter_add("stream.detect.events", 8);
        reg.counter_add("stream.mailbox.shed", 1);
    });
    assert!(
        frame.contains("stream (round): ingested 10  detected 8  shed 1"),
        "{frame}"
    );
    assert!(
        frame.contains("mailboxes: depth max 7  p99 latency 5.0 ticks  backpressure shard[1]"),
        "{frame}"
    );
    assert!(frame.contains("SLO: 1 failing"), "{frame}");
    // A serve stream carries no federated metrics: those lanes are omitted.
    assert!(!frame.contains("cohort:"), "{frame}");
    assert!(!frame.contains("aggregators:"), "{frame}");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
