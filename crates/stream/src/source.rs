//! Event sources for the streaming service.
//!
//! The service consumes a time-ordered sequence of [`HomeEvent`]s plus the
//! fleet's offline interaction graphs. Two sources exist:
//!
//! * **Replay** ([`replay_fleet`]): seeds a rule corpus, samples one offline
//!   graph per home, simulates each home's device activity
//!   ([`HomeSimulator`]), cleans the logs, and merges them into one stream
//!   ordered by `(time, home)`. Fully deterministic in the seed.
//! * **Wire** ([`crate::wire::parse_wire`]): reads a recorded
//!   `fexiot-obs-events/v1` stream. The offline graphs still come from the
//!   seeded fleet build, so a wire file pairs with the `(homes, home_size,
//!   seed)` triple that recorded it.

use fexiot_graph::events::{clean_log, HomeSimulator, SimConfig};
use fexiot_graph::{
    CorpusConfig, CorpusGenerator, CorpusIndex, FeatureConfig, GraphBuilder, InteractionGraph,
};
use fexiot_tensor::rng::Rng;

use crate::wire::HomeEvent;

/// RNG domain separator: the replay source draws from its own stream so
/// existing pipelines sharing a seed are unaffected.
const REPLAY_SALT: u64 = 0x57_12_EA_0B_5E_ED;

/// Configuration of the seeded replay fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of homes streaming events.
    pub homes: usize,
    /// Rules per home graph.
    pub home_size: usize,
    /// Master seed; same seed ⇒ byte-identical fleet and event stream.
    pub seed: u64,
    /// Per-home simulation horizon.
    pub sim: SimConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            homes: 6,
            home_size: 6,
            seed: 7,
            sim: SimConfig::short(),
        }
    }
}

/// A fleet ready to stream: offline graphs plus the merged event sequence.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Offline interaction graph per home (index = home id).
    pub graphs: Vec<InteractionGraph>,
    /// Time-ordered merged event stream across all homes.
    pub events: Vec<HomeEvent>,
}

/// Builds the seeded replay fleet: corpus → per-home offline graphs →
/// simulated, cleaned, merged event stream.
pub fn replay_fleet(cfg: &FleetConfig) -> Fleet {
    let mut rng = Rng::seed_from_u64(cfg.seed ^ REPLAY_SALT);
    let mut gen = CorpusGenerator::new();
    let rules = gen.generate(&CorpusConfig::small(), &mut rng);
    let index = CorpusIndex::build(rules);
    let builder = GraphBuilder::new(FeatureConfig::small());

    let graphs: Vec<InteractionGraph> = (0..cfg.homes)
        .map(|_| builder.sample_graph(&index, cfg.home_size, &mut rng))
        .collect();

    let mut events = Vec::new();
    for (home, graph) in graphs.iter().enumerate() {
        let rules: Vec<_> = graph.nodes.iter().map(|n| n.rule.clone()).collect();
        let mut sim = HomeSimulator::new(rules);
        let raw = sim.run(&cfg.sim, &mut rng);
        for ev in clean_log(&raw) {
            events.push(HomeEvent { home, event: ev });
        }
    }
    // Merge into one fleet-wide stream. The sort is stable and the key is
    // (time, home), so simultaneous events across homes interleave
    // deterministically and each home's log order is preserved.
    events.sort_by_key(|e| (e.event.time, e.home));
    Fleet { graphs, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_deterministic_in_the_seed() {
        let cfg = FleetConfig {
            homes: 3,
            ..FleetConfig::default()
        };
        let a = replay_fleet(&cfg);
        let b = replay_fleet(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.graphs.len(), 3);
        for (ga, gb) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(ga, gb);
        }
        let other = replay_fleet(&FleetConfig {
            seed: 8,
            homes: 3,
            ..FleetConfig::default()
        });
        assert_ne!(a.events, other.events);
    }

    #[test]
    fn events_are_time_ordered_and_non_empty() {
        let fleet = replay_fleet(&FleetConfig::default());
        assert!(fleet.events.len() > 50, "replay produced {} events", fleet.events.len());
        for pair in fleet.events.windows(2) {
            assert!(pair[0].event.time <= pair[1].event.time);
        }
        assert!(fleet.events.iter().any(|e| e.home != 0));
    }
}
