//! Incremental online-graph maintenance.
//!
//! [`fexiot_graph::online::fuse_online`] rebuilds a home's online graph by
//! rescanning the *entire* event log (O(log²) for the consistency and
//! completion features). A long-running service cannot afford that per
//! event, so [`HomeMaintainer`] keeps the fusion state resident — last-known
//! device/channel states, per-device event counts, resolved
//! consistency/completion tallies, and the still-open completion windows —
//! and updates the graph's runtime feature block in place in O(nodes) per
//! timestamp.
//!
//! **Parity contract**: after every event has been applied and
//! [`HomeMaintainer::finalize`] called, the maintained graph is *exactly*
//! equal (bitwise, per feature) to `fuse_online(offline, full_log)`. This is
//! locked by a test below. Three details make it exact:
//!
//! * Events sharing a timestamp are buffered and applied as one group,
//!   because the batch features read the log *through* a timestamp: a
//!   transition at time `t` sees the state written by later same-`t` log
//!   entries.
//! * `latest`/`chan_latest` are overwritten in log order, matching the
//!   batch's `max_by_key` tie-breaking (last maximal entry wins).
//! * Completion checks stay pending until satisfied, expired by the
//!   [`EXPLAIN_WINDOW`], or finalized at end-of-stream — mirroring the
//!   batch's "already in state or transitioned within the window" rule.
//!
//! Mid-stream, consistency/completion ratios cover the resolved prefix only
//! (open windows are not yet counted) — a deterministic, causally-sound
//! approximation of the batch value over the same prefix.

use std::collections::BTreeMap;

use fexiot_graph::events::CleanEvent;
use fexiot_graph::online::EXPLAIN_WINDOW;
use fexiot_graph::rule::Trigger;
use fexiot_graph::{Device, InteractionGraph, Rule, RUNTIME_FEATURE_DIMS};

/// An open trigger-completion window: the rule's trigger fired at `opened`
/// and we are waiting for `device` to transition to `activate`.
#[derive(Debug, Clone)]
struct Pending {
    node: usize,
    device: Device,
    activate: bool,
    opened: u64,
}

/// Resident fusion state for one home. See the module docs for the parity
/// contract with the batch fuser.
#[derive(Debug, Clone)]
pub struct HomeMaintainer {
    online: InteractionGraph,
    rules: Vec<Rule>,
    /// Primary device per node (first action device, else trigger device).
    primary: Vec<Option<Device>>,
    /// Offline values of the `[status, sin, cos]` slots, restored while the
    /// node's device has no events yet (the batch fuser leaves them alone).
    offline_status: Vec<[f64; 3]>,
    /// Last-known `(time, active)` per device, overwritten in log order.
    latest: BTreeMap<Device, (u64, bool)>,
    /// Last-known sensed level per `(channel, location)`.
    chan_latest: BTreeMap<(fexiot_graph::Channel, fexiot_graph::Location), (u64, bool)>,
    per_device_count: BTreeMap<Device, u64>,
    /// Per-node `(explained, total)` actuator-transition tallies.
    consistency: Vec<(u64, u64)>,
    /// Per-node `(satisfied, checks)` over *resolved* completion windows.
    completion: Vec<(u64, u64)>,
    pending: Vec<Pending>,
    /// Same-timestamp buffer; flushed when time advances.
    group: Vec<CleanEvent>,
    group_time: Option<u64>,
    events_applied: u64,
}

impl HomeMaintainer {
    pub fn new(offline: &InteractionGraph) -> Self {
        let rules: Vec<Rule> = offline.nodes.iter().map(|n| n.rule.clone()).collect();
        let primary = rules
            .iter()
            .map(|r| {
                r.actions.first().map(|c| c.device).or(match r.trigger {
                    Trigger::DeviceState { device, .. } => Some(device),
                    _ => None,
                })
            })
            .collect();
        let offline_status = offline
            .nodes
            .iter()
            .map(|n| {
                let block = n.features.len() - RUNTIME_FEATURE_DIMS;
                [
                    n.features[block],
                    n.features[block + 1],
                    n.features[block + 2],
                ]
            })
            .collect();
        let n = offline.nodes.len();
        let mut m = Self {
            online: offline.clone(),
            rules,
            primary,
            offline_status,
            latest: BTreeMap::new(),
            chan_latest: BTreeMap::new(),
            per_device_count: BTreeMap::new(),
            consistency: vec![(0, 0); n],
            completion: vec![(0, 0); n],
            pending: Vec::new(),
            group: Vec::new(),
            group_time: None,
            events_applied: 0,
        };
        // An empty log still fuses: ratios default to 1.0, online flag set.
        m.refresh_features();
        m
    }

    /// The maintained online graph (runtime block current through the last
    /// *complete* timestamp group).
    pub fn graph(&self) -> &InteractionGraph {
        &self.online
    }

    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Applies one event. Events must arrive in non-decreasing time order
    /// (the wire and replay sources guarantee this).
    pub fn apply(&mut self, ev: CleanEvent) {
        debug_assert!(
            self.group_time.is_none_or(|t| ev.time >= t),
            "events must be time-ordered"
        );
        if self.group_time != Some(ev.time) {
            self.flush_group();
            self.group_time = Some(ev.time);
        }
        self.group.push(ev);
        self.events_applied += 1;
    }

    /// Flushes the buffered group and resolves every still-open completion
    /// window (end-of-stream: no transition can arrive any more). After this
    /// the graph equals `fuse_online(offline, full_log)` exactly.
    pub fn finalize(&mut self) {
        self.flush_group();
        self.group_time = None;
        for p in std::mem::take(&mut self.pending) {
            self.completion[p.node].1 += 1;
        }
        self.refresh_features();
    }

    fn flush_group(&mut self) {
        let Some(t) = self.group_time else { return };
        let group = std::mem::take(&mut self.group);

        // 1. Expire windows that this group's time has moved past: a
        //    transition at `t` only satisfies windows with `t <= opened + W`.
        let completion = &mut self.completion;
        self.pending.retain(|p| {
            if p.opened + EXPLAIN_WINDOW < t {
                completion[p.node].1 += 1;
                false
            } else {
                true
            }
        });

        // 2. Apply the whole group to the state maps first: batch features
        //    at time `t` see every log entry with time <= t, including
        //    same-`t` entries later in the log.
        for e in &group {
            self.latest.insert(e.device, (t, e.active));
            if let Some(c) = e.device.kind.sense_channel() {
                self.chan_latest.insert((c, e.device.location), (t, e.active));
            }
            *self.per_device_count.entry(e.device).or_insert(0) += 1;
        }

        // 3a. Transitions in this group may close windows opened at earlier
        //     times (strictly earlier: a window opened at `t` needs a
        //     transition *after* `t`).
        for e in &group {
            let completion = &mut self.completion;
            self.pending.retain(|p| {
                if p.device == e.device && p.activate == e.active && p.opened < t {
                    completion[p.node].0 += 1;
                    completion[p.node].1 += 1;
                    false
                } else {
                    true
                }
            });
        }

        // 3b. Consistency: every actuator transition of a node's action
        //     devices is explained iff some rule commands that exact state
        //     and its trigger is observable at `t`.
        for e in &group {
            if e.device.kind.is_sensor() {
                continue;
            }
            let explained = self.rules.iter().any(|r| {
                r.actions
                    .iter()
                    .any(|c| c.device == e.device && c.activate == e.active)
                    && self.trigger_observable(r)
            });
            for (i, rule) in self.rules.iter().enumerate() {
                if rule.actions.iter().any(|c| c.device == e.device) {
                    self.consistency[i].1 += 1;
                    if explained {
                        self.consistency[i].0 += 1;
                    }
                }
            }
        }

        // 3c. Trigger instants open one completion window per command; a
        //     device already in the commanded state resolves immediately.
        for e in &group {
            for (i, rule) in self.rules.iter().enumerate() {
                if !trigger_event_matches(rule, e) {
                    continue;
                }
                for cmd in &rule.actions {
                    let already =
                        self.latest.get(&cmd.device).map(|&(_, a)| a) == Some(cmd.activate);
                    if already {
                        self.completion[i].0 += 1;
                        self.completion[i].1 += 1;
                    } else {
                        self.pending.push(Pending {
                            node: i,
                            device: cmd.device,
                            activate: cmd.activate,
                            opened: t,
                        });
                    }
                }
            }
        }

        // 4. Rewrite the runtime feature block of every node: O(nodes).
        self.refresh_features();
    }

    /// Is `rule`'s trigger satisfied by the current last-known state? The
    /// incremental mirror of the batch `trigger_observable_before`.
    fn trigger_observable(&self, rule: &Rule) -> bool {
        match rule.trigger {
            Trigger::DeviceState { device, active } => self
                .latest
                .get(&device)
                // Devices start inactive: no record yet means "off".
                .map_or(!active, |&(_, a)| a == active),
            Trigger::ChannelLevel {
                channel,
                location,
                high,
            } => self
                .chan_latest
                .get(&(channel, location))
                .is_some_and(|&(_, a)| a == high),
            Trigger::Time { .. } | Trigger::Manual => true,
        }
    }

    fn refresh_features(&mut self) {
        for (i, node) in self.online.nodes.iter_mut().enumerate() {
            let dims = node.features.len();
            debug_assert!(dims >= RUNTIME_FEATURE_DIMS);
            let block = dims - RUNTIME_FEATURE_DIMS;
            let mut event_count = 0u64;
            let mut status = self.offline_status[i];
            if let Some(d) = self.primary[i] {
                if let Some(&(t, active)) = self.latest.get(&d) {
                    let phase = (t % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
                    status = [
                        if active { 1.0 } else { -1.0 },
                        phase.sin(),
                        phase.cos(),
                    ];
                }
                event_count = self.per_device_count.get(&d).copied().unwrap_or(0);
            }
            node.features[block] = status[0];
            node.features[block + 1] = status[1];
            node.features[block + 2] = status[2];
            let (exp, tot) = self.consistency[i];
            node.features[block + 3] = if tot == 0 { 1.0 } else { exp as f64 / tot as f64 };
            let (sat, checks) = self.completion[i];
            node.features[block + 4] = if checks == 0 {
                1.0
            } else {
                sat as f64 / checks as f64
            };
            node.features[block + 5] = (1.0 + event_count as f64).ln() / 5.0;
            node.features[block + 6] = 1.0; // online flag
        }
    }
}

/// Does this single event satisfy the rule's trigger predicate? (Mirror of
/// the batch fuser's private helper.)
fn trigger_event_matches(rule: &Rule, e: &CleanEvent) -> bool {
    match rule.trigger {
        Trigger::DeviceState { device, active } => e.device == device && e.active == active,
        Trigger::ChannelLevel {
            channel,
            location,
            high,
        } => {
            e.device.location == location
                && e.device.kind.sense_channel() == Some(channel)
                && e.active == high
        }
        Trigger::Time { .. } | Trigger::Manual => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_graph::events::{clean_log, HomeSimulator, SimConfig};
    use fexiot_graph::online::fuse_online;
    use fexiot_graph::{
        CorpusConfig, CorpusGenerator, CorpusIndex, FeatureConfig, GraphBuilder,
    };
    use fexiot_tensor::rng::Rng;

    fn home(seed: u64) -> (InteractionGraph, Vec<CleanEvent>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::small(), &mut rng);
        let index = CorpusIndex::build(rules);
        let builder = GraphBuilder::new(FeatureConfig::small());
        let graph = builder.sample_graph(&index, 6, &mut rng);
        let node_rules: Vec<_> = graph.nodes.iter().map(|n| n.rule.clone()).collect();
        let mut sim = HomeSimulator::new(node_rules);
        let raw = sim.run(&SimConfig::short(), &mut rng);
        (graph, clean_log(&raw))
    }

    fn assert_graphs_equal(a: &InteractionGraph, b: &InteractionGraph, ctx: &str) {
        assert_eq!(a.edges, b.edges, "{ctx}: edges diverged");
        for (i, (na, nb)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            for (j, (fa, fb)) in na.features.iter().zip(&nb.features).enumerate() {
                assert!(
                    fa.to_bits() == fb.to_bits(),
                    "{ctx}: node {i} feature {j}: {fa} != {fb}"
                );
            }
        }
    }

    #[test]
    fn incremental_fusion_matches_batch_exactly() {
        for seed in [1u64, 2, 3, 11, 42] {
            let (offline, log) = home(seed);
            assert!(!log.is_empty());
            let batch = fuse_online(&offline, &log);
            let mut m = HomeMaintainer::new(&offline);
            for e in &log {
                m.apply(e.clone());
            }
            m.finalize();
            assert_graphs_equal(m.graph(), &batch, &format!("seed {seed}"));
        }
    }

    #[test]
    fn empty_log_matches_batch() {
        let (offline, _) = home(5);
        let batch = fuse_online(&offline, &[]);
        let mut m = HomeMaintainer::new(&offline);
        m.finalize();
        assert_graphs_equal(m.graph(), &batch, "empty log");
    }

    #[test]
    fn mid_stream_features_stay_in_range() {
        let (offline, log) = home(9);
        let mut m = HomeMaintainer::new(&offline);
        for e in &log {
            m.apply(e.clone());
            for node in &m.graph().nodes {
                let d = node.features.len();
                let block = d - RUNTIME_FEATURE_DIMS;
                assert!((0.0..=1.0).contains(&node.features[block + 3]));
                assert!((0.0..=1.0).contains(&node.features[block + 4]));
                assert_eq!(node.features[block + 6], 1.0);
            }
        }
    }

    #[test]
    fn finalize_is_idempotent() {
        let (offline, log) = home(4);
        let mut m = HomeMaintainer::new(&offline);
        for e in &log {
            m.apply(e.clone());
        }
        m.finalize();
        let first = m.graph().clone();
        m.finalize();
        assert_graphs_equal(m.graph(), &first, "second finalize");
    }
}
