//! `fexiot-stream`: the online serving layer — a bounded-mailbox actor
//! runtime that consumes per-home event streams, maintains interaction
//! graphs incrementally, and runs vulnerability detection per event.
//!
//! The batch pipeline (featurize → train → detect) answers "is this graph
//! vulnerable *now*"; the paper's deployment story is a service watching
//! fleets of homes continuously. This crate is that service, built with
//! observability as its spine: every actor edge is a counted bounded
//! mailbox, backpressure feeds the critical-path machinery, latency is a
//! first-class histogram, and the whole pipeline runs on deterministic
//! virtual time so its metrics and outputs are byte-identical across
//! `--threads` widths (see [`service`] for the argument).
//!
//! Module map:
//! * [`mailbox`] — bounded FIFOs with counted block/shed overflow policies;
//! * [`wire`] — the `fexiot-obs-events/v1` JSONL wire protocol for home
//!   events;
//! * [`source`] — the seeded corpus-replay fleet;
//! * [`maintain`] — incremental online-graph fusion (exact parity with
//!   `fuse_online`);
//! * [`service`] — the virtual-time scheduler and instrumented pipeline.
//!
//! Detection is pluggable through [`Detector`] so the crate stays below
//! `fexiot-core` in the dependency graph (the CLI adapts the trained
//! `FexIot` model; tests and benches can use the cheap built-in
//! [`RuntimeDetector`]).

pub mod mailbox;
pub mod maintain;
pub mod service;
pub mod source;
pub mod wire;

pub use mailbox::{Mailbox, Overflow, PushOutcome};
pub use maintain::HomeMaintainer;
pub use service::{
    run_stream, ActorStats, StreamConfig, StreamOutcome, StreamStats, LATENCY_TICK_EDGES,
};
pub use source::{replay_fleet, Fleet, FleetConfig};
pub use wire::{parse_wire, write_wire, HomeEvent};

use fexiot_graph::{detect_vulnerabilities, InteractionGraph, RUNTIME_FEATURE_DIMS};

/// Verdict for one streamed event's graph state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamVerdict {
    pub vulnerable: bool,
    /// Anomaly score in `[0, 1]` (detector-specific scale).
    pub score: f64,
    /// True when the detector considers the sample out-of-distribution.
    pub drifting: bool,
}

/// A per-event detector. Implementations must be pure functions of the
/// graph (no RNG, no shared mutable state) — the width-invariance of the
/// whole pipeline rests on it. `Sync` because detection shards fan out over
/// the thread pool.
pub trait Detector: Sync {
    fn detect(&self, graph: &InteractionGraph) -> StreamVerdict;
}

/// The built-in lightweight detector: flags structural vulnerabilities
/// (rule-semantics analysis) and runtime anomalies read directly off the
/// maintained feature block — low trigger consistency or completion is the
/// signature of fake/stealthy commands and command failures. Deterministic,
/// allocation-light, and independent of any trained model, so the serving
/// machinery can be exercised (and benchmarked) in isolation.
#[derive(Debug, Clone)]
pub struct RuntimeDetector {
    /// Anomaly score at or above which the graph is flagged vulnerable.
    pub threshold: f64,
}

impl Default for RuntimeDetector {
    fn default() -> Self {
        Self { threshold: 0.5 }
    }
}

impl Detector for RuntimeDetector {
    fn detect(&self, graph: &InteractionGraph) -> StreamVerdict {
        let mut score: f64 = 0.0;
        for node in &graph.nodes {
            let dims = node.features.len();
            if dims < RUNTIME_FEATURE_DIMS {
                continue;
            }
            let block = dims - RUNTIME_FEATURE_DIMS;
            let consistency = node.features[block + 3];
            let completion = node.features[block + 4];
            score = score.max(1.0 - consistency).max(1.0 - completion);
        }
        let structural = !detect_vulnerabilities(graph).is_empty();
        StreamVerdict {
            vulnerable: structural || score >= self.threshold,
            score,
            drifting: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_graph::{CorpusConfig, CorpusGenerator, CorpusIndex, FeatureConfig, GraphBuilder};
    use fexiot_tensor::rng::Rng;

    #[test]
    fn runtime_detector_is_pure_and_in_range() {
        let mut rng = Rng::seed_from_u64(3);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::small(), &mut rng);
        let index = CorpusIndex::build(rules);
        let builder = GraphBuilder::new(FeatureConfig::small());
        let graph = builder.sample_graph(&index, 6, &mut rng);
        let det = RuntimeDetector::default();
        let a = det.detect(&graph);
        let b = det.detect(&graph);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a.score));
    }
}
