//! The per-home event wire protocol.
//!
//! Streams of home events travel as `fexiot-obs-events/v1` JSONL — the same
//! schema the registry's live sink emits — so the serving path needs no new
//! transport: a header line, then one `mark` event per home event whose name
//! encodes the payload:
//!
//! ```text
//! stream.ev home=3 t=1742 kind=Light loc=Kitchen active=1 state=on
//! ```
//!
//! `state` comes last because cleaned state words may contain spaces; every
//! other field is a single token. Device kinds and locations round-trip via
//! their stable `Debug` names (looked up against the exhaustive
//! [`DeviceKind::ACTUATORS`]/[`DeviceKind::SENSORS`] and [`Location::ALL`]
//! tables), so a recorded stream replays to the byte on any build.

use fexiot_graph::events::CleanEvent;
use fexiot_graph::{Device, DeviceKind, Location};
use fexiot_obs::stream::{header_line, event_to_line, parse_stream};
use fexiot_obs::{Event, EventRecord};

/// One wire message: a cleaned device event attributed to a home.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeEvent {
    pub home: usize,
    pub event: CleanEvent,
}

/// Prefix of every event mark on the wire.
const MARK_PREFIX: &str = "stream.ev ";

fn kind_by_name(name: &str) -> Option<DeviceKind> {
    DeviceKind::ACTUATORS
        .iter()
        .chain(DeviceKind::SENSORS.iter())
        .copied()
        .find(|k| format!("{k:?}") == name)
}

fn location_by_name(name: &str) -> Option<Location> {
    Location::ALL.iter().copied().find(|l| format!("{l:?}") == name)
}

/// Encodes one home event as the mark name carried on the wire.
pub fn encode_mark(ev: &HomeEvent) -> String {
    format!(
        "{MARK_PREFIX}home={} t={} kind={:?} loc={:?} active={} state={}",
        ev.home,
        ev.event.time,
        ev.event.device.kind,
        ev.event.device.location,
        u8::from(ev.event.active),
        ev.event.state,
    )
}

/// Decodes a mark name back into a [`HomeEvent`]. Returns `None` for marks
/// that are not wire events (streams may interleave other marks).
pub fn decode_mark(name: &str) -> Option<HomeEvent> {
    let rest = name.strip_prefix(MARK_PREFIX)?;
    let mut home = None;
    let mut time = None;
    let mut kind = None;
    let mut loc = None;
    let mut active = None;
    let mut cursor = rest;
    let state = loop {
        let (token, tail) = match cursor.split_once(' ') {
            Some((tok, tail)) => (tok, tail),
            None => (cursor, ""),
        };
        let (key, value) = token.split_once('=')?;
        match key {
            "home" => home = value.parse::<usize>().ok(),
            "t" => time = value.parse::<u64>().ok(),
            "kind" => kind = kind_by_name(value),
            "loc" => loc = location_by_name(value),
            "active" => {
                active = match value {
                    "0" => Some(false),
                    "1" => Some(true),
                    _ => None,
                }
            }
            // `state` is the final field and owns the rest of the line.
            "state" => break format!("{value}{}{tail}", if tail.is_empty() { "" } else { " " }),
            _ => return None,
        }
        if tail.is_empty() {
            return None; // ran out of tokens before `state`
        }
        cursor = tail;
    };
    Some(HomeEvent {
        home: home?,
        event: CleanEvent {
            time: time?,
            device: Device::new(kind?, loc?),
            state,
            active: active?,
        },
    })
}

/// Serializes a full wire stream (header + one mark line per event).
pub fn write_wire(run: &str, events: &[HomeEvent]) -> String {
    let mut out = header_line(run);
    out.push('\n');
    for (i, ev) in events.iter().enumerate() {
        let rec = EventRecord {
            seq: i as u64 + 1,
            event: Event::Mark {
                name: encode_mark(ev),
            },
        };
        // Marks are never timing-suppressed, so the line always exists.
        out.push_str(&event_to_line(&rec, false).expect("marks are never suppressed"));
        out.push('\n');
    }
    out
}

/// Parses a wire stream, returning the run name and the events in order.
/// Non-event lines (other marks, counters) are skipped; a `stream.ev` mark
/// that fails to decode is an error.
pub fn parse_wire(text: &str) -> Result<(String, Vec<HomeEvent>), String> {
    let (run, records) = parse_stream(text)?;
    let mut events = Vec::new();
    for rec in &records {
        if let Event::Mark { name } = &rec.event {
            if name.starts_with(MARK_PREFIX) {
                match decode_mark(name) {
                    Some(ev) => events.push(ev),
                    None => return Err(format!("seq {}: malformed wire event {name:?}", rec.seq)),
                }
            }
        }
    }
    Ok((run, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(home: usize, time: u64, kind: DeviceKind, loc: Location, active: bool) -> HomeEvent {
        let (on, off) = kind.state_words();
        HomeEvent {
            home,
            event: CleanEvent {
                time,
                device: Device::new(kind, loc),
                state: if active { on } else { off }.to_string(),
                active,
            },
        }
    }

    #[test]
    fn mark_round_trips() {
        let ev = sample(3, 1742, DeviceKind::Light, Location::Kitchen, true);
        assert_eq!(decode_mark(&encode_mark(&ev)), Some(ev));
    }

    #[test]
    fn state_with_spaces_round_trips() {
        let mut ev = sample(0, 9, DeviceKind::MotionSensor, Location::Garage, false);
        ev.event.state = "no motion detected".to_string();
        assert_eq!(decode_mark(&encode_mark(&ev)), Some(ev));
    }

    #[test]
    fn every_kind_and_location_round_trips() {
        for kind in DeviceKind::ACTUATORS.iter().chain(DeviceKind::SENSORS.iter()) {
            for loc in Location::ALL {
                let ev = sample(1, 5, *kind, loc, true);
                assert_eq!(decode_mark(&encode_mark(&ev)), Some(ev), "{kind:?}@{loc:?}");
            }
        }
    }

    #[test]
    fn wire_file_round_trips() {
        let events = vec![
            sample(0, 10, DeviceKind::Light, Location::Kitchen, true),
            sample(1, 12, DeviceKind::SmokeDetector, Location::Hallway, false),
            sample(0, 14, DeviceKind::Thermostat, Location::Bedroom, true),
        ];
        let text = write_wire("wire-test", &events);
        let (run, parsed) = parse_wire(&text).expect("parse");
        assert_eq!(run, "wire-test");
        assert_eq!(parsed, events);
    }

    #[test]
    fn foreign_marks_are_skipped_and_bad_events_rejected() {
        let mut text = header_line("x");
        text.push('\n');
        text.push_str(r#"{"seq":1,"ev":"mark","name":"round[0]"}"#);
        text.push('\n');
        let (_, events) = parse_wire(&text).expect("foreign marks skip");
        assert!(events.is_empty());

        text.push_str(r#"{"seq":2,"ev":"mark","name":"stream.ev home=z t=1"}"#);
        text.push('\n');
        assert!(parse_wire(&text).is_err());
    }
}
