//! The streaming detection service: a bounded-mailbox actor pipeline driven
//! by deterministic virtual time.
//!
//! ```text
//!   source ──▶ [ingestor] ──mailbox──▶ [maintainer] ──mailboxes──▶ [shard 0..K]
//!                                       (incremental                (detection,
//!                                        graph fusion)               fexiot-par)
//! ```
//!
//! **Virtual time.** The scheduler is a tick loop; the tick counter *is* the
//! clock. Per tick each actor gets a fixed processing budget (`*_rate`), in
//! a fixed stage order (ingest → maintain → detect). Nothing deterministic
//! reads wall-clock or thread identity: per-event latency is measured in
//! ticks (`detect_tick − ingest_tick`), so the same seed yields
//! byte-identical metrics, SLO verdicts, and detection outputs at any
//! `--threads` width. Wall-clock shows up in exactly one place — the
//! advisory `stream.detect.latency_us` histogram — which carries the `_us`
//! timing suffix and is therefore excluded from every determinism-checked
//! surface.
//!
//! **Backpressure.** Mailboxes are bounded ([`Mailbox`]); a refused push
//! under [`Overflow::Block`] stalls the producer for the rest of the tick
//! and is counted as a backpressure stall attributed to the congested edge.
//! Those per-round attributions feed the existing critical-path machinery
//! (`cause = "backpressure"`, `client` = the dominant shard).
//!
//! **Parallelism.** Only the detection stage fans out, over
//! [`fexiot_par::pool()`]. Each shard drains its own mailbox into its own
//! child [`Registry`]; the parent absorbs the children in shard order after
//! every fan-out, so the merged metric stream is width-invariant — the same
//! discipline the federated trainer uses for its clients.

use std::sync::Arc;

use fexiot_graph::InteractionGraph;
use fexiot_obs::{buckets, CriticalPathEntry, FleetTelemetry, Json, Registry};

use crate::mailbox::{Mailbox, Overflow, PushOutcome};
use crate::wire::HomeEvent;
use crate::{Detector, HomeMaintainer};

/// Virtual-time latency buckets (ticks from ingest to detection).
pub const LATENCY_TICK_EDGES: [f64; 10] =
    [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Configuration of the streaming pipeline.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Detection shards fanned out over the process-global pool.
    pub shards: usize,
    /// Capacity of every mailbox.
    pub mailbox_cap: usize,
    /// What a full mailbox does ([`Overflow::Block`] stalls the producer,
    /// [`Overflow::Shed`] drops the message).
    pub overflow: Overflow,
    /// Events the ingestor pulls from the source per tick.
    pub ingest_rate: usize,
    /// Events the maintainer fuses and routes per tick.
    pub maintain_rate: usize,
    /// Detections per shard per tick.
    pub detect_rate: usize,
    /// Telemetry round length in ingested events.
    pub round_events: usize,
    /// Fault injection: this shard detects only 1 event/tick, creating
    /// backpressure (used by the CI failing-SLO leg).
    pub slow_shard: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            mailbox_cap: 32,
            overflow: Overflow::Block,
            ingest_rate: 8,
            maintain_rate: 8,
            detect_rate: 4,
            round_events: 64,
            slow_shard: None,
        }
    }
}

/// Exact per-actor tallies for the report's `stream` section. `stall_ticks`
/// counts producer stalls attributed to *this actor's* mailbox being full.
#[derive(Debug, Clone)]
pub struct ActorStats {
    pub name: String,
    pub capacity: usize,
    pub policy: &'static str,
    pub enqueued: u64,
    pub dequeued: u64,
    pub shed: u64,
    pub stall_ticks: u64,
    pub max_depth: usize,
}

/// Whole-run summary, embedded as the `stream` section of obs reports.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Events offered by the source (all are eventually consumed).
    pub events: u64,
    /// Events that completed detection (events − sheds).
    pub detected: u64,
    pub vulnerable: u64,
    pub drifting: u64,
    pub shed: u64,
    pub stall_ticks: u64,
    pub rounds: usize,
    pub ticks: u64,
    /// FNV-1a 64 digest over `(seq, vulnerable, drifting, score)` of every
    /// detection in completion order: byte-equal digests ⇔ identical
    /// detection outputs (the width-invariance tests compare this).
    pub digest: u64,
    pub actors: Vec<ActorStats>,
}

impl StreamStats {
    /// JSON for the report's `stream` section (deterministic field order).
    pub fn to_json(&self) -> Json {
        let actor = |a: &ActorStats| {
            Json::Obj(vec![
                ("name".into(), Json::Str(a.name.clone())),
                ("capacity".into(), Json::UInt(a.capacity as u64)),
                ("policy".into(), Json::Str(a.policy.into())),
                ("enqueued".into(), Json::UInt(a.enqueued)),
                ("dequeued".into(), Json::UInt(a.dequeued)),
                ("shed".into(), Json::UInt(a.shed)),
                ("stall_ticks".into(), Json::UInt(a.stall_ticks)),
                ("max_depth".into(), Json::UInt(a.max_depth as u64)),
            ])
        };
        Json::Obj(vec![
            ("events".into(), Json::UInt(self.events)),
            ("detected".into(), Json::UInt(self.detected)),
            ("vulnerable".into(), Json::UInt(self.vulnerable)),
            ("drifting".into(), Json::UInt(self.drifting)),
            ("shed".into(), Json::UInt(self.shed)),
            ("stall_ticks".into(), Json::UInt(self.stall_ticks)),
            ("rounds".into(), Json::UInt(self.rounds as u64)),
            ("ticks".into(), Json::UInt(self.ticks)),
            (
                "detections_digest".into(),
                Json::Str(format!("fnv1a:{:016x}", self.digest)),
            ),
            (
                "actors".into(),
                Json::Arr(self.actors.iter().map(actor).collect()),
            ),
        ])
    }
}

/// Result of a full pipeline run.
#[derive(Debug)]
pub struct StreamOutcome {
    pub stats: StreamStats,
    /// One entry per telemetry round, feeding the existing critical-path
    /// report section and renderer.
    pub critical_path: Vec<CriticalPathEntry>,
}

struct MaintainJob {
    seq: u64,
    ingest_tick: u64,
    ev: HomeEvent,
}

struct DetectJob {
    seq: u64,
    ingest_tick: u64,
    home: usize,
    graph: InteractionGraph,
}

struct Shard {
    reg: Arc<Registry>,
    mailbox: Mailbox<DetectJob>,
    /// Maintainer stalls attributed to this shard's full mailbox.
    stalls: u64,
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Per-round deltas handed to [`close_round`].
struct RoundDelta {
    round: usize,
    ticks: u64,
    events: u64,
    ingest_stalls: u64,
    shard_stalls: Vec<u64>,
    shed: u64,
    maintain_depth: usize,
}

fn close_round(
    reg: &Arc<Registry>,
    telemetry: &mut Option<&mut FleetTelemetry>,
    shards: &[Shard],
    delta: &RoundDelta,
    critical_path: &mut Vec<CriticalPathEntry>,
) {
    // Depth gauges: per actor, plus the fleet-wide maximum.
    reg.gauge_set(
        "stream.actor.mailbox_depth.maintain",
        delta.maintain_depth as f64,
    );
    let mut max_depth = delta.maintain_depth;
    for (i, s) in shards.iter().enumerate() {
        reg.gauge_set(
            &format!("stream.actor.mailbox_depth.shard[{i}]"),
            s.mailbox.depth() as f64,
        );
        max_depth = max_depth.max(s.mailbox.depth());
    }
    reg.gauge_set("stream.actor.mailbox_depth", max_depth as f64);
    reg.gauge_set("stream.ingest.events_per_round", delta.events as f64);
    // p99 virtual-time latency over the run so far (cumulative histogram).
    let snap = reg.metrics_snapshot();
    if let Some(p99) = snap
        .histograms
        .get("stream.detect.latency_ticks")
        .and_then(|h| h.quantile(0.99))
    {
        reg.gauge_set("stream.detect.latency_p99_ticks", p99);
    }

    // Backpressure attribution: which congested edge dominated this round?
    let mut top_shard: Option<usize> = None;
    let mut top = 0u64;
    for (i, &d) in delta.shard_stalls.iter().enumerate() {
        if d > top {
            top = d;
            top_shard = Some(i);
        }
    }
    let backoff: u64 = delta.shard_stalls.iter().sum();
    let cause = if delta.ingest_stalls > 0 && delta.ingest_stalls >= top {
        "maintain".to_string()
    } else if let Some(i) = top_shard {
        format!("shard[{i}]")
    } else {
        "none".to_string()
    };

    if let Some(tel) = telemetry.as_deref_mut() {
        let failing = tel.observe_round(delta.round as u64, &reg.metrics_snapshot());
        reg.mark(&format!("slo_failing[{failing}]"));
    }
    reg.mark(&format!("stream_backpressure[{cause}]"));

    critical_path.push(CriticalPathEntry {
        round: delta.round,
        client: if top > 0 && top >= delta.ingest_stalls {
            top_shard
        } else {
            None
        },
        total_ticks: delta.ticks,
        straggler_ticks: delta.ingest_stalls,
        backoff_ticks: backoff,
        agg_ticks: 0,
        retries: delta.shed,
        cause: if delta.ingest_stalls + backoff > 0 {
            "backpressure"
        } else {
            "idle"
        },
    });
}

/// Runs the full pipeline to completion: every source event is ingested,
/// fused, and (unless shed) detected; the run ends when all mailboxes drain.
///
/// All deterministic metrics go to `reg`; when `telemetry` is attached its
/// specs are sampled at every round boundary and SLO rules evaluated
/// (surfaced as `slo_failing[n]` marks, exactly like the federated trainer).
pub fn run_stream<D: Detector>(
    graphs: &[InteractionGraph],
    events: &[HomeEvent],
    detector: &D,
    cfg: &StreamConfig,
    reg: &Arc<Registry>,
    mut telemetry: Option<&mut FleetTelemetry>,
) -> StreamOutcome {
    assert!(cfg.shards > 0, "need at least one detection shard");
    assert!(
        cfg.ingest_rate > 0 && cfg.maintain_rate > 0 && cfg.detect_rate > 0,
        "per-tick rates must be positive"
    );
    assert!(cfg.round_events > 0, "round_events must be positive");
    for ev in events {
        assert!(ev.home < graphs.len(), "event for unknown home {}", ev.home);
    }

    let _run_span = reg.span("stream.run");
    let mut maintainers: Vec<HomeMaintainer> = graphs.iter().map(HomeMaintainer::new).collect();
    let mut maintain_mb: Mailbox<MaintainJob> =
        Mailbox::new("maintain", cfg.mailbox_cap, cfg.overflow);
    let mut shards: Vec<Shard> = (0..cfg.shards)
        .map(|i| Shard {
            reg: Arc::new(Registry::with_enabled(true)),
            mailbox: Mailbox::new(format!("shard[{i}]"), cfg.mailbox_cap, cfg.overflow),
            stalls: 0,
        })
        .collect();

    let mut tick: u64 = 0;
    let mut seq: u64 = 0;
    let mut next_event = 0usize;
    let mut ingest_hold: Option<MaintainJob> = None;
    let mut route_hold: Option<DetectJob> = None;
    let mut ingest_stalls: u64 = 0;

    // Detection tallies (accumulated from shard results in shard order).
    let mut detected: u64 = 0;
    let mut vulnerable: u64 = 0;
    let mut drifting: u64 = 0;
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis

    // Round bookkeeping: values at the current round's open.
    let mut round = 0usize;
    let mut open_tick: u64 = 0;
    let mut open_ingested: u64 = 0;
    let mut open_ingest_stalls: u64 = 0;
    let mut open_shard_stalls: Vec<u64> = vec![0; cfg.shards];
    let mut open_shed: u64 = 0;
    let mut critical_path: Vec<CriticalPathEntry> = Vec::new();
    reg.mark(&format!("round[{round}]"));

    loop {
        let drained = next_event >= events.len()
            && ingest_hold.is_none()
            && route_hold.is_none()
            && maintain_mb.is_empty()
            && shards.iter().all(|s| s.mailbox.is_empty());
        if drained {
            break;
        }

        // Round boundary: close the current round once its event budget has
        // been ingested. (The drain tail after the source empties stays in
        // the final round, closed after the loop.)
        if seq >= (round as u64 + 1) * cfg.round_events as u64 {
            let total_shed =
                maintain_mb.shed + shards.iter().map(|s| s.mailbox.shed).sum::<u64>();
            let delta = RoundDelta {
                round,
                ticks: tick - open_tick,
                events: seq - open_ingested,
                ingest_stalls: ingest_stalls - open_ingest_stalls,
                shard_stalls: shards
                    .iter()
                    .zip(&open_shard_stalls)
                    .map(|(s, b)| s.stalls - b)
                    .collect(),
                shed: total_shed - open_shed,
                maintain_depth: maintain_mb.depth(),
            };
            close_round(reg, &mut telemetry, &shards, &delta, &mut critical_path);
            round += 1;
            open_tick = tick;
            open_ingested = seq;
            open_ingest_stalls = ingest_stalls;
            for (i, s) in shards.iter().enumerate() {
                open_shard_stalls[i] = s.stalls;
            }
            open_shed = total_shed;
            reg.mark(&format!("round[{round}]"));
        }

        tick += 1;

        // ── Ingest stage ────────────────────────────────────────────────
        let mut ingest_stalled = false;
        for _ in 0..cfg.ingest_rate {
            if ingest_hold.is_none() {
                if next_event >= events.len() {
                    break;
                }
                let ev = events[next_event].clone();
                next_event += 1;
                seq += 1;
                reg.counter_add("stream.ingest.events", 1);
                ingest_hold = Some(MaintainJob {
                    seq,
                    ingest_tick: tick,
                    ev,
                });
            }
            let job = ingest_hold.take().expect("hold populated above");
            match maintain_mb.push(job, reg) {
                PushOutcome::Queued | PushOutcome::Shed => {}
                PushOutcome::Blocked(job) => {
                    ingest_hold = Some(job);
                    ingest_stalled = true;
                    break;
                }
            }
        }
        if ingest_stalled {
            ingest_stalls += 1;
            reg.counter_add("stream.backpressure.stall_ticks", 1);
        }

        // ── Maintain stage ──────────────────────────────────────────────
        // Fuse up to `maintain_rate` events into their home graphs, routing
        // each detection job to its shard (`home % shards`). A blocked route
        // holds the job and stalls the stage: head-of-line blocking, the
        // honest semantics of a single maintainer actor.
        let mut blocked_shard: Option<usize> = None;
        let mut fused = 0usize;
        loop {
            if let Some(job) = route_hold.take() {
                let s = job.home % cfg.shards;
                match shards[s].mailbox.push(job, reg) {
                    PushOutcome::Queued | PushOutcome::Shed => {}
                    PushOutcome::Blocked(job) => {
                        route_hold = Some(job);
                        blocked_shard = Some(s);
                        break;
                    }
                }
            }
            if fused >= cfg.maintain_rate {
                break;
            }
            let Some(mj) = maintain_mb.pop(reg) else { break };
            fused += 1;
            let home = mj.ev.home;
            let maintainer = &mut maintainers[home];
            maintainer.apply(mj.ev.event);
            reg.counter_add("stream.maintain.events", 1);
            route_hold = Some(DetectJob {
                seq: mj.seq,
                ingest_tick: mj.ingest_tick,
                home,
                graph: maintainer.graph().clone(),
            });
        }
        if let Some(s) = blocked_shard {
            shards[s].stalls += 1;
            reg.counter_add("stream.backpressure.stall_ticks", 1);
        }

        // ── Detect stage ────────────────────────────────────────────────
        if shards.iter().any(|s| !s.mailbox.is_empty()) {
            let slow = cfg.slow_shard;
            let rate = cfg.detect_rate;
            let results: Vec<Vec<(u64, bool, bool, u64)>> =
                fexiot_par::pool().map_mut(&mut shards, |i, shard| {
                    let budget = if slow == Some(i) { 1 } else { rate };
                    let mut out = Vec::new();
                    for _ in 0..budget {
                        let Some(job) = shard.mailbox.pop(&shard.reg) else {
                            break;
                        };
                        let t0 = std::time::Instant::now();
                        let verdict = detector.detect(&job.graph);
                        shard.reg.hist_record(
                            "stream.detect.latency_us",
                            buckets::TIME_US,
                            t0.elapsed().as_micros() as f64,
                        );
                        shard.reg.hist_record(
                            "stream.detect.latency_ticks",
                            &LATENCY_TICK_EDGES,
                            (tick - job.ingest_tick) as f64,
                        );
                        shard.reg.counter_add("stream.detect.events", 1);
                        if verdict.vulnerable {
                            shard.reg.counter_add("stream.detect.vulnerable", 1);
                        }
                        if verdict.drifting {
                            shard.reg.counter_add("stream.detect.drifting", 1);
                        }
                        out.push((
                            job.seq,
                            verdict.vulnerable,
                            verdict.drifting,
                            verdict.score.to_bits(),
                        ));
                    }
                    out
                });
            // Gather in shard order: metric absorption and the detection
            // digest see the same sequence at every pool width.
            for shard in &shards {
                reg.absorb(&shard.reg.snapshot());
                shard.reg.reset();
            }
            for items in results {
                for (s, v, d, score_bits) in items {
                    detected += 1;
                    vulnerable += u64::from(v);
                    drifting += u64::from(d);
                    digest = fnv1a(digest, &s.to_le_bytes());
                    digest = fnv1a(digest, &[u8::from(v), u8::from(d)]);
                    digest = fnv1a(digest, &score_bits.to_le_bytes());
                }
            }
        }
    }

    // End of stream: resolve every open completion window so the maintained
    // graphs equal the batch fuser's output, then close the final round.
    for m in &mut maintainers {
        m.finalize();
    }
    let total_shed = maintain_mb.shed + shards.iter().map(|s| s.mailbox.shed).sum::<u64>();
    let delta = RoundDelta {
        round,
        ticks: tick - open_tick,
        events: seq - open_ingested,
        ingest_stalls: ingest_stalls - open_ingest_stalls,
        shard_stalls: shards
            .iter()
            .zip(&open_shard_stalls)
            .map(|(s, b)| s.stalls - b)
            .collect(),
        shed: total_shed - open_shed,
        maintain_depth: maintain_mb.depth(),
    };
    close_round(reg, &mut telemetry, &shards, &delta, &mut critical_path);

    let mut actors = vec![ActorStats {
        name: maintain_mb.name().to_string(),
        capacity: maintain_mb.capacity(),
        policy: maintain_mb.policy().name(),
        enqueued: maintain_mb.enqueued,
        dequeued: maintain_mb.dequeued,
        shed: maintain_mb.shed,
        stall_ticks: ingest_stalls,
        max_depth: maintain_mb.max_depth,
    }];
    for s in &shards {
        actors.push(ActorStats {
            name: s.mailbox.name().to_string(),
            capacity: s.mailbox.capacity(),
            policy: s.mailbox.policy().name(),
            enqueued: s.mailbox.enqueued,
            dequeued: s.mailbox.dequeued,
            shed: s.mailbox.shed,
            stall_ticks: s.stalls,
            max_depth: s.mailbox.max_depth,
        });
    }

    let stats = StreamStats {
        events: events.len() as u64,
        detected,
        vulnerable,
        drifting,
        shed: total_shed,
        stall_ticks: ingest_stalls + shards.iter().map(|s| s.stalls).sum::<u64>(),
        rounds: round + 1,
        ticks: tick,
        digest,
        actors,
    };
    StreamOutcome {
        stats,
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{replay_fleet, FleetConfig};
    use crate::RuntimeDetector;

    fn small_fleet() -> crate::source::Fleet {
        replay_fleet(&FleetConfig {
            homes: 4,
            home_size: 5,
            seed: 11,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn pipeline_detects_every_event_under_block_policy() {
        let fleet = small_fleet();
        let reg = Arc::new(Registry::with_enabled(true));
        let out = run_stream(
            &fleet.graphs,
            &fleet.events,
            &RuntimeDetector::default(),
            &StreamConfig::default(),
            &reg,
            None,
        );
        assert_eq!(out.stats.events, fleet.events.len() as u64);
        // Block never drops: every event reaches detection.
        assert_eq!(out.stats.shed, 0);
        assert_eq!(out.stats.detected, out.stats.events);
        assert!(out.stats.ticks > 0);
        assert_eq!(out.critical_path.len(), out.stats.rounds);
        let snap = reg.metrics_snapshot();
        assert_eq!(
            snap.counters.get("stream.detect.events").copied(),
            Some(out.stats.detected)
        );
        assert_eq!(
            snap.counters.get("stream.ingest.events").copied(),
            Some(out.stats.events)
        );
        assert!(snap.histograms.contains_key("stream.detect.latency_ticks"));
    }

    #[test]
    fn same_seed_same_digest_and_metrics() {
        let fleet = small_fleet();
        let run = || {
            let reg = Arc::new(Registry::with_enabled(true));
            let out = run_stream(
                &fleet.graphs,
                &fleet.events,
                &RuntimeDetector::default(),
                &StreamConfig::default(),
                &reg,
                None,
            );
            let snap = reg.metrics_snapshot();
            (out.stats.digest, snap.counters, snap.gauges)
        };
        let (d1, c1, mut g1) = run();
        let (d2, c2, mut g2) = run();
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
        // Wall-clock gauges are the documented exception.
        g1.retain(|k, _| !fexiot_obs::is_timing_name(k));
        g2.retain(|k, _| !fexiot_obs::is_timing_name(k));
        assert_eq!(g1, g2);
    }

    #[test]
    fn shed_policy_drops_under_overload_and_counts_exactly() {
        let fleet = small_fleet();
        let reg = Arc::new(Registry::with_enabled(true));
        let cfg = StreamConfig {
            overflow: Overflow::Shed,
            mailbox_cap: 2,
            ingest_rate: 16,
            maintain_rate: 16,
            detect_rate: 1,
            ..StreamConfig::default()
        };
        let out = run_stream(
            &fleet.graphs,
            &fleet.events,
            &RuntimeDetector::default(),
            &cfg,
            &reg,
            None,
        );
        assert!(out.stats.shed > 0, "overload must shed");
        assert_eq!(out.stats.detected + out.stats.shed, out.stats.events);
        let snap = reg.metrics_snapshot();
        assert_eq!(
            snap.counters.get("stream.mailbox.shed").copied(),
            Some(out.stats.shed)
        );
        // Shed never stalls: the pipeline keeps pace with the source.
        assert_eq!(out.stats.stall_ticks, 0);
    }

    #[test]
    fn slow_shard_creates_attributed_backpressure() {
        // A longer simulation so the slow shard's queue actually saturates.
        let mut fc = FleetConfig {
            homes: 4,
            home_size: 5,
            seed: 11,
            ..FleetConfig::default()
        };
        fc.sim.duration *= 4;
        let fleet = replay_fleet(&fc);
        let reg = Arc::new(Registry::with_enabled(true));
        let cfg = StreamConfig {
            shards: 2,
            slow_shard: Some(1),
            mailbox_cap: 8,
            ..StreamConfig::default()
        };
        let out = run_stream(
            &fleet.graphs,
            &fleet.events,
            &RuntimeDetector::default(),
            &cfg,
            &reg,
            None,
        );
        assert!(out.stats.stall_ticks > 0, "slow shard must stall the pipeline");
        let bp: Vec<_> = out
            .critical_path
            .iter()
            .filter(|e| e.cause == "backpressure")
            .collect();
        assert!(!bp.is_empty());
        // Block policy still loses nothing.
        assert_eq!(out.stats.shed, 0);
        assert_eq!(out.stats.detected, out.stats.events);
    }

    #[test]
    fn empty_source_still_produces_one_round() {
        let fleet = small_fleet();
        let reg = Arc::new(Registry::with_enabled(true));
        let out = run_stream(
            &fleet.graphs,
            &[],
            &RuntimeDetector::default(),
            &StreamConfig::default(),
            &reg,
            None,
        );
        assert_eq!(out.stats.events, 0);
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(out.critical_path.len(), 1);
        assert_eq!(out.critical_path[0].cause, "idle");
    }

    #[test]
    fn stream_section_json_is_structurally_sound() {
        let fleet = small_fleet();
        let reg = Arc::new(Registry::with_enabled(true));
        let out = run_stream(
            &fleet.graphs,
            &fleet.events,
            &RuntimeDetector::default(),
            &StreamConfig::default(),
            &reg,
            None,
        );
        let json = out.stats.to_json();
        assert!(json.get("events").is_some());
        let actors = match json.get("actors") {
            Some(Json::Arr(a)) => a,
            other => panic!("actors must be an array, got {other:?}"),
        };
        assert_eq!(actors.len(), 1 + StreamConfig::default().shards);
        let digest = json.get("detections_digest").and_then(|j| j.as_str());
        assert!(digest.is_some_and(|d| d.starts_with("fnv1a:")));
    }
}
