//! Bounded actor mailboxes with an explicit overflow policy.
//!
//! Every edge in the streaming actor graph is a [`Mailbox`]: a FIFO with a
//! hard capacity and one of two overflow behaviours, both *counted* so the
//! observability layer can tell exactly what happened under load:
//!
//! * [`Overflow::Block`] — a push into a full mailbox is refused and the
//!   producer must hold the message and retry next tick. The refusal is a
//!   backpressure *stall* attributed to the producer.
//! * [`Overflow::Shed`] — a push into a full mailbox consumes the message
//!   and drops it, incrementing the shed counter. The producer keeps going.
//!
//! Mailboxes keep their own exact tallies (surfaced in the report's
//! `stream` section) and additionally fire the aggregate
//! `stream.mailbox.enqueued` / `dequeued` / `shed` counters on the registry
//! passed to each operation, so live streams and watch views see the same
//! numbers.

use std::collections::VecDeque;
use std::sync::Arc;

use fexiot_obs::Registry;

/// What a full mailbox does with the next message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overflow {
    /// Refuse the push; the producer stalls and retries.
    Block,
    /// Accept and drop the message, counting it as shed.
    Shed,
}

impl Overflow {
    /// Stable lowercase name used in CLI flags and report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Overflow::Block => "block",
            Overflow::Shed => "shed",
        }
    }

    /// Parses a CLI-flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "block" => Some(Overflow::Block),
            "shed" => Some(Overflow::Shed),
            _ => None,
        }
    }
}

/// Result of a push attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome<T> {
    /// Message enqueued.
    Queued,
    /// Mailbox full under [`Overflow::Shed`]: message consumed and dropped.
    Shed,
    /// Mailbox full under [`Overflow::Block`]: message returned to the
    /// producer, which must stall.
    Blocked(T),
}

/// A bounded FIFO mailbox feeding one actor.
#[derive(Debug)]
pub struct Mailbox<T> {
    name: String,
    capacity: usize,
    policy: Overflow,
    queue: VecDeque<T>,
    /// Exact per-mailbox tallies (monotonic over the run).
    pub enqueued: u64,
    pub dequeued: u64,
    pub shed: u64,
    /// Highest depth ever observed right after a push.
    pub max_depth: usize,
}

impl<T> Mailbox<T> {
    pub fn new(name: impl Into<String>, capacity: usize, policy: Overflow) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Self {
            name: name.into(),
            capacity,
            policy,
            queue: VecDeque::with_capacity(capacity),
            enqueued: 0,
            dequeued: 0,
            shed: 0,
            max_depth: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn policy(&self) -> Overflow {
        self.policy
    }

    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Attempts to enqueue `msg`, applying the overflow policy at exactly
    /// `capacity` messages. Fires the aggregate mailbox counters on `reg`.
    pub fn push(&mut self, msg: T, reg: &Arc<Registry>) -> PushOutcome<T> {
        if self.queue.len() >= self.capacity {
            return match self.policy {
                Overflow::Block => PushOutcome::Blocked(msg),
                Overflow::Shed => {
                    self.shed += 1;
                    reg.counter_add("stream.mailbox.shed", 1);
                    PushOutcome::Shed
                }
            };
        }
        self.queue.push_back(msg);
        self.enqueued += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
        reg.counter_add("stream.mailbox.enqueued", 1);
        PushOutcome::Queued
    }

    /// Dequeues the oldest message. The dequeue counter is fired on `reg`,
    /// which for detection shards is the shard's child registry (absorbed in
    /// deterministic shard order each tick).
    pub fn pop(&mut self, reg: &Arc<Registry>) -> Option<T> {
        let msg = self.queue.pop_front()?;
        self.dequeued += 1;
        reg.counter_add("stream.mailbox.dequeued", 1);
        Some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Arc<Registry> {
        Arc::new(Registry::with_enabled(true))
    }

    #[test]
    fn block_policy_refuses_exactly_at_capacity() {
        let reg = reg();
        let mut mb = Mailbox::new("m", 2, Overflow::Block);
        assert_eq!(mb.push(1, &reg), PushOutcome::Queued);
        assert_eq!(mb.push(2, &reg), PushOutcome::Queued);
        // Boundary: the capacity-th message is the last accepted one.
        assert_eq!(mb.push(3, &reg), PushOutcome::Blocked(3));
        assert_eq!(mb.depth(), 2);
        assert_eq!(mb.shed, 0);
        // Draining one slot makes the next push succeed again.
        assert_eq!(mb.pop(&reg), Some(1));
        assert_eq!(mb.push(3, &reg), PushOutcome::Queued);
        assert_eq!(mb.enqueued, 3);
        assert_eq!(mb.dequeued, 1);
    }

    #[test]
    fn shed_policy_drops_and_counts_exactly() {
        let reg = reg();
        let mut mb = Mailbox::new("m", 2, Overflow::Shed);
        assert_eq!(mb.push(1, &reg), PushOutcome::Queued);
        assert_eq!(mb.push(2, &reg), PushOutcome::Queued);
        for i in 3..10 {
            assert_eq!(mb.push(i, &reg), PushOutcome::Shed);
        }
        // Exactness: every overflowed message counted once, none queued.
        assert_eq!(mb.shed, 7);
        assert_eq!(mb.depth(), 2);
        assert_eq!(mb.enqueued, 2);
        let snap = reg.metrics_snapshot();
        assert_eq!(snap.counters.get("stream.mailbox.shed"), Some(&7));
        assert_eq!(snap.counters.get("stream.mailbox.enqueued"), Some(&2));
    }

    #[test]
    fn fifo_order_is_preserved() {
        let reg = reg();
        let mut mb = Mailbox::new("m", 8, Overflow::Block);
        for i in 0..5 {
            mb.push(i, &reg);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| mb.pop(&reg)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let reg = reg();
        let mut mb = Mailbox::new("m", 8, Overflow::Block);
        mb.push(1, &reg);
        mb.push(2, &reg);
        mb.pop(&reg);
        mb.pop(&reg);
        mb.push(3, &reg);
        assert_eq!(mb.max_depth, 2);
    }
}
