//! Width-invariance lock for the streaming pipeline: the same seed must
//! yield **byte-identical** deterministic obs reports, time-series, SLO
//! verdicts, critical-path attribution, and detection digests at 1, 2, and
//! 7 threads. Only the detection stage fans out (over the process-global
//! pool), and its shards gather in shard order, so this holds by
//! construction — these tests lock it the way `par_determinism.rs` locks
//! the batch stages. The global pool width is sequenced inside each test,
//! which is safe precisely because of the property under test.

use std::sync::Arc;

use fexiot_obs::{deterministic_json, FleetTelemetry, Registry, SampleSpec, SloEngine, TimeSeriesStore};
use fexiot_stream::{replay_fleet, run_stream, FleetConfig, RuntimeDetector, StreamConfig};
use proptest::prelude::*;

const WIDTHS: [usize; 3] = [1, 2, 7];

const STREAM_SLO: &str = r#"
[[rule]]
name = "detect-latency-p99"
metric = "stream.detect.latency_ticks.p99"
agg = "max"
op = "<="
threshold = 8

[[rule]]
name = "zero-sheds"
metric = "stream.mailbox.shed"
agg = "max"
op = "<="
threshold = 0
"#;

/// Everything a run exports that must be byte-identical across widths.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    report: String,
    stream_section: String,
    timeseries: String,
    slo: String,
    critical_path: Vec<fexiot_obs::CriticalPathEntry>,
    digest: u64,
}

fn serve_telemetry() -> FleetTelemetry {
    let mut store = TimeSeriesStore::new(256);
    for spec in [
        SampleSpec::HistQuantile {
            name: "stream.detect.latency_ticks".into(),
            q: 0.99,
        },
        SampleSpec::CounterDelta("stream.mailbox.shed".into()),
        SampleSpec::Gauge("stream.ingest.events_per_round".into()),
    ] {
        store.add_spec(spec).expect("stream specs are deterministic");
    }
    FleetTelemetry::new(store, Some(SloEngine::parse(STREAM_SLO).expect("rules parse")))
}

fn run_at_width(fleet: &fexiot_stream::Fleet, cfg: &StreamConfig, width: usize) -> RunFingerprint {
    fexiot_par::set_threads(width);
    let reg = Arc::new(Registry::with_enabled(true));
    let mut tel = serve_telemetry();
    let out = run_stream(
        &fleet.graphs,
        &fleet.events,
        &RuntimeDetector::default(),
        cfg,
        &reg,
        Some(&mut tel),
    );
    RunFingerprint {
        report: deterministic_json(&reg.snapshot(), "width-lock"),
        stream_section: out.stats.to_json().to_string(),
        timeseries: tel.store.to_json().to_string(),
        slo: tel.slo.as_ref().expect("engine attached").to_json().to_string(),
        critical_path: out.critical_path,
        digest: out.stats.digest,
    }
}

#[test]
fn streaming_exports_are_width_invariant() {
    let saved = fexiot_par::pool().threads();
    let fleet = replay_fleet(&FleetConfig {
        homes: 5,
        home_size: 5,
        seed: 23,
        ..FleetConfig::default()
    });
    let cfg = StreamConfig {
        round_events: 24,
        ..StreamConfig::default()
    };
    let reference = run_at_width(&fleet, &cfg, 1);
    assert!(!reference.critical_path.is_empty());
    for width in WIDTHS {
        let got = run_at_width(&fleet, &cfg, width);
        assert_eq!(
            got.digest, reference.digest,
            "detection outputs diverged at width {width}"
        );
        assert_eq!(got, reference, "streaming exports diverged at width {width}");
    }
    fexiot_par::set_threads(saved);
}

#[test]
fn slow_shard_backpressure_fails_the_slo_and_names_the_shard() {
    // Integration of the whole telemetry chain: an injected slow shard
    // stalls the maintainer, the stalls land in the per-round critical
    // path as backpressure attributed to that shard, the p99 virtual-time
    // latency blows through the SLO threshold, and the verdict fails.
    let saved = fexiot_par::pool().threads();
    fexiot_par::set_threads(2);
    let mut fc = FleetConfig {
        homes: 4,
        home_size: 5,
        seed: 11,
        ..FleetConfig::default()
    };
    fc.sim.duration *= 4;
    let fleet = replay_fleet(&fc);
    let reg = Arc::new(Registry::with_enabled(true));
    let mut tel = serve_telemetry();
    let cfg = StreamConfig {
        shards: 2,
        slow_shard: Some(1),
        mailbox_cap: 8,
        ..StreamConfig::default()
    };
    let out = run_stream(
        &fleet.graphs,
        &fleet.events,
        &RuntimeDetector::default(),
        &cfg,
        &reg,
        Some(&mut tel),
    );
    assert!(out.stats.stall_ticks > 0);
    assert!(tel.slo_failed(), "p99 latency SLO must trip under backpressure");
    let attributed = out
        .critical_path
        .iter()
        .find(|e| e.cause == "backpressure" && e.client == Some(1))
        .expect("a round attributes its backpressure to the slow shard");
    assert!(attributed.backoff_ticks > 0);
    // The stall counter the critical path is built from is also on the
    // registry, so the report and the attribution can't drift apart.
    let snap = reg.metrics_snapshot();
    assert_eq!(
        snap.counters.get("stream.backpressure.stall_ticks").copied(),
        Some(out.stats.stall_ticks)
    );
    fexiot_par::set_threads(saved);
}

// Seeds beyond the hand-picked ones: widths 1 and 7 agree on the full
// deterministic export for arbitrary fleets and overflow policies.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn arbitrary_seeds_are_width_invariant(
        seed in 0u64..1_000,
        homes in 2usize..5,
        shed in 0u8..2,
    ) {
        let saved = fexiot_par::pool().threads();
        let fleet = replay_fleet(&FleetConfig {
            homes,
            home_size: 4,
            seed,
            ..FleetConfig::default()
        });
        let cfg = StreamConfig {
            overflow: if shed == 1 {
                fexiot_stream::Overflow::Shed
            } else {
                fexiot_stream::Overflow::Block
            },
            mailbox_cap: 4,
            round_events: 16,
            ..StreamConfig::default()
        };
        let a = run_at_width(&fleet, &cfg, 1);
        let b = run_at_width(&fleet, &cfg, 7);
        fexiot_par::set_threads(saved);
        prop_assert_eq!(a, b);
    }
}
