//! Smart-home device and physical-channel semantics.
//!
//! This is the ground-truth world model behind the synthetic corpora: which
//! devices exist, which physical channels their actuation influences (a heater
//! raises temperature; a water valve raises water flow), and which channels
//! their sensors observe. The interaction-graph builder uses these semantics
//! to decide which rule pairs genuinely compose "action-trigger" correlations,
//! which is exactly the ground truth the paper's volunteers labelled by hand.

/// A physical channel in the home environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Channel {
    Temperature,
    Humidity,
    Smoke,
    Co,
    Motion,
    Illuminance,
    Sound,
    Water,
    Power,
}

impl Channel {
    pub const ALL: [Channel; 9] = [
        Channel::Temperature,
        Channel::Humidity,
        Channel::Smoke,
        Channel::Co,
        Channel::Motion,
        Channel::Illuminance,
        Channel::Sound,
        Channel::Water,
        Channel::Power,
    ];

    /// The lexicon word naming this channel.
    pub fn word(self) -> &'static str {
        match self {
            Channel::Temperature => "temperature",
            Channel::Humidity => "humidity",
            Channel::Smoke => "smoke",
            Channel::Co => "co",
            Channel::Motion => "motion",
            Channel::Illuminance => "brightness",
            Channel::Sound => "sound",
            Channel::Water => "water",
            Channel::Power => "power",
        }
    }
}

/// Rooms / areas used for device placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Location {
    Kitchen,
    Bedroom,
    Bathroom,
    LivingRoom,
    Hallway,
    Garage,
    Garden,
    Basement,
}

impl Location {
    pub const ALL: [Location; 8] = [
        Location::Kitchen,
        Location::Bedroom,
        Location::Bathroom,
        Location::LivingRoom,
        Location::Hallway,
        Location::Garage,
        Location::Garden,
        Location::Basement,
    ];

    pub fn word(self) -> &'static str {
        match self {
            Location::Kitchen => "kitchen",
            Location::Bedroom => "bedroom",
            Location::Bathroom => "bathroom",
            Location::LivingRoom => "living room",
            Location::Hallway => "hallway",
            Location::Garage => "garage",
            Location::Garden => "garden",
            Location::Basement => "basement",
        }
    }
}

/// Every device kind in the simulated catalog, actuators and sensors alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceKind {
    // Actuators.
    Light,
    Plug,
    Camera,
    Door,
    Lock,
    Window,
    Blind,
    Thermostat,
    Heater,
    AirConditioner,
    Fan,
    Humidifier,
    Dehumidifier,
    WaterValve,
    Sprinkler,
    Alarm,
    Speaker,
    Tv,
    Oven,
    CoffeeMaker,
    Washer,
    Dryer,
    Vacuum,
    GarageDoor,
    // Sensors.
    MotionSensor,
    ContactSensor,
    SmokeDetector,
    CoDetector,
    LeakSensor,
    PresenceSensor,
    Button,
    Doorbell,
    TemperatureSensor,
    HumiditySensor,
    IlluminanceSensor,
    SoundSensor,
    PowerMeter,
}

impl DeviceKind {
    pub const ACTUATORS: [DeviceKind; 24] = [
        DeviceKind::Light,
        DeviceKind::Plug,
        DeviceKind::Camera,
        DeviceKind::Door,
        DeviceKind::Lock,
        DeviceKind::Window,
        DeviceKind::Blind,
        DeviceKind::Thermostat,
        DeviceKind::Heater,
        DeviceKind::AirConditioner,
        DeviceKind::Fan,
        DeviceKind::Humidifier,
        DeviceKind::Dehumidifier,
        DeviceKind::WaterValve,
        DeviceKind::Sprinkler,
        DeviceKind::Alarm,
        DeviceKind::Speaker,
        DeviceKind::Tv,
        DeviceKind::Oven,
        DeviceKind::CoffeeMaker,
        DeviceKind::Washer,
        DeviceKind::Dryer,
        DeviceKind::Vacuum,
        DeviceKind::GarageDoor,
    ];

    pub const SENSORS: [DeviceKind; 13] = [
        DeviceKind::MotionSensor,
        DeviceKind::ContactSensor,
        DeviceKind::SmokeDetector,
        DeviceKind::CoDetector,
        DeviceKind::LeakSensor,
        DeviceKind::PresenceSensor,
        DeviceKind::Button,
        DeviceKind::Doorbell,
        DeviceKind::TemperatureSensor,
        DeviceKind::HumiditySensor,
        DeviceKind::IlluminanceSensor,
        DeviceKind::SoundSensor,
        DeviceKind::PowerMeter,
    ];

    /// The dedicated sensor kind observing a channel.
    pub fn sensor_for_channel(channel: Channel) -> DeviceKind {
        match channel {
            Channel::Temperature => DeviceKind::TemperatureSensor,
            Channel::Humidity => DeviceKind::HumiditySensor,
            Channel::Smoke => DeviceKind::SmokeDetector,
            Channel::Co => DeviceKind::CoDetector,
            Channel::Motion => DeviceKind::MotionSensor,
            Channel::Illuminance => DeviceKind::IlluminanceSensor,
            Channel::Sound => DeviceKind::SoundSensor,
            Channel::Water => DeviceKind::LeakSensor,
            Channel::Power => DeviceKind::PowerMeter,
        }
    }

    /// True for sensing devices (they trigger rules but take no commands).
    pub fn is_sensor(self) -> bool {
        DeviceKind::SENSORS.contains(&self)
    }

    /// The lexicon word naming this device.
    pub fn word(self) -> &'static str {
        match self {
            DeviceKind::Light => "light",
            DeviceKind::Plug => "plug",
            DeviceKind::Camera => "camera",
            DeviceKind::Door => "door",
            DeviceKind::Lock => "lock",
            DeviceKind::Window => "window",
            DeviceKind::Blind => "blind",
            DeviceKind::Thermostat => "thermostat",
            DeviceKind::Heater => "heater",
            DeviceKind::AirConditioner => "air conditioner",
            DeviceKind::Fan => "fan",
            DeviceKind::Humidifier => "humidifier",
            DeviceKind::Dehumidifier => "dehumidifier",
            DeviceKind::WaterValve => "water valve",
            DeviceKind::Sprinkler => "sprinkler",
            DeviceKind::Alarm => "alarm",
            DeviceKind::Speaker => "speaker",
            DeviceKind::Tv => "tv",
            DeviceKind::Oven => "oven",
            DeviceKind::CoffeeMaker => "coffee maker",
            DeviceKind::Washer => "washer",
            DeviceKind::Dryer => "dryer",
            DeviceKind::Vacuum => "vacuum",
            DeviceKind::GarageDoor => "garage door",
            DeviceKind::MotionSensor => "motion sensor",
            DeviceKind::ContactSensor => "contact sensor",
            DeviceKind::SmokeDetector => "smoke detector",
            DeviceKind::CoDetector => "co detector",
            DeviceKind::LeakSensor => "water leak sensor",
            DeviceKind::PresenceSensor => "presence sensor",
            DeviceKind::Button => "button",
            DeviceKind::Doorbell => "doorbell",
            DeviceKind::TemperatureSensor => "temperature sensor",
            DeviceKind::HumiditySensor => "humidity sensor",
            DeviceKind::IlluminanceSensor => "illuminance sensor",
            DeviceKind::SoundSensor => "sound sensor",
            DeviceKind::PowerMeter => "power meter",
        }
    }

    /// Physical channels this device influences when activated, with the
    /// direction of the effect (+1 raises the channel level, -1 lowers it).
    /// Deactivation reverses the sign for sustained effects.
    pub fn channel_effects(self, activate: bool) -> Vec<(Channel, i8)> {
        let sign = |d: i8| if activate { d } else { -d };
        match self {
            DeviceKind::Light => vec![(Channel::Illuminance, sign(1)), (Channel::Power, sign(1))],
            DeviceKind::Plug => vec![(Channel::Power, sign(1))],
            DeviceKind::Blind => vec![(Channel::Illuminance, sign(-1))],
            DeviceKind::Window => vec![
                (Channel::Temperature, sign(-1)),
                (Channel::Humidity, sign(-1)),
            ],
            DeviceKind::Thermostat | DeviceKind::Heater => {
                vec![(Channel::Temperature, sign(1)), (Channel::Power, sign(1))]
            }
            DeviceKind::AirConditioner => {
                vec![
                    (Channel::Temperature, sign(-1)),
                    (Channel::Humidity, sign(-1)),
                    (Channel::Power, sign(1)),
                ]
            }
            DeviceKind::Fan => vec![
                (Channel::Temperature, sign(-1)),
                (Channel::Humidity, sign(-1)),
            ],
            DeviceKind::Humidifier => vec![(Channel::Humidity, sign(1))],
            DeviceKind::Dehumidifier => vec![(Channel::Humidity, sign(-1))],
            DeviceKind::WaterValve | DeviceKind::Sprinkler => vec![(Channel::Water, sign(1))],
            DeviceKind::Alarm | DeviceKind::Speaker | DeviceKind::Doorbell => {
                vec![(Channel::Sound, sign(1))]
            }
            DeviceKind::Tv => vec![(Channel::Sound, sign(1)), (Channel::Power, sign(1))],
            DeviceKind::Oven => vec![(Channel::Temperature, sign(1)), (Channel::Power, sign(1))],
            DeviceKind::Dryer => vec![(Channel::Temperature, sign(1)), (Channel::Power, sign(1))],
            DeviceKind::Washer => vec![(Channel::Water, sign(1)), (Channel::Power, sign(1))],
            DeviceKind::Vacuum => vec![(Channel::Sound, sign(1)), (Channel::Power, sign(1))],
            DeviceKind::CoffeeMaker => vec![(Channel::Power, sign(1))],
            _ => Vec::new(),
        }
    }

    /// The channel a sensor observes, if this is a sensor.
    pub fn sense_channel(self) -> Option<Channel> {
        match self {
            DeviceKind::MotionSensor | DeviceKind::PresenceSensor => Some(Channel::Motion),
            DeviceKind::SmokeDetector => Some(Channel::Smoke),
            DeviceKind::CoDetector => Some(Channel::Co),
            DeviceKind::LeakSensor => Some(Channel::Water),
            DeviceKind::TemperatureSensor => Some(Channel::Temperature),
            DeviceKind::HumiditySensor => Some(Channel::Humidity),
            DeviceKind::IlluminanceSensor => Some(Channel::Illuminance),
            DeviceKind::SoundSensor => Some(Channel::Sound),
            DeviceKind::PowerMeter => Some(Channel::Power),
            _ => None,
        }
    }

    /// Whether readings from this sensor are numeric in raw event logs
    /// (temperature-style) rather than binary (motion-style). Used by the
    /// log cleaner's Jenks discretization.
    pub fn numeric_readings(self) -> bool {
        matches!(
            self,
            DeviceKind::LeakSensor
                | DeviceKind::TemperatureSensor
                | DeviceKind::HumiditySensor
                | DeviceKind::IlluminanceSensor
                | DeviceKind::PowerMeter
        )
    }

    /// Verb pair used to phrase activation/deactivation of this device in
    /// rule descriptions ("open"/"close" for valves, "lock"/"unlock" for locks).
    pub fn verbs(self) -> (&'static str, &'static str) {
        match self {
            DeviceKind::Door | DeviceKind::Window | DeviceKind::GarageDoor | DeviceKind::Blind => {
                ("open", "close")
            }
            DeviceKind::Lock => ("unlock", "lock"),
            DeviceKind::WaterValve => ("open", "close"),
            DeviceKind::Washer
            | DeviceKind::Dryer
            | DeviceKind::Vacuum
            | DeviceKind::Sprinkler
            | DeviceKind::CoffeeMaker => ("start", "stop"),
            DeviceKind::Alarm => ("activate", "deactivate"),
            _ => ("turn on", "turn off"),
        }
    }

    /// State words reported by event logs for the two activation states.
    pub fn state_words(self) -> (&'static str, &'static str) {
        match self {
            DeviceKind::Door
            | DeviceKind::Window
            | DeviceKind::GarageDoor
            | DeviceKind::Blind
            | DeviceKind::WaterValve
            | DeviceKind::ContactSensor => ("open", "closed"),
            DeviceKind::Lock => ("unlocked", "locked"),
            DeviceKind::MotionSensor | DeviceKind::PresenceSensor | DeviceKind::SoundSensor => {
                ("active", "inactive")
            }
            DeviceKind::SmokeDetector | DeviceKind::CoDetector => ("detected", "clear"),
            DeviceKind::LeakSensor => ("wet", "dry"),
            DeviceKind::TemperatureSensor
            | DeviceKind::HumiditySensor
            | DeviceKind::IlluminanceSensor
            | DeviceKind::PowerMeter => ("high", "low"),
            _ => ("on", "off"),
        }
    }
}

/// A concrete device instance: kind + placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Device {
    pub kind: DeviceKind,
    pub location: Location,
}

impl Device {
    pub fn new(kind: DeviceKind, location: Location) -> Self {
        Self { kind, location }
    }

    /// Human-readable name, e.g. "kitchen water valve".
    pub fn name(&self) -> String {
        format!("{} {}", self.location.word(), self.kind.word())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensors_and_actuators_partition() {
        for k in DeviceKind::ACTUATORS {
            assert!(!k.is_sensor(), "{k:?}");
        }
        for k in DeviceKind::SENSORS {
            assert!(k.is_sensor(), "{k:?}");
        }
    }

    #[test]
    fn heater_raises_temperature() {
        let fx = DeviceKind::Heater.channel_effects(true);
        assert!(fx.contains(&(Channel::Temperature, 1)));
        let fx_off = DeviceKind::Heater.channel_effects(false);
        assert!(fx_off.contains(&(Channel::Temperature, -1)));
    }

    #[test]
    fn ac_lowers_temperature_but_draws_power() {
        let fx = DeviceKind::AirConditioner.channel_effects(true);
        assert!(fx.contains(&(Channel::Temperature, -1)));
        assert!(fx.contains(&(Channel::Power, 1)));
    }

    #[test]
    fn sensors_have_sense_channels() {
        assert_eq!(
            DeviceKind::SmokeDetector.sense_channel(),
            Some(Channel::Smoke)
        );
        assert_eq!(DeviceKind::LeakSensor.sense_channel(), Some(Channel::Water));
        assert_eq!(DeviceKind::Button.sense_channel(), None);
        assert_eq!(DeviceKind::Light.sense_channel(), None);
    }

    #[test]
    fn verbs_match_device_semantics() {
        assert_eq!(DeviceKind::Lock.verbs(), ("unlock", "lock"));
        assert_eq!(DeviceKind::WaterValve.verbs(), ("open", "close"));
        assert_eq!(DeviceKind::Light.verbs(), ("turn on", "turn off"));
    }

    #[test]
    fn device_name_includes_location() {
        let d = Device::new(DeviceKind::WaterValve, Location::Kitchen);
        assert_eq!(d.name(), "kitchen water valve");
    }
}
