//! # fexiot-graph
//!
//! Interaction-graph substrate for the FexIoT reproduction: the structured
//! smart-home world model (devices, physical channels, automation rules),
//! synthetic rule corpora for the five platforms, interaction-graph
//! construction with ground-truth "action-trigger" correlations, the six
//! iRuler vulnerability classes (detectors + injectors), a discrete-event
//! home simulator producing raw event logs, the log cleaner, the five
//! HAWatcher attacks, online-graph fusion, and federated dataset splitting.

pub mod attacks;
pub mod builder;
pub mod corpus;
pub mod dataset;
pub mod device;
pub mod events;
pub mod graph;
pub mod online;
pub mod rule;
pub mod serialize;
pub mod vuln;

pub use builder::{CorpusIndex, FeatureConfig, GraphBuilder, RUNTIME_FEATURE_DIMS};
pub use corpus::{CorpusConfig, CorpusGenerator};
pub use dataset::{generate_dataset, DatasetConfig, GraphDataset};
pub use device::{Channel, Device, DeviceKind, Location};
pub use graph::{GraphLabel, InteractionGraph, RuleNode};
pub use rule::{Command, Platform, Rule, Trigger};
pub use vuln::{detect_vulnerabilities, VulnKind};
