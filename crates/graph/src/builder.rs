//! Offline interaction-graph construction (paper §III-A3).
//!
//! Rules from a corpus are chained along ground-truth "action-trigger"
//! correlations into connected interaction graphs of 2–50 nodes, then labeled
//! by the structural vulnerability detector. Node features are the
//! platform-appropriate text embeddings plus a 4-dim runtime block (device
//! status / time-of-day phase / online flag) that stays zero for offline
//! graphs and is filled in by the online fusion step.

use crate::corpus::CorpusGenerator;
use crate::graph::{GraphLabel, InteractionGraph, RuleNode};
use crate::rule::{Platform, Rule};
use crate::vuln::{detect_vulnerabilities, VulnInjector, VulnKind};
use fexiot_nlp::{parse_rule, Lexicon, SentenceEncoder, WordEmbedder};
use fexiot_tensor::rng::Rng;

/// Number of runtime feature dims appended after the text embedding:
/// `[status, sin(t), cos(t), trigger_consistency, trigger_completion,
///   event_rate, online_flag]`.
pub const RUNTIME_FEATURE_DIMS: usize = 7;

/// Embedding dimensionalities used for node features.
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    pub word_dim: usize,
    pub sentence_dim: usize,
}

impl FeatureConfig {
    /// Paper-fidelity dims: spaCy 300-d words, USE 512-d sentences.
    pub fn paper() -> Self {
        Self {
            word_dim: 300,
            sentence_dim: 512,
        }
    }

    /// Scaled-down dims for fast experiments; preserves the hetero dim split.
    pub fn small() -> Self {
        Self {
            word_dim: 32,
            sentence_dim: 48,
        }
    }

    /// Node feature dim for a platform (embedding + runtime block).
    pub fn node_dim(&self, platform: Platform) -> usize {
        let base = if platform.uses_sentence_embeddings() {
            self.sentence_dim
        } else {
            self.word_dim
        };
        base + RUNTIME_FEATURE_DIMS
    }
}

/// Builds interaction graphs from rule corpora.
pub struct GraphBuilder {
    lexicon: Lexicon,
    words: WordEmbedder,
    sentences: SentenceEncoder,
    config: FeatureConfig,
}

impl GraphBuilder {
    pub fn new(config: FeatureConfig) -> Self {
        Self {
            lexicon: Lexicon::new(),
            words: WordEmbedder::with_dim(config.word_dim),
            sentences: SentenceEncoder::with_dims(config.word_dim, config.sentence_dim),
            config,
        }
    }

    pub fn config(&self) -> FeatureConfig {
        self.config
    }

    /// Node features for a rule: key-phrase word embedding (app platforms) or
    /// sentence embedding (voice platforms), plus a zeroed runtime block.
    pub fn node_features(&self, rule: &Rule) -> Vec<f64> {
        let parse = parse_rule(&rule.text, &self.lexicon);
        let mut feats = if rule.platform.uses_sentence_embeddings() {
            // Voice commands are concise: encode the whole token sequence.
            let mut tokens = parse.trigger.tokens.clone();
            tokens.extend(parse.action.tokens.clone());
            self.sentences.encode(&tokens, &self.lexicon)
        } else {
            // Verbose app descriptions: key phrases only (Eq. 1 pair embedding).
            // Locations are included — device identity is (kind, location),
            // and conflict/revert patterns are location-sensitive.
            let mut trigger_keys = parse.trigger.verbs.clone();
            trigger_keys.extend(parse.trigger.objects.clone());
            trigger_keys.extend(parse.trigger.states.clone());
            trigger_keys.extend(parse.trigger.locations.clone());
            let mut action_keys = parse.action.verbs.clone();
            action_keys.extend(parse.action.objects.clone());
            action_keys.extend(parse.action.states.clone());
            action_keys.extend(parse.action.locations.clone());
            self.words
                .pair_embedding(&trigger_keys, &action_keys, &self.lexicon)
        };
        feats.extend([0.0; RUNTIME_FEATURE_DIMS]);
        feats
    }

    /// Builds a graph from explicit rules: edges from ground-truth semantics,
    /// label from the structural detector.
    pub fn build_graph(&self, rules: &[Rule]) -> InteractionGraph {
        let mut graph = self.build_structure(rules);
        self.fill_features(&mut graph);
        graph
    }

    /// The structural half of [`build_graph`]: edges, label, and rule nodes
    /// with **empty** feature vectors. Edge derivation and the vulnerability
    /// detector read only rule semantics, never node features, so a
    /// structure-only graph carries the final label — featurization (the NLP
    /// parse + embedding, by far the dominant cost) can be deferred to a
    /// batched [`GraphBuilder::fill_features`] pass over the graphs that are
    /// actually kept, and run on any number of threads (it consumes no RNG).
    pub fn build_structure(&self, rules: &[Rule]) -> InteractionGraph {
        let n = rules.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && rules[i].can_trigger(&rules[j]) {
                    edges.push((i, j));
                }
            }
        }
        let nodes: Vec<RuleNode> = rules
            .iter()
            .map(|rule| RuleNode {
                rule: rule.clone(),
                features: Vec::new(),
            })
            .collect();
        let mut graph = InteractionGraph::new(nodes, edges);
        let kinds = detect_vulnerabilities(&graph);
        graph.label = Some(GraphLabel::vulnerable(kinds));
        graph
    }

    /// Computes [`GraphBuilder::node_features`] for every node of a
    /// structure-only graph (see [`GraphBuilder::build_structure`]). A pure
    /// function of the rules: filling before or after sampling decisions
    /// yields bit-identical datasets.
    pub fn fill_features(&self, graph: &mut InteractionGraph) {
        for node in &mut graph.nodes {
            node.features = self.node_features(&node.rule);
        }
    }

    /// Samples a connected graph of roughly `target_size` nodes by randomly
    /// chaining correlated rule pairs from the corpus index (paper: "randomly
    /// choose and chain the trigger-action and action-trigger pairs").
    pub fn sample_graph(
        &self,
        index: &CorpusIndex,
        target_size: usize,
        rng: &mut Rng,
    ) -> InteractionGraph {
        let mut graph = self.sample_structure(index, target_size, rng);
        self.fill_features(&mut graph);
        graph
    }

    /// [`GraphBuilder::sample_graph`] without featurization (see
    /// [`GraphBuilder::build_structure`]). Consumes the identical RNG stream.
    pub fn sample_structure(
        &self,
        index: &CorpusIndex,
        target_size: usize,
        rng: &mut Rng,
    ) -> InteractionGraph {
        let target = target_size.max(2);
        // Start from a rule that has at least one correlation if possible.
        let seed = index.random_connected_rule(rng);
        let mut chosen: Vec<usize> = vec![seed];
        let mut frontier: Vec<usize> = vec![seed];
        let mut attempts = 0;
        while chosen.len() < target && attempts < target * 20 {
            attempts += 1;
            if frontier.is_empty() {
                break;
            }
            let at = *rng.choose(&frontier);
            // Extend forward (action triggers someone) or backward.
            let candidates: &[usize] = if rng.bool(0.5) {
                &index.forward[at]
            } else {
                &index.backward[at]
            };
            if candidates.is_empty() {
                frontier.retain(|&x| {
                    x != at || !index.forward[x].is_empty() || !index.backward[x].is_empty()
                });
                continue;
            }
            let next = *rng.choose(candidates);
            if !chosen.contains(&next) {
                chosen.push(next);
                frontier.push(next);
            }
        }
        let rules: Vec<Rule> = chosen.iter().map(|&i| index.rules[i].clone()).collect();
        self.build_structure(&rules)
    }

    /// Samples a graph guaranteed to contain the given vulnerability: the
    /// injector's pattern rules are planted and padded with corpus rules.
    pub fn sample_vulnerable(
        &self,
        kind: VulnKind,
        index: &CorpusIndex,
        target_size: usize,
        gen: &mut CorpusGenerator,
        rng: &mut Rng,
    ) -> InteractionGraph {
        let mut graph = self.sample_vulnerable_structure(kind, index, target_size, gen, rng);
        self.fill_features(&mut graph);
        graph
    }

    /// [`GraphBuilder::sample_vulnerable`] without featurization (see
    /// [`GraphBuilder::build_structure`]). The acceptance retries check only
    /// the structural label, so the RNG stream is identical.
    pub fn sample_vulnerable_structure(
        &self,
        kind: VulnKind,
        index: &CorpusIndex,
        target_size: usize,
        gen: &mut CorpusGenerator,
        rng: &mut Rng,
    ) -> InteractionGraph {
        let platform = index.rules.first().map_or(Platform::Ifttt, |r| r.platform);
        let core = VulnInjector::pattern_rules(kind, gen.alloc_ids(8), platform);
        // Pad with random corpus rules to reach the target size. Padding can
        // occasionally neutralize the planted pattern (e.g. a padded rule
        // satisfies a blocked trigger), so retry with fresh padding; labels
        // must always be the ground truth of the graph actually returned.
        for _ in 0..5 {
            let mut rules = core.clone();
            while rules.len() < target_size.max(rules.len()) {
                let extra = rng.usize(index.rules.len());
                let r = &index.rules[extra];
                if !rules.iter().any(|x| x.id == r.id) {
                    rules.push(r.clone());
                } else {
                    break;
                }
            }
            let graph = self.build_structure(&rules);
            if graph.label.as_ref().is_some_and(|l| l.vulnerable) {
                return graph;
            }
        }
        // Unlucky padding every time: the unpadded pattern is vulnerable by
        // construction.
        self.build_structure(&core)
    }
}

impl CorpusGenerator {
    /// Reserves a block of rule ids for injectors (keeps ids unique).
    pub fn alloc_ids(&mut self, count: u32) -> u32 {
        let base = self.peek_next_id();
        self.advance_ids(count);
        base
    }
}

/// Precomputed ground-truth correlation adjacency over a corpus.
pub struct CorpusIndex {
    pub rules: Vec<Rule>,
    /// `forward[i]` = rules that rule i's action can trigger.
    pub forward: Vec<Vec<usize>>,
    /// `backward[i]` = rules whose action can trigger rule i.
    pub backward: Vec<Vec<usize>>,
}

impl CorpusIndex {
    pub fn build(rules: Vec<Rule>) -> Self {
        let n = rules.len();
        let mut forward = vec![Vec::new(); n];
        let mut backward = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i != j && rules[i].can_trigger(&rules[j]) {
                    forward[i].push(j);
                    backward[j].push(i);
                }
            }
        }
        Self {
            rules,
            forward,
            backward,
        }
    }

    /// Fraction of ordered pairs that correlate (corpus density diagnostic).
    pub fn density(&self) -> f64 {
        let n = self.rules.len();
        if n < 2 {
            return 0.0;
        }
        let e: usize = self.forward.iter().map(Vec::len).sum();
        e as f64 / (n * (n - 1)) as f64
    }

    fn random_connected_rule(&self, rng: &mut Rng) -> usize {
        let connected: Vec<usize> = (0..self.rules.len())
            .filter(|&i| !self.forward[i].is_empty() || !self.backward[i].is_empty())
            .collect();
        if connected.is_empty() {
            rng.usize(self.rules.len())
        } else {
            *rng.choose(&connected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    fn small_index(seed: u64) -> (CorpusIndex, CorpusGenerator) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::small(), &mut rng);
        (CorpusIndex::build(rules), gen)
    }

    #[test]
    fn sampled_graphs_are_labeled_and_sized() {
        let (index, _) = small_index(1);
        let builder = GraphBuilder::new(FeatureConfig::small());
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..10 {
            let g = builder.sample_graph(&index, 8, &mut rng);
            assert!(g.node_count() >= 1);
            assert!(g.node_count() <= 8);
            assert!(g.label.is_some());
        }
    }

    #[test]
    fn node_features_have_platform_dims() {
        let builder = GraphBuilder::new(FeatureConfig::small());
        let mut rng = Rng::seed_from_u64(3);
        let mut gen = CorpusGenerator::new();
        let config = CorpusConfig::small();
        let rules = gen.generate(&config, &mut rng);
        for r in &rules {
            let f = builder.node_features(r);
            assert_eq!(
                f.len(),
                builder.config().node_dim(r.platform),
                "{:?}",
                r.platform
            );
            // Runtime block zeroed for offline graphs.
            assert!(f[f.len() - RUNTIME_FEATURE_DIMS..]
                .iter()
                .all(|&x| x == 0.0));
        }
    }

    #[test]
    fn injected_graphs_carry_their_kind() {
        let (index, mut gen) = small_index(4);
        let builder = GraphBuilder::new(FeatureConfig::small());
        let mut rng = Rng::seed_from_u64(5);
        for kind in VulnKind::ALL {
            let g = builder.sample_vulnerable(kind, &index, 6, &mut gen, &mut rng);
            let label = g.label.as_ref().unwrap();
            assert!(label.vulnerable, "{kind:?} graph not vulnerable");
        }
    }

    #[test]
    fn corpus_index_symmetry() {
        let (index, _) = small_index(6);
        for (i, fs) in index.forward.iter().enumerate() {
            for &j in fs {
                assert!(index.backward[j].contains(&i));
            }
        }
    }

    #[test]
    fn density_is_sane() {
        let (index, _) = small_index(7);
        let d = index.density();
        assert!(d > 0.0 && d < 0.2, "density {d}");
    }
}
