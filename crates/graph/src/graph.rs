//! The interaction graph (paper Definition 1): nodes are automation rules,
//! directed edges are "action-trigger" correlations, node features are text
//! embeddings, and the graph label says whether the interaction is vulnerable.

use crate::rule::{Platform, Rule};
use crate::vuln::VulnKind;
use fexiot_tensor::matrix::Matrix;

/// A node in an interaction graph: one automation rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleNode {
    pub rule: Rule,
    /// Feature vector (word/sentence embedding, platform-dependent dim).
    pub features: Vec<f64>,
}

/// Label attached to a graph sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphLabel {
    /// True if any interaction vulnerability is present.
    pub vulnerable: bool,
    /// The specific vulnerabilities found (empty for benign graphs).
    pub kinds: Vec<VulnKind>,
}

impl GraphLabel {
    pub fn benign() -> Self {
        Self {
            vulnerable: false,
            kinds: Vec::new(),
        }
    }

    pub fn vulnerable(kinds: Vec<VulnKind>) -> Self {
        Self {
            vulnerable: !kinds.is_empty(),
            kinds,
        }
    }
}

/// A directed interaction graph over automation rules.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionGraph {
    pub nodes: Vec<RuleNode>,
    /// Directed edges `(from, to)`: `from`'s action can trigger `to`.
    pub edges: Vec<(usize, usize)>,
    /// Ground-truth label, if known.
    pub label: Option<GraphLabel>,
}

impl InteractionGraph {
    pub fn new(nodes: Vec<RuleNode>, edges: Vec<(usize, usize)>) -> Self {
        let n = nodes.len();
        for &(a, b) in &edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of bounds for {n} nodes");
        }
        Self {
            nodes,
            edges,
            label: None,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing neighbor lists.
    pub fn out_neighbors(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
        }
        adj
    }

    /// Undirected neighbor lists (used by connectivity checks and GNN
    /// message passing, which treats interaction edges symmetrically).
    pub fn undirected_neighbors(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for &(a, b) in &self.edges {
            if a != b {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Symmetrically normalized adjacency with self-loops,
    /// `D^{-1/2} (A + I) D^{-1/2}`, for GCN propagation.
    pub fn normalized_adjacency(&self) -> Matrix {
        let n = self.nodes.len();
        let mut a = Matrix::eye(n);
        for &(u, v) in &self.edges {
            if u != v {
                a[(u, v)] = 1.0;
                a[(v, u)] = 1.0;
            }
        }
        let mut deg_inv_sqrt = vec![0.0; n];
        for i in 0..n {
            let d: f64 = (0..n).map(|j| a[(i, j)]).sum();
            deg_inv_sqrt[i] = if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 };
        }
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] = deg_inv_sqrt[i] * a[(i, j)] * deg_inv_sqrt[j];
            }
        }
        out
    }

    /// GIN aggregation matrix `A + (1 + eps) I` (undirected, eps = 0 gives GIN-0).
    pub fn gin_adjacency(&self, eps: f64) -> Matrix {
        let n = self.nodes.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 1.0 + eps;
        }
        for &(u, v) in &self.edges {
            if u != v {
                a[(u, v)] = 1.0;
                a[(v, u)] = 1.0;
            }
        }
        a
    }

    /// Node feature matrix; all nodes must share a feature dimension.
    ///
    /// # Panics
    /// Panics if node feature dims differ (heterogeneous graphs must go
    /// through per-type projection first).
    pub fn feature_matrix(&self) -> Matrix {
        assert!(!self.nodes.is_empty(), "feature_matrix: empty graph");
        let d = self.nodes[0].features.len();
        let rows: Vec<Vec<f64>> = self
            .nodes
            .iter()
            .map(|n| {
                assert_eq!(
                    n.features.len(),
                    d,
                    "heterogeneous feature dims; project first"
                );
                n.features.clone()
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    /// True if every node's feature dim matches.
    pub fn is_feature_homogeneous(&self) -> bool {
        match self.nodes.first() {
            Some(first) => {
                let d = first.features.len();
                self.nodes.iter().all(|n| n.features.len() == d)
            }
            None => true,
        }
    }

    /// The set of platforms present in this graph.
    pub fn platforms(&self) -> Vec<Platform> {
        let mut ps: Vec<Platform> = self.nodes.iter().map(|n| n.rule.platform).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// True if the induced subgraph over `keep` (node indices) is connected
    /// when edges are viewed as undirected. Empty sets are not connected.
    pub fn is_connected_subset(&self, keep: &[usize]) -> bool {
        if keep.is_empty() {
            return false;
        }
        let in_set = |x: usize| keep.contains(&x);
        let adj = self.undirected_neighbors();
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![keep[0]];
        visited[keep[0]] = true;
        let mut count = 0;
        while let Some(u) = stack.pop() {
            count += 1;
            for &v in &adj[u] {
                if in_set(v) && !visited[v] {
                    visited[v] = true;
                    stack.push(v);
                }
            }
        }
        count == keep.len()
    }

    /// Number of connected components of the induced subgraph over `keep`
    /// (undirected view). Zero for an empty set.
    pub fn component_count_subset(&self, keep: &[usize]) -> usize {
        if keep.is_empty() {
            return 0;
        }
        let adj = self.undirected_neighbors();
        let mut visited = vec![false; self.nodes.len()];
        let in_set = |x: usize| keep.contains(&x);
        let mut components = 0;
        for &start in keep {
            if visited[start] {
                continue;
            }
            components += 1;
            let mut stack = vec![start];
            visited[start] = true;
            while let Some(u) = stack.pop() {
                for &v in &adj[u] {
                    if in_set(v) && !visited[v] {
                        visited[v] = true;
                        stack.push(v);
                    }
                }
            }
        }
        components
    }

    /// Induced subgraph over the given node indices (preserving their order).
    /// Edges are remapped; the label is dropped.
    pub fn induced_subgraph(&self, keep: &[usize]) -> InteractionGraph {
        let mut remap = vec![usize::MAX; self.nodes.len()];
        for (new_idx, &old) in keep.iter().enumerate() {
            remap[old] = new_idx;
        }
        let nodes: Vec<RuleNode> = keep.iter().map(|&i| self.nodes[i].clone()).collect();
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|&&(a, b)| remap[a] != usize::MAX && remap[b] != usize::MAX)
            .map(|&(a, b)| (remap[a], remap[b]))
            .collect();
        InteractionGraph::new(nodes, edges)
    }

    /// Nodes reachable from `start` following directed edges (incl. start).
    pub fn reachable_from(&self, start: usize) -> Vec<usize> {
        let adj = self.out_neighbors();
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        visited[start] = true;
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            out.push(u);
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    stack.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// True if the directed graph contains a cycle.
    pub fn has_cycle(&self) -> bool {
        let n = self.nodes.len();
        let adj = self.out_neighbors();
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; n];
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            // Iterative DFS with explicit stack of (node, neighbor cursor).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
                if *cursor < adj[u].len() {
                    let v = adj[u][*cursor];
                    *cursor += 1;
                    match state[v] {
                        0 => {
                            state[v] = 1;
                            stack.push((v, 0));
                        }
                        1 => return true,
                        _ => {}
                    }
                } else {
                    state[u] = 2;
                    stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind as K, Location as L};
    use crate::rule::{dev, Command, Trigger};

    fn node(id: u32) -> RuleNode {
        RuleNode {
            rule: Rule {
                id,
                platform: Platform::Ifttt,
                trigger: Trigger::Manual,
                actions: vec![Command {
                    device: dev(K::Light, L::Kitchen),
                    activate: true,
                }],
                text: format!("rule {id}"),
            },
            features: vec![id as f64, 1.0],
        }
    }

    fn chain(n: usize) -> InteractionGraph {
        let nodes = (0..n).map(|i| node(i as u32)).collect();
        let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        InteractionGraph::new(nodes, edges)
    }

    #[test]
    fn normalized_adjacency_rows_are_finite_and_symmetric() {
        let g = chain(4);
        let a = g.normalized_adjacency();
        assert!(a.is_finite());
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
        // Self-loops present.
        assert!(a[(0, 0)] > 0.0);
    }

    #[test]
    fn cycle_detection() {
        let mut g = chain(3);
        assert!(!g.has_cycle());
        g.edges.push((2, 0));
        assert!(g.has_cycle());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = chain(2);
        g.edges.push((1, 1));
        assert!(g.has_cycle());
    }

    #[test]
    fn reachability() {
        let g = chain(4);
        assert_eq!(g.reachable_from(1), vec![1, 2, 3]);
        assert_eq!(g.reachable_from(3), vec![3]);
    }

    #[test]
    fn connected_subset_checks() {
        let g = chain(4);
        assert!(g.is_connected_subset(&[0, 1, 2]));
        assert!(!g.is_connected_subset(&[0, 2]));
        assert!(!g.is_connected_subset(&[]));
        assert!(g.is_connected_subset(&[2]));
    }

    #[test]
    fn induced_subgraph_remaps_edges() {
        let g = chain(4);
        let sub = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(sub.nodes[0].rule.id, 1);
    }

    #[test]
    fn feature_matrix_shape() {
        let g = chain(3);
        let x = g.feature_matrix();
        assert_eq!(x.shape(), (3, 2));
        assert_eq!(x[(2, 0)], 2.0);
    }

    #[test]
    fn gin_adjacency_diagonal() {
        let g = chain(3);
        let a = g.gin_adjacency(0.5);
        assert!((a[(0, 0)] - 1.5).abs() < 1e-12);
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(1, 0)], 1.0);
        assert_eq!(a[(0, 2)], 0.0);
    }
}
