//! Binary codecs for corpus and dataset artifacts.
//!
//! These frames are what `fexiot-store` caches between CLI runs: a featurized
//! [`GraphDataset`] (rules, edges, labels, and embedded node features) and a
//! [`CorpusIndex`] (rules plus the precomputed correlation adjacency), so a
//! warm run skips both corpus generation and the NLP featurization pass
//! entirely. Same discipline as the model codec in `fexiot-gnn`: little-endian
//! via [`ByteWriter`]/[`ByteReader`], explicit magics, typed errors on corrupt
//! input, and enum tags indexed into the canonical `ALL` constants so the wire
//! format is stable as long as variant order is.

use crate::builder::CorpusIndex;
use crate::dataset::GraphDataset;
use crate::device::{Channel, Device, DeviceKind, Location};
use crate::graph::{GraphLabel, InteractionGraph, RuleNode};
use crate::rule::{Command, Platform, Rule, Trigger};
use crate::vuln::VulnKind;
use fexiot_tensor::codec::{ByteReader, ByteWriter, CodecError};

/// Magic for a serialized featurized dataset.
pub const DATASET_MAGIC: u64 = 0xFE_10_07_DA_7A_5E_02_00;
/// Magic for a serialized corpus index.
pub const CORPUS_MAGIC: u64 = 0xFE_10_07_C0_12_05_02_00;

/// Platform wire tag — shared with the model codec in `fexiot-gnn` so a model
/// and the dataset it was trained on agree on per-platform identities.
pub fn platform_tag(p: Platform) -> u8 {
    Platform::ALL.iter().position(|&x| x == p).expect("in ALL") as u8
}

pub fn platform_from_tag(tag: u8) -> Result<Platform, CodecError> {
    Platform::ALL
        .get(tag as usize)
        .copied()
        .ok_or(CodecError::BadTag(tag))
}

fn device_kind_tag(k: DeviceKind) -> u8 {
    if let Some(i) = DeviceKind::ACTUATORS.iter().position(|&x| x == k) {
        i as u8
    } else {
        let i = DeviceKind::SENSORS.iter().position(|&x| x == k).expect("in SENSORS");
        (DeviceKind::ACTUATORS.len() + i) as u8
    }
}

fn device_kind_from_tag(tag: u8) -> Result<DeviceKind, CodecError> {
    let t = tag as usize;
    let n_act = DeviceKind::ACTUATORS.len();
    if t < n_act {
        Ok(DeviceKind::ACTUATORS[t])
    } else {
        DeviceKind::SENSORS
            .get(t - n_act)
            .copied()
            .ok_or(CodecError::BadTag(tag))
    }
}

fn tag_of<T: Copy + PartialEq>(all: &[T], v: T) -> u8 {
    all.iter().position(|&x| x == v).expect("in ALL") as u8
}

fn from_tag<T: Copy>(all: &[T], tag: u8) -> Result<T, CodecError> {
    all.get(tag as usize).copied().ok_or(CodecError::BadTag(tag))
}

fn write_device(w: &mut ByteWriter, d: Device) {
    w.write_u8(device_kind_tag(d.kind));
    w.write_u8(tag_of(&Location::ALL, d.location));
}

fn read_device(r: &mut ByteReader) -> Result<Device, CodecError> {
    let kind = device_kind_from_tag(r.read_u8()?)?;
    let location = from_tag(&Location::ALL, r.read_u8()?)?;
    Ok(Device { kind, location })
}

fn write_trigger(w: &mut ByteWriter, t: &Trigger) {
    match t {
        Trigger::DeviceState { device, active } => {
            w.write_u8(0);
            write_device(w, *device);
            w.write_u8(u8::from(*active));
        }
        Trigger::ChannelLevel {
            channel,
            location,
            high,
        } => {
            w.write_u8(1);
            w.write_u8(tag_of(&Channel::ALL, *channel));
            w.write_u8(tag_of(&Location::ALL, *location));
            w.write_u8(u8::from(*high));
        }
        Trigger::Time { hour } => {
            w.write_u8(2);
            w.write_u8(*hour);
        }
        Trigger::Manual => w.write_u8(3),
    }
}

fn read_trigger(r: &mut ByteReader) -> Result<Trigger, CodecError> {
    match r.read_u8()? {
        0 => Ok(Trigger::DeviceState {
            device: read_device(r)?,
            active: r.read_u8()? != 0,
        }),
        1 => Ok(Trigger::ChannelLevel {
            channel: from_tag(&Channel::ALL, r.read_u8()?)?,
            location: from_tag(&Location::ALL, r.read_u8()?)?,
            high: r.read_u8()? != 0,
        }),
        2 => Ok(Trigger::Time { hour: r.read_u8()? }),
        3 => Ok(Trigger::Manual),
        t => Err(CodecError::BadTag(t)),
    }
}

fn write_rule(w: &mut ByteWriter, rule: &Rule) {
    w.write_u64(u64::from(rule.id));
    w.write_u8(platform_tag(rule.platform));
    write_trigger(w, &rule.trigger);
    w.write_usize(rule.actions.len());
    for c in &rule.actions {
        write_device(w, c.device);
        w.write_u8(u8::from(c.activate));
    }
    w.write_str(&rule.text);
}

fn read_rule(r: &mut ByteReader) -> Result<Rule, CodecError> {
    let id = r.read_u64()? as u32;
    let platform = platform_from_tag(r.read_u8()?)?;
    let trigger = read_trigger(r)?;
    let n = r.read_usize()?;
    if n > r.remaining() {
        return Err(CodecError::BadLength(n as u64));
    }
    let mut actions = Vec::with_capacity(n);
    for _ in 0..n {
        let device = read_device(r)?;
        let activate = r.read_u8()? != 0;
        actions.push(Command { device, activate });
    }
    let text = r.read_str()?;
    Ok(Rule {
        id,
        platform,
        trigger,
        actions,
        text,
    })
}

fn write_graph(w: &mut ByteWriter, g: &InteractionGraph) {
    w.write_usize(g.nodes.len());
    for node in &g.nodes {
        write_rule(w, &node.rule);
        w.write_f64_slice(&node.features);
    }
    w.write_usize(g.edges.len());
    for &(a, b) in &g.edges {
        w.write_usize(a);
        w.write_usize(b);
    }
    match &g.label {
        None => w.write_u8(0),
        Some(l) => {
            w.write_u8(1);
            w.write_u8(u8::from(l.vulnerable));
            w.write_usize(l.kinds.len());
            for &k in &l.kinds {
                w.write_u8(tag_of(&VulnKind::ALL, k));
            }
        }
    }
}

fn read_graph(r: &mut ByteReader) -> Result<InteractionGraph, CodecError> {
    let n = r.read_usize()?;
    if n > r.remaining() {
        return Err(CodecError::BadLength(n as u64));
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let rule = read_rule(r)?;
        let features = r.read_f64_vec()?;
        nodes.push(RuleNode { rule, features });
    }
    let e = r.read_usize()?;
    if e.saturating_mul(16) > r.remaining() {
        return Err(CodecError::BadLength(e as u64));
    }
    let mut edges = Vec::with_capacity(e);
    for _ in 0..e {
        let a = r.read_usize()?;
        let b = r.read_usize()?;
        if a >= n || b >= n {
            return Err(CodecError::BadLength(a.max(b) as u64));
        }
        edges.push((a, b));
    }
    let label = match r.read_u8()? {
        0 => None,
        1 => {
            let vulnerable = r.read_u8()? != 0;
            let k = r.read_usize()?;
            if k > r.remaining() {
                return Err(CodecError::BadLength(k as u64));
            }
            let mut kinds = Vec::with_capacity(k);
            for _ in 0..k {
                kinds.push(from_tag(&VulnKind::ALL, r.read_u8()?)?);
            }
            Some(GraphLabel { vulnerable, kinds })
        }
        t => return Err(CodecError::BadTag(t)),
    };
    let mut graph = InteractionGraph::new(nodes, edges);
    graph.label = label;
    Ok(graph)
}

/// Serializes a featurized dataset (graphs with embedded node features).
pub fn dataset_to_bytes(ds: &GraphDataset) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.write_u64(DATASET_MAGIC);
    w.write_usize(ds.graphs.len());
    for g in &ds.graphs {
        write_graph(&mut w, g);
    }
    w.into_bytes()
}

pub fn dataset_from_bytes(bytes: &[u8]) -> Result<GraphDataset, CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.read_u64()? != DATASET_MAGIC {
        return Err(CodecError::BadHeader);
    }
    let n = r.read_usize()?;
    if n > r.remaining() {
        return Err(CodecError::BadLength(n as u64));
    }
    let graphs: Result<Vec<_>, _> = (0..n).map(|_| read_graph(&mut r)).collect();
    Ok(GraphDataset { graphs: graphs? })
}

fn write_adjacency(w: &mut ByteWriter, adj: &[Vec<usize>]) {
    w.write_usize(adj.len());
    for list in adj {
        w.write_usize(list.len());
        for &x in list {
            w.write_usize(x);
        }
    }
}

fn read_adjacency(r: &mut ByteReader, n: usize) -> Result<Vec<Vec<usize>>, CodecError> {
    let rows = r.read_usize()?;
    if rows != n {
        return Err(CodecError::BadLength(rows as u64));
    }
    let mut adj = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = r.read_usize()?;
        if len.saturating_mul(8) > r.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let x = r.read_usize()?;
            if x >= n {
                return Err(CodecError::BadLength(x as u64));
            }
            list.push(x);
        }
        adj.push(list);
    }
    Ok(adj)
}

/// Serializes a corpus index with its precomputed correlation adjacency, so a
/// warm load skips the O(n²) `can_trigger` rebuild as well as generation.
pub fn corpus_index_to_bytes(index: &CorpusIndex) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.write_u64(CORPUS_MAGIC);
    w.write_usize(index.rules.len());
    for rule in &index.rules {
        write_rule(&mut w, rule);
    }
    write_adjacency(&mut w, &index.forward);
    write_adjacency(&mut w, &index.backward);
    w.into_bytes()
}

pub fn corpus_index_from_bytes(bytes: &[u8]) -> Result<CorpusIndex, CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.read_u64()? != CORPUS_MAGIC {
        return Err(CodecError::BadHeader);
    }
    let n = r.read_usize()?;
    if n > r.remaining() {
        return Err(CodecError::BadLength(n as u64));
    }
    let rules: Result<Vec<_>, _> = (0..n).map(|_| read_rule(&mut r)).collect();
    let rules = rules?;
    let forward = read_adjacency(&mut r, rules.len())?;
    let backward = read_adjacency(&mut r, rules.len())?;
    Ok(CorpusIndex {
        rules,
        forward,
        backward,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusConfig, CorpusGenerator};
    use crate::dataset::{generate_dataset, DatasetConfig};
    use fexiot_tensor::rng::Rng;

    #[test]
    fn enum_tags_roundtrip_every_variant() {
        for p in Platform::ALL {
            assert_eq!(platform_from_tag(platform_tag(p)).unwrap(), p);
        }
        for k in DeviceKind::ACTUATORS.iter().chain(&DeviceKind::SENSORS) {
            assert_eq!(device_kind_from_tag(device_kind_tag(*k)).unwrap(), *k);
        }
        assert!(platform_from_tag(99).is_err());
        assert!(device_kind_from_tag(200).is_err());
    }

    #[test]
    fn dataset_roundtrips_bit_exactly() {
        let mut rng = Rng::seed_from_u64(11);
        let ds = generate_dataset(&DatasetConfig::small_hetero(), &mut rng);
        let bytes = dataset_to_bytes(&ds);
        let back = dataset_from_bytes(&bytes).unwrap();
        assert_eq!(ds.graphs.len(), back.graphs.len());
        for (a, b) in ds.graphs.iter().zip(&back.graphs) {
            assert_eq!(a, b);
        }
        // Re-encoding is byte-stable.
        assert_eq!(bytes, dataset_to_bytes(&back));
    }

    #[test]
    fn corpus_index_roundtrips_with_adjacency() {
        let mut rng = Rng::seed_from_u64(12);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::small(), &mut rng);
        let index = CorpusIndex::build(rules);
        let bytes = corpus_index_to_bytes(&index);
        let back = corpus_index_from_bytes(&bytes).unwrap();
        assert_eq!(index.rules, back.rules);
        assert_eq!(index.forward, back.forward);
        assert_eq!(index.backward, back.backward);
    }

    #[test]
    fn truncation_and_wrong_magic_error_cleanly() {
        let mut rng = Rng::seed_from_u64(13);
        let ds = generate_dataset(&DatasetConfig::small_ifttt(), &mut rng);
        let bytes = dataset_to_bytes(&ds);
        for cut in [0, 7, 8, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(dataset_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xff;
        assert!(matches!(
            dataset_from_bytes(&wrong),
            Err(CodecError::BadHeader)
        ));
    }
}
