//! Interaction-vulnerability model: the six classes from iRuler that the
//! paper adopts (Definition 2), encoded as structural detectors over
//! interaction graphs, plus injectors that plant each pattern into a graph.
//!
//! Operational definitions (u, v are rule nodes; "together" means they can
//! execute in the same scenario — one reaches the other or both are reachable
//! from a common ancestor):
//!
//! * **Action conflict** — sibling branches command the same device into
//!   opposite states (neither node reaches the other).
//! * **Action revert** — a downstream rule undoes an upstream rule's command
//!   on the same device.
//! * **Action loop** — a directed trigger cycle.
//! * **Action duplicate** — two distinct rules that can execute together
//!   issue the identical command.
//! * **Condition block** — a rule forces a device into a state that makes
//!   another rule's device-state trigger unsatisfiable: some rule commands the
//!   opposite state and no rule in the graph can command the required state.
//! * **Condition bypass** — a rule's trigger is satisfied by a *secondary*
//!   physical side effect of another rule's command (the environmental
//!   condition the trigger guards is bypassed by an unrelated device).

use crate::device::{Channel, DeviceKind, Location};
use crate::graph::InteractionGraph;
use crate::rule::{dev, Command, Platform, Trigger};

/// The six vulnerability classes (paper Definition 2, from iRuler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VulnKind {
    ConditionBypass,
    ConditionBlock,
    ActionRevert,
    ActionLoop,
    ActionConflict,
    ActionDuplicate,
}

impl VulnKind {
    pub const ALL: [VulnKind; 6] = [
        VulnKind::ConditionBypass,
        VulnKind::ConditionBlock,
        VulnKind::ActionRevert,
        VulnKind::ActionLoop,
        VulnKind::ActionConflict,
        VulnKind::ActionDuplicate,
    ];

    pub fn name(self) -> &'static str {
        match self {
            VulnKind::ConditionBypass => "condition bypass",
            VulnKind::ConditionBlock => "condition block",
            VulnKind::ActionRevert => "action revert",
            VulnKind::ActionLoop => "action loop",
            VulnKind::ActionConflict => "action conflict",
            VulnKind::ActionDuplicate => "action duplicate",
        }
    }
}

/// Structural vulnerability detector. This encodes the labeling procedure the
/// paper's volunteers performed manually.
pub fn detect_vulnerabilities(graph: &InteractionGraph) -> Vec<VulnKind> {
    let n = graph.node_count();
    let mut found = Vec::new();
    if n == 0 {
        return found;
    }

    if graph.has_cycle() {
        found.push(VulnKind::ActionLoop);
    }

    // Reachability closure (directed).
    let reach: Vec<Vec<bool>> = (0..n)
        .map(|s| {
            let r = graph.reachable_from(s);
            let mut mask = vec![false; n];
            for i in r {
                mask[i] = true;
            }
            mask
        })
        .collect();
    let together = |u: usize, v: usize| -> bool {
        reach[u][v] || reach[v][u] || (0..n).any(|w| reach[w][u] && reach[w][v])
    };

    let mut conflict = false;
    let mut revert = false;
    let mut duplicate = false;
    let mut block = false;

    #[allow(clippy::needless_range_loop)] // u/v index the reachability closure
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let ru = &graph.nodes[u].rule;
            let rv = &graph.nodes[v].rule;
            for cu in &ru.actions {
                // Command-vs-command interactions.
                for cv in &rv.actions {
                    if cu.device != cv.device {
                        continue;
                    }
                    if cu.activate != cv.activate {
                        if reach[u][v] {
                            // Downstream undo.
                            revert = true;
                        } else if !reach[v][u] && together(u, v) {
                            conflict = true;
                        }
                    } else if u < v && together(u, v) {
                        duplicate = true;
                    }
                }
                // Command-vs-trigger blocking: `u` drives the device into the
                // wrong state and nothing in this graph can drive it right.
                if let Trigger::DeviceState { device, active } = rv.trigger {
                    if cu.device == device && cu.activate != active {
                        let satisfiable = (0..n).any(|w| {
                            w != v
                                && graph.nodes[w]
                                    .rule
                                    .actions
                                    .iter()
                                    .any(|c| c.device == device && c.activate == active)
                        });
                        if !satisfiable {
                            block = true;
                        }
                    }
                }
            }
        }
    }

    // Condition bypass: an edge realized through a secondary channel effect
    // on an environmental channel. The ubiquitous Power side effect is
    // excluded — almost every actuator draws power, so counting it would
    // label nearly every graph (verified empirically during corpus tuning).
    let mut bypass = false;
    for &(u, v) in &graph.edges {
        let ru = &graph.nodes[u].rule;
        let rv = &graph.nodes[v].rule;
        if let Trigger::ChannelLevel {
            channel,
            location,
            high,
        } = rv.trigger
        {
            if channel == Channel::Power {
                continue;
            }
            let want: i8 = if high { 1 } else { -1 };
            // Explicitly satisfied by a primary effect?
            let mut primary = false;
            let mut secondary = false;
            for c in &ru.actions {
                if c.device.location != location {
                    continue;
                }
                for (idx, &(ch, dir)) in c.channel_effects().iter().enumerate() {
                    if ch == channel && dir == want {
                        if idx == 0 {
                            primary = true;
                        } else {
                            secondary = true;
                        }
                    }
                }
            }
            if secondary && !primary {
                bypass = true;
            }
        }
    }

    if bypass {
        found.push(VulnKind::ConditionBypass);
    }
    if block {
        found.push(VulnKind::ConditionBlock);
    }
    if revert {
        found.push(VulnKind::ActionRevert);
    }
    if conflict {
        found.push(VulnKind::ActionConflict);
    }
    if duplicate {
        found.push(VulnKind::ActionDuplicate);
    }
    found.sort_unstable();
    found.dedup();
    found
}

/// Builds the structured rules that realize one vulnerability pattern.
/// Returned as (rules, required-edge-hints); the graph builder recomputes
/// edges from semantics, so the hints are only used in tests.
pub struct VulnInjector;

impl VulnInjector {
    /// Constructs a minimal rule set exhibiting `kind`. `id_base` seeds the
    /// rule ids; `platform` tags every rule.
    pub fn pattern_rules(
        kind: VulnKind,
        id_base: u32,
        platform: Platform,
    ) -> Vec<crate::rule::Rule> {
        use crate::rule::Rule;
        let mk = |id: u32, trigger: Trigger, actions: Vec<Command>| {
            let text = crate::corpus::render_text(platform, &trigger, &actions);
            Rule {
                id,
                platform,
                trigger,
                actions,
                text,
            }
        };
        let light = dev(DeviceKind::Light, Location::LivingRoom);
        let valve = dev(DeviceKind::WaterValve, Location::Kitchen);
        let fan = dev(DeviceKind::Fan, Location::Kitchen);
        let ac = dev(DeviceKind::AirConditioner, Location::Bedroom);

        match kind {
            VulnKind::ActionConflict => vec![
                // w triggers both u and v; u opens the valve, v closes it.
                mk(
                    id_base,
                    Trigger::ChannelLevel {
                        channel: Channel::Smoke,
                        location: Location::Kitchen,
                        high: true,
                    },
                    vec![Command {
                        device: light,
                        activate: true,
                    }],
                ),
                mk(
                    id_base + 1,
                    Trigger::DeviceState {
                        device: light,
                        active: true,
                    },
                    vec![Command {
                        device: valve,
                        activate: true,
                    }],
                ),
                mk(
                    id_base + 2,
                    Trigger::DeviceState {
                        device: light,
                        active: true,
                    },
                    vec![Command {
                        device: valve,
                        activate: false,
                    }],
                ),
            ],
            VulnKind::ActionRevert => vec![
                mk(
                    id_base,
                    Trigger::ChannelLevel {
                        channel: Channel::Smoke,
                        location: Location::Kitchen,
                        high: true,
                    },
                    vec![Command {
                        device: valve,
                        activate: true,
                    }],
                ),
                // Triggered by the valve opening (water flow), closes the valve.
                mk(
                    id_base + 1,
                    Trigger::ChannelLevel {
                        channel: Channel::Water,
                        location: Location::Kitchen,
                        high: true,
                    },
                    vec![Command {
                        device: valve,
                        activate: false,
                    }],
                ),
            ],
            VulnKind::ActionLoop => vec![
                mk(
                    id_base,
                    Trigger::DeviceState {
                        device: fan,
                        active: true,
                    },
                    vec![Command {
                        device: light,
                        activate: true,
                    }],
                ),
                mk(
                    id_base + 1,
                    Trigger::DeviceState {
                        device: light,
                        active: true,
                    },
                    vec![Command {
                        device: fan,
                        activate: true,
                    }],
                ),
            ],
            VulnKind::ActionDuplicate => vec![
                mk(
                    id_base,
                    Trigger::ChannelLevel {
                        channel: Channel::Motion,
                        location: Location::LivingRoom,
                        high: true,
                    },
                    vec![Command {
                        device: light,
                        activate: true,
                    }],
                ),
                mk(
                    id_base + 1,
                    Trigger::DeviceState {
                        device: light,
                        active: true,
                    },
                    vec![Command {
                        device: fan,
                        activate: true,
                    }],
                ),
                mk(
                    id_base + 2,
                    Trigger::DeviceState {
                        device: light,
                        active: true,
                    },
                    vec![Command {
                        device: fan,
                        activate: true,
                    }],
                ),
            ],
            VulnKind::ConditionBlock => vec![
                mk(
                    id_base,
                    Trigger::ChannelLevel {
                        channel: Channel::Motion,
                        location: Location::LivingRoom,
                        high: true,
                    },
                    vec![
                        Command {
                            device: light,
                            activate: true,
                        },
                        Command {
                            device: fan,
                            activate: false,
                        },
                    ],
                ),
                // Waits for the fan to be ON, but the sibling command forces it off.
                mk(
                    id_base + 1,
                    Trigger::DeviceState {
                        device: light,
                        active: true,
                    },
                    vec![Command {
                        device: valve,
                        activate: true,
                    }],
                ),
                mk(
                    id_base + 2,
                    Trigger::DeviceState {
                        device: fan,
                        active: true,
                    },
                    vec![Command {
                        device: valve,
                        activate: false,
                    }],
                ),
            ],
            VulnKind::ConditionBypass => vec![
                // AC's *secondary* humidity effect satisfies the humidity-low trigger.
                mk(
                    id_base,
                    Trigger::Manual,
                    vec![Command {
                        device: ac,
                        activate: true,
                    }],
                ),
                mk(
                    id_base + 1,
                    Trigger::ChannelLevel {
                        channel: Channel::Humidity,
                        location: Location::Bedroom,
                        high: false,
                    },
                    vec![Command {
                        device: dev(DeviceKind::Humidifier, Location::Bedroom),
                        activate: true,
                    }],
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{InteractionGraph, RuleNode};

    /// Builds a graph from rules with edges derived from ground-truth semantics.
    fn graph_from_rules(rules: Vec<crate::rule::Rule>) -> InteractionGraph {
        let n = rules.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && rules[i].can_trigger(&rules[j]) {
                    edges.push((i, j));
                }
            }
        }
        let nodes = rules
            .into_iter()
            .map(|rule| RuleNode {
                rule,
                features: vec![0.0],
            })
            .collect();
        InteractionGraph::new(nodes, edges)
    }

    #[test]
    fn each_injected_pattern_is_detected() {
        for kind in VulnKind::ALL {
            let rules = VulnInjector::pattern_rules(kind, 0, Platform::Ifttt);
            let g = graph_from_rules(rules);
            let found = detect_vulnerabilities(&g);
            assert!(
                found.contains(&kind),
                "{kind:?} not detected; found {found:?}, edges {:?}",
                g.edges
            );
        }
    }

    #[test]
    fn single_rule_graph_is_benign() {
        let rules = vec![crate::rule::Rule {
            id: 0,
            platform: Platform::Ifttt,
            trigger: Trigger::Manual,
            actions: vec![Command {
                device: dev(DeviceKind::Light, Location::Kitchen),
                activate: true,
            }],
            text: String::new(),
        }];
        let g = graph_from_rules(rules);
        assert!(detect_vulnerabilities(&g).is_empty());
    }

    #[test]
    fn disjoint_opposite_commands_are_not_conflict() {
        // Two rules with opposite commands but no shared ancestor and no path.
        let light = dev(DeviceKind::Light, Location::Kitchen);
        let mk = |id, activate| crate::rule::Rule {
            id,
            platform: Platform::Ifttt,
            trigger: Trigger::Time { hour: id as u8 },
            actions: vec![Command {
                device: light,
                activate,
            }],
            text: String::new(),
        };
        let g = graph_from_rules(vec![mk(1, true), mk(2, false)]);
        let found = detect_vulnerabilities(&g);
        assert!(!found.contains(&VulnKind::ActionConflict), "{found:?}");
    }

    #[test]
    fn loop_pattern_has_cycle() {
        let rules = VulnInjector::pattern_rules(VulnKind::ActionLoop, 0, Platform::Ifttt);
        let g = graph_from_rules(rules);
        assert!(g.has_cycle());
    }

    #[test]
    fn revert_requires_downstream_direction() {
        // The revert pattern: opening the valve triggers its own closing.
        let rules = VulnInjector::pattern_rules(VulnKind::ActionRevert, 0, Platform::Ifttt);
        let g = graph_from_rules(rules);
        assert!(
            g.edges.contains(&(0, 1)),
            "valve-open must trigger the water rule"
        );
        let found = detect_vulnerabilities(&g);
        assert!(found.contains(&VulnKind::ActionRevert));
    }

    #[test]
    fn bypass_needs_secondary_effect() {
        let rules = VulnInjector::pattern_rules(VulnKind::ConditionBypass, 0, Platform::Ifttt);
        let g = graph_from_rules(rules);
        assert!(
            g.edges.contains(&(0, 1)),
            "AC side effect must create the edge"
        );
        assert!(detect_vulnerabilities(&g).contains(&VulnKind::ConditionBypass));
    }
}
