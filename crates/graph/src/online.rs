//! Online interaction graphs: fusing cleaned event logs with offline graphs
//! (paper §III-A3). The offline graph carries the "trigger-action" logic; the
//! event log contributes real-time device status, timing, and — crucially —
//! *trigger consistency*: whether each rule's observed device transitions are
//! explained by its trigger having fired shortly before. Log-tampering
//! attacks (fake/stealthy commands, command failures, event losses) break
//! this consistency, which is the signal the detection GNN uses for external
//! vulnerabilities.

use crate::builder::RUNTIME_FEATURE_DIMS;
use crate::device::Device;
use crate::events::CleanEvent;
use crate::graph::{GraphLabel, InteractionGraph};
use crate::rule::Trigger;
use std::collections::BTreeMap;

/// Seconds within which a trigger event "explains" a subsequent action.
/// Seconds within which a trigger observation "explains" a subsequent
/// action (fusion window for the consistency/completion features).
pub const EXPLAIN_WINDOW: u64 = 120;

/// Fuses a cleaned event log into an offline graph, producing the online
/// graph. Per-node runtime block:
/// `[status, sin(t), cos(t), trigger_consistency, event_rate, 1.0]`.
pub fn fuse_online(offline: &InteractionGraph, log: &[CleanEvent]) -> InteractionGraph {
    // Latest status and full event history per device.
    let mut latest: BTreeMap<Device, (u64, bool)> = BTreeMap::new();
    let mut per_device: BTreeMap<Device, Vec<&CleanEvent>> = BTreeMap::new();
    for e in log {
        let entry = latest.entry(e.device).or_insert((e.time, e.active));
        if e.time >= entry.0 {
            *entry = (e.time, e.active);
        }
        per_device.entry(e.device).or_default().push(e);
    }

    let all_rules: Vec<crate::rule::Rule> = offline.nodes.iter().map(|n| n.rule.clone()).collect();
    let consistency: Vec<f64> = offline
        .nodes
        .iter()
        .map(|n| device_consistency(&n.rule, &all_rules, log))
        .collect();

    let mut online = offline.clone();
    for (i, node) in online.nodes.iter_mut().enumerate() {
        let dims = node.features.len();
        assert!(
            dims >= RUNTIME_FEATURE_DIMS,
            "node features missing runtime block"
        );
        let block = dims - RUNTIME_FEATURE_DIMS;

        // Primary action device; fall back to the trigger device.
        let device = node
            .rule
            .actions
            .first()
            .map(|c| c.device)
            .or(match node.rule.trigger {
                Trigger::DeviceState { device, .. } => Some(device),
                _ => None,
            });
        let mut event_count = 0usize;
        if let Some(d) = device {
            if let Some(&(t, active)) = latest.get(&d) {
                let phase = (t % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
                node.features[block] = if active { 1.0 } else { -1.0 };
                node.features[block + 1] = phase.sin();
                node.features[block + 2] = phase.cos();
            }
            event_count = per_device.get(&d).map_or(0, |v| v.len());
        }
        node.features[block + 3] = consistency[i];
        node.features[block + 4] = trigger_completion(&node.rule, log);
        node.features[block + 5] = (1.0 + event_count as f64).ln() / 5.0;
        node.features[block + 6] = 1.0; // online flag
    }
    online
}

/// Fraction of the rule's action-device transitions that are explained by
/// *some* rule in the home: a transition of device `d` to state `s` is
/// legitimate if any deployed rule commands `(d, s)` and that rule's trigger
/// was observable within [`EXPLAIN_WINDOW`] beforehand. Unexplained
/// transitions are the signature of fake/stealthy commands. Returns 1.0 when
/// the rule's devices never transition.
pub fn device_consistency(
    rule: &crate::rule::Rule,
    all_rules: &[crate::rule::Rule],
    log: &[CleanEvent],
) -> f64 {
    let action_devices: Vec<Device> = rule.actions.iter().map(|c| c.device).collect();
    if action_devices.is_empty() {
        return 1.0;
    }
    let mut total = 0usize;
    let mut explained = 0usize;
    for e in log {
        if e.device.kind.is_sensor() || !action_devices.contains(&e.device) {
            continue;
        }
        total += 1;
        let ok = all_rules.iter().any(|r| {
            r.actions
                .iter()
                .any(|c| c.device == e.device && c.activate == e.active)
                && trigger_observable_before(r, log, e.time)
        });
        if ok {
            explained += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        explained as f64 / total as f64
    }
}

/// Back-compat single-rule view of [`device_consistency`].
pub fn trigger_consistency(rule: &crate::rule::Rule, log: &[CleanEvent]) -> f64 {
    device_consistency(rule, std::slice::from_ref(rule), log)
}

/// Trigger-to-action completion: each time the rule's trigger becomes
/// observable in the log, did every commanded device reach its commanded
/// state within [`EXPLAIN_WINDOW`]? Fake sensor events, stealthy commands,
/// and command failures all lower this. Returns 1.0 when the trigger is
/// never observed (including manual/time triggers).
pub fn trigger_completion(rule: &crate::rule::Rule, log: &[CleanEvent]) -> f64 {
    if rule.actions.is_empty() {
        return 1.0;
    }
    // Trigger-satisfaction instants.
    let instants: Vec<u64> = log
        .iter()
        .filter(|e| trigger_event_matches(rule, e))
        .map(|e| e.time)
        .collect();
    if instants.is_empty() {
        return 1.0;
    }
    // State of a device as of time `t` (last record at or before t).
    let state_at = |device: Device, t: u64| -> Option<bool> {
        log.iter()
            .filter(|e| e.device == device && e.time <= t)
            .max_by_key(|e| e.time)
            .map(|e| e.active)
    };
    let mut checks = 0usize;
    let mut satisfied = 0usize;
    for &t in &instants {
        for cmd in &rule.actions {
            checks += 1;
            // Completed if the device was already in the commanded state at
            // trigger time, or transitioned into it at any point within the
            // window (later rules may legitimately flip it again).
            let already = state_at(cmd.device, t) == Some(cmd.activate);
            let transitioned = log.iter().any(|f| {
                f.device == cmd.device
                    && f.active == cmd.activate
                    && f.time > t
                    && f.time <= t + EXPLAIN_WINDOW
            });
            if already || transitioned {
                satisfied += 1;
            }
        }
    }
    satisfied as f64 / checks.max(1) as f64
}

/// Does this single event satisfy the rule's trigger predicate?
fn trigger_event_matches(rule: &crate::rule::Rule, e: &CleanEvent) -> bool {
    match rule.trigger {
        Trigger::DeviceState { device, active } => e.device == device && e.active == active,
        Trigger::ChannelLevel {
            channel,
            location,
            high,
        } => {
            e.device.location == location
                && e.device.kind.sense_channel() == Some(channel)
                && e.active == high
        }
        Trigger::Time { .. } | Trigger::Manual => false,
    }
}

/// Is the rule's trigger satisfied according to the log's last-known state at
/// time `t`? Triggers are level-based (a rule fires while the light *is* on),
/// so the check reads the most recent record at or before `t`, not only
/// recent transitions.
fn trigger_observable_before(rule: &crate::rule::Rule, log: &[CleanEvent], t: u64) -> bool {
    match rule.trigger {
        Trigger::DeviceState { device, active } => log
            .iter()
            .filter(|e| e.device == device && e.time <= t)
            .max_by_key(|e| e.time)
            // Devices start inactive: no record yet means "off".
            .map_or(!active, |e| e.active == active),
        Trigger::ChannelLevel {
            channel,
            location,
            high,
        } => log
            .iter()
            .filter(|e| {
                e.device.location == location
                    && e.device.kind.sense_channel() == Some(channel)
                    && e.time <= t
            })
            .max_by_key(|e| e.time)
            .is_some_and(|e| e.active == high),
        // Manual/time triggers leave no log trace; treat as explained.
        Trigger::Time { .. } | Trigger::Manual => true,
    }
}

/// Marks a graph as carrying an external (attack-induced) vulnerability.
/// External vulnerabilities are outside the six internal classes, so the
/// label is vulnerable with no internal kind attached.
pub fn mark_external_vulnerable(graph: &mut InteractionGraph) {
    let kinds = graph
        .label
        .as_ref()
        .map(|l| l.kinds.clone())
        .unwrap_or_default();
    graph.label = Some(GraphLabel {
        vulnerable: true,
        kinds,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FeatureConfig, GraphBuilder};
    use crate::corpus::{CorpusConfig, CorpusGenerator};
    use crate::device::{Channel, DeviceKind, Location};
    use crate::events::{clean_log, HomeSimulator, SimConfig};
    use crate::rule::{dev, Command, Platform, Rule};
    use fexiot_tensor::rng::Rng;

    fn offline_graph(seed: u64) -> InteractionGraph {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::small(), &mut rng);
        let index = crate::builder::CorpusIndex::build(rules);
        let builder = GraphBuilder::new(FeatureConfig::small());
        builder.sample_graph(&index, 6, &mut rng)
    }

    fn ev(time: u64, device: Device, active: bool) -> CleanEvent {
        let (on, off) = device.kind.state_words();
        CleanEvent {
            time,
            device,
            state: if active { on } else { off }.to_string(),
            active,
        }
    }

    #[test]
    fn fusion_sets_online_flag_everywhere() {
        let g = offline_graph(1);
        let online = fuse_online(&g, &[]);
        for node in &online.nodes {
            let d = node.features.len();
            assert_eq!(node.features[d - 1], 1.0);
        }
    }

    #[test]
    fn fusion_writes_status_from_log() {
        let g = offline_graph(2);
        let rules: Vec<_> = g.nodes.iter().map(|n| n.rule.clone()).collect();
        let mut sim = HomeSimulator::new(rules);
        let mut rng = Rng::seed_from_u64(3);
        let raw = sim.run(&SimConfig::short(), &mut rng);
        let clean = clean_log(&raw);
        let online = fuse_online(&g, &clean);
        assert_eq!(online.edges, g.edges);
        for node in &online.nodes {
            let d = node.features.len();
            let status = node.features[d - RUNTIME_FEATURE_DIMS];
            assert!(status == 0.0 || status == 1.0 || status == -1.0);
            let consistency = node.features[d - 4];
            assert!((0.0..=1.0).contains(&consistency));
            let completion = node.features[d - 3];
            assert!((0.0..=1.0).contains(&completion));
        }
    }

    #[test]
    fn offline_features_unchanged_by_fusion() {
        let g = offline_graph(4);
        let online = fuse_online(&g, &[]);
        for (a, b) in g.nodes.iter().zip(&online.nodes) {
            let d = a.features.len();
            assert_eq!(
                &a.features[..d - RUNTIME_FEATURE_DIMS],
                &b.features[..d - RUNTIME_FEATURE_DIMS]
            );
        }
    }

    #[test]
    fn consistency_flags_unexplained_transitions() {
        // Rule: motion (living room) -> light on. A light-on event WITHOUT a
        // preceding motion event is unexplained (a fake command).
        let light = dev(DeviceKind::Light, Location::LivingRoom);
        let motion = dev(DeviceKind::MotionSensor, Location::LivingRoom);
        let rule = Rule {
            id: 0,
            platform: Platform::SmartThings,
            trigger: Trigger::ChannelLevel {
                channel: Channel::Motion,
                location: Location::LivingRoom,
                high: true,
            },
            actions: vec![Command {
                device: light,
                activate: true,
            }],
            text: String::new(),
        };
        // Explained: motion then light.
        let explained_log = vec![ev(10, motion, true), ev(20, light, true)];
        assert_eq!(trigger_consistency(&rule, &explained_log), 1.0);
        // Unexplained: light turns on with no motion in the window.
        let fake_log = vec![ev(500, light, true)];
        assert_eq!(trigger_consistency(&rule, &fake_log), 0.0);
        // Mixed: the second light-on happens long after motion cleared.
        let mixed: Vec<CleanEvent> = vec![
            ev(10, motion, true),
            ev(20, light, true),
            ev(40, motion, false),
            ev(5000, light, true),
        ];
        assert!((trigger_consistency(&rule, &mixed) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn completion_flags_missing_actions() {
        // Rule: motion -> light on. Motion fires but the light never turns on
        // (stealthy command / fake event): completion drops to 0.
        let light = dev(DeviceKind::Light, Location::LivingRoom);
        let motion = dev(DeviceKind::MotionSensor, Location::LivingRoom);
        let rule = Rule {
            id: 0,
            platform: Platform::SmartThings,
            trigger: Trigger::ChannelLevel {
                channel: Channel::Motion,
                location: Location::LivingRoom,
                high: true,
            },
            actions: vec![Command {
                device: light,
                activate: true,
            }],
            text: String::new(),
        };
        let completed = vec![ev(10, motion, true), ev(20, light, true)];
        assert_eq!(trigger_completion(&rule, &completed), 1.0);
        let missing = vec![ev(10, motion, true)];
        assert_eq!(trigger_completion(&rule, &missing), 0.0);
        // Already in the commanded state counts as completed.
        let pre_set = vec![ev(5, light, true), ev(10, motion, true)];
        assert_eq!(trigger_completion(&rule, &pre_set), 1.0);
        // Never-observed trigger defaults to 1.
        assert_eq!(trigger_completion(&rule, &[]), 1.0);
    }

    #[test]
    fn manual_triggers_are_always_consistent() {
        let light = dev(DeviceKind::Light, Location::Kitchen);
        let rule = Rule {
            id: 0,
            platform: Platform::AmazonAlexa,
            trigger: Trigger::Manual,
            actions: vec![Command {
                device: light,
                activate: true,
            }],
            text: String::new(),
        };
        let log = vec![ev(100, light, true)];
        assert_eq!(trigger_consistency(&rule, &log), 1.0);
    }

    #[test]
    fn external_mark_sets_vulnerable() {
        let mut g = offline_graph(5);
        g.label = Some(GraphLabel::benign());
        mark_external_vulnerable(&mut g);
        assert!(g.label.as_ref().unwrap().vulnerable);
    }
}
