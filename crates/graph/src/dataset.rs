//! Graph datasets: generation at paper scale, class-aware Dirichlet
//! splitting across federated clients (§IV-C "Data Distribution
//! Configuration"), and train/test splits.

use crate::builder::{CorpusIndex, FeatureConfig, GraphBuilder};
use crate::corpus::{CorpusConfig, CorpusGenerator};
use crate::graph::InteractionGraph;
use crate::vuln::VulnKind;
use fexiot_tensor::rng::Rng;

/// A set of interaction graphs with labels.
#[derive(Debug, Clone, Default)]
pub struct GraphDataset {
    pub graphs: Vec<InteractionGraph>,
}

impl GraphDataset {
    pub fn new(graphs: Vec<InteractionGraph>) -> Self {
        Self { graphs }
    }

    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Number of graphs labeled vulnerable.
    pub fn vulnerable_count(&self) -> usize {
        self.graphs
            .iter()
            .filter(|g| g.label.as_ref().is_some_and(|l| l.vulnerable))
            .count()
    }

    /// Number of representation classes: benign, the six internal kinds, and
    /// external (attack-induced) vulnerability.
    pub const N_CLASSES: usize = 8;

    /// The fine-grained class of a graph for contrastive training, splitting,
    /// and clustering: 0 = benign, 1..=6 = first detected vulnerability kind,
    /// 7 = external vulnerability (attacked log, no internal kind).
    pub fn class_of(graph: &InteractionGraph) -> usize {
        match graph.label.as_ref() {
            Some(label) if label.vulnerable => match label.kinds.first() {
                Some(&kind) => 1 + VulnKind::ALL.iter().position(|&k| k == kind).unwrap_or(0),
                None => 7,
            },
            _ => 0,
        }
    }

    /// Binary label: 1 = vulnerable, 0 = benign/unknown.
    pub fn binary_label(graph: &InteractionGraph) -> usize {
        usize::from(graph.label.as_ref().is_some_and(|l| l.vulnerable))
    }

    /// Shuffled train/test split.
    pub fn train_test_split(&self, train_frac: f64, rng: &mut Rng) -> (GraphDataset, GraphDataset) {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac out of range");
        let _span = fexiot_obs::span("graph.dataset.split");
        let mut idx: Vec<usize> = (0..self.graphs.len()).collect();
        rng.shuffle(&mut idx);
        let cut = (self.graphs.len() as f64 * train_frac).round() as usize;
        let train = idx[..cut].iter().map(|&i| self.graphs[i].clone()).collect();
        let test = idx[cut..].iter().map(|&i| self.graphs[i].clone()).collect();
        (GraphDataset::new(train), GraphDataset::new(test))
    }

    /// Splits the dataset across `n_clients` by drawing each class's client
    /// marginal from `Dirichlet(alpha)` — the paper's non-i.i.d. simulation.
    /// Small `alpha` concentrates each class on few clients.
    pub fn dirichlet_split(
        &self,
        n_clients: usize,
        alpha: f64,
        rng: &mut Rng,
    ) -> Vec<GraphDataset> {
        assert!(n_clients > 0, "dirichlet_split: zero clients");
        let _span = fexiot_obs::span("graph.dataset.dirichlet_split");
        let mut buckets: Vec<Vec<InteractionGraph>> = vec![Vec::new(); n_clients];
        // Group graph indices by class.
        let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (i, g) in self.graphs.iter().enumerate() {
            by_class.entry(Self::class_of(g)).or_default().push(i);
        }
        let alphas = vec![alpha; n_clients];
        for (_, mut members) in by_class {
            rng.shuffle(&mut members);
            let probs = rng.dirichlet(&alphas);
            // Deterministic proportional allocation of this class's samples.
            let mut starts = vec![0usize; n_clients + 1];
            let total = members.len() as f64;
            let mut acc = 0.0;
            for (c, &p) in probs.iter().enumerate() {
                acc += p;
                starts[c + 1] = (acc * total).round() as usize;
            }
            starts[n_clients] = members.len();
            for c in 0..n_clients {
                for &m in &members[starts[c].min(members.len())..starts[c + 1].min(members.len())] {
                    buckets[c].push(self.graphs[m].clone());
                }
            }
        }
        buckets.into_iter().map(GraphDataset::new).collect()
    }

    /// Statistics row matching the paper's Table I.
    pub fn stats(&self) -> DatasetStats {
        let node_counts: Vec<usize> = self.graphs.iter().map(|g| g.node_count()).collect();
        DatasetStats {
            total: self.graphs.len(),
            vulnerable: self.vulnerable_count(),
            min_nodes: node_counts.iter().copied().min().unwrap_or(0),
            max_nodes: node_counts.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Table-I style statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    pub total: usize,
    pub vulnerable: usize,
    pub min_nodes: usize,
    pub max_nodes: usize,
}

/// End-to-end dataset generation config.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    pub corpus: CorpusConfig,
    pub features: FeatureConfig,
    pub graph_count: usize,
    /// Target fraction of vulnerable graphs (Table I runs ~25-30%). Enforced
    /// by quota sampling: randomly chained graphs are kept according to their
    /// natural label until each side's quota fills.
    pub vulnerable_fraction: f64,
    /// Share of the vulnerable quota filled by explicit pattern injection
    /// (spread evenly over the six kinds); the rest comes from naturally
    /// vulnerable random chains.
    pub injected_share: f64,
    pub min_nodes: usize,
    pub max_nodes: usize,
}

impl DatasetConfig {
    /// Small homogeneous (IFTTT-only) config for tests/examples.
    pub fn small_ifttt() -> Self {
        Self {
            corpus: CorpusConfig::ifttt_only(120),
            features: FeatureConfig::small(),
            graph_count: 120,
            vulnerable_fraction: 0.25,
            injected_share: 0.6,
            min_nodes: 2,
            max_nodes: 12,
        }
    }

    /// Small heterogeneous (5 platforms) config.
    pub fn small_hetero() -> Self {
        Self {
            corpus: CorpusConfig::small(),
            features: FeatureConfig::small(),
            graph_count: 120,
            vulnerable_fraction: 0.25,
            injected_share: 0.6,
            min_nodes: 2,
            max_nodes: 12,
        }
    }

    /// Paper-scale homogeneous dataset (Table I: 6,000 labeled IFTTT graphs,
    /// 2-50 nodes, ~1,473 vulnerable).
    pub fn paper_ifttt() -> Self {
        Self {
            corpus: CorpusConfig::ifttt_only(1535),
            features: FeatureConfig::paper(),
            graph_count: 6000,
            vulnerable_fraction: 1473.0 / 6000.0,
            injected_share: 0.6,
            min_nodes: 2,
            max_nodes: 50,
        }
    }

    /// Paper-scale heterogeneous dataset (Table I: 12,758 labeled graphs).
    pub fn paper_hetero() -> Self {
        Self {
            corpus: CorpusConfig::paper_scale(1.0),
            features: FeatureConfig::paper(),
            graph_count: 12758,
            vulnerable_fraction: 3828.0 / 12758.0,
            injected_share: 0.6,
            min_nodes: 2,
            max_nodes: 50,
        }
    }
}

/// Generates a labeled dataset: random chained graphs plus injected
/// vulnerability patterns in the configured proportion.
pub fn generate_dataset(config: &DatasetConfig, rng: &mut Rng) -> GraphDataset {
    generate_dataset_with(&fexiot_par::pool(), config, rng)
}

/// [`generate_dataset`] on an explicit pool (see
/// [`generate_from_index_with`] for where the parallelism lands).
pub fn generate_dataset_with(
    pool: &fexiot_par::ParPool,
    config: &DatasetConfig,
    rng: &mut Rng,
) -> GraphDataset {
    // `pipeline` is the run-level root span for the data pipeline: corpus
    // generation → NLP featurization/indexing → graph fusion (see DESIGN.md
    // §Observability for the naming convention).
    let _span = fexiot_obs::span("pipeline");
    let mut gen = CorpusGenerator::new();
    let rules = {
        let _s = fexiot_obs::span("pipeline.corpus");
        gen.generate(&config.corpus, rng)
    };
    fexiot_obs::counter_add("graph.corpus.rules", rules.len() as u64);
    let sentences = rules.len();
    let featurize_started =
        fexiot_obs::global_enabled().then(std::time::Instant::now);
    let index = {
        let _s = fexiot_obs::span("pipeline.featurize");
        CorpusIndex::build(rules)
    };
    // Throughput gauge: each corpus rule is one NLP sentence to featurize.
    // The `_per_sec` suffix marks it as wall-clock data, so it is dropped
    // from deterministic exports (see fexiot_obs::is_timing_name).
    if let Some(started) = featurize_started {
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            fexiot_obs::gauge_set(
                "pipeline.featurize.sentences_per_sec",
                sentences as f64 / secs,
            );
        }
    }
    let builder = GraphBuilder::new(config.features);
    let _s = fexiot_obs::span("pipeline.fuse");
    generate_from_index_with(pool, &builder, &index, &mut gen, config, rng)
}

/// Same as [`generate_dataset`] but reusing a prebuilt corpus index (lets
/// callers share one corpus across many datasets/clients).
pub fn generate_from_index(
    builder: &GraphBuilder,
    index: &CorpusIndex,
    gen: &mut CorpusGenerator,
    config: &DatasetConfig,
    rng: &mut Rng,
) -> GraphDataset {
    generate_from_index_with(&fexiot_par::pool(), builder, index, gen, config, rng)
}

/// [`generate_from_index`] on an explicit pool. Sampling decisions (RNG
/// draws, quota acceptance, the final shuffle) stay sequential on the calling
/// thread over *structure-only* graphs; node featurization — the dominant
/// cost, a pure per-graph function consuming no RNG — is deferred to one
/// parallel fill pass over the accepted graphs. The dataset is bit-identical
/// to the historic sample-then-featurize loop at any thread count, and
/// rejected samples no longer pay for embeddings at all.
pub fn generate_from_index_with(
    pool: &fexiot_par::ParPool,
    builder: &GraphBuilder,
    index: &CorpusIndex,
    gen: &mut CorpusGenerator,
    config: &DatasetConfig,
    rng: &mut Rng,
) -> GraphDataset {
    let total = config.graph_count;
    let vuln_quota = (total as f64 * config.vulnerable_fraction).round() as usize;
    let injected_quota = (vuln_quota as f64 * config.injected_share).round() as usize;
    let benign_quota = total - vuln_quota;

    let mut graphs = Vec::with_capacity(total);
    // Injected vulnerable graphs, spread evenly over the six kinds.
    for i in 0..injected_quota {
        let size = rng.range(config.min_nodes, config.max_nodes + 1);
        let kind = VulnKind::ALL[i % VulnKind::ALL.len()];
        graphs.push(builder.sample_vulnerable_structure(kind, index, size, gen, rng));
    }
    // Randomly chained graphs, accepted against the remaining quotas.
    let mut natural_vuln = 0usize;
    let mut benign = 0usize;
    let natural_quota = vuln_quota - injected_quota;
    let mut attempts = 0usize;
    let attempt_cap = total * 30;
    while (natural_vuln < natural_quota || benign < benign_quota) && attempts < attempt_cap {
        attempts += 1;
        let size = rng.range(config.min_nodes, config.max_nodes + 1);
        let g = builder.sample_structure(index, size, rng);
        let vulnerable = g.label.as_ref().is_some_and(|l| l.vulnerable);
        if vulnerable && natural_vuln < natural_quota {
            natural_vuln += 1;
            graphs.push(g);
        } else if !vulnerable && benign < benign_quota {
            benign += 1;
            graphs.push(g);
        }
    }
    // Degenerate corpora may not supply enough of one side before the cap;
    // top up with whatever samples come so the dataset size is honored.
    while graphs.len() < total {
        let size = rng.range(config.min_nodes, config.max_nodes + 1);
        graphs.push(builder.sample_structure(index, size, rng));
    }
    rng.shuffle(&mut graphs);
    // Deferred featurization of the accepted graphs (order-preserving,
    // RNG-free — see the function docs).
    pool.map_mut(&mut graphs, |_, g| builder.fill_features(g));
    fexiot_obs::counter_add("graph.dataset.graphs", graphs.len() as u64);
    GraphDataset::new(graphs)
}

/// Federated data: per-client training sets plus a shared test set.
#[derive(Debug, Clone)]
pub struct FederatedData {
    pub clients: Vec<GraphDataset>,
    pub test: GraphDataset,
}

/// Generates genuinely heterogeneous federated data: clients are grouped
/// into `n_archetypes` household profiles (see [`crate::corpus::archetype`]),
/// each with its own rule corpus; within an archetype, graphs are spread
/// across its clients by a `Dirichlet(alpha)` class split. The shared test
/// set mixes held-out graphs from every archetype.
///
/// This realizes the paper's §III-B2 premise: "there exist several clusters
/// of households, where the graph datasets from each cluster satisfy the
/// i.i.d. property" — the structure the layer-wise clustering discovers.
pub fn generate_federated(
    base: &DatasetConfig,
    n_clients: usize,
    n_archetypes: usize,
    alpha: f64,
    rng: &mut Rng,
) -> FederatedData {
    assert!(n_clients > 0, "generate_federated: zero clients");
    let n_archetypes = n_archetypes.clamp(1, n_clients);
    // Assign clients round-robin to archetypes.
    let clients_of =
        |a: usize| -> Vec<usize> { (0..n_clients).filter(|c| c % n_archetypes == a).collect() };

    let mut client_sets: Vec<GraphDataset> = vec![GraphDataset::default(); n_clients];
    let mut test_graphs = Vec::new();
    for a in 0..n_archetypes {
        let members = clients_of(a);
        if members.is_empty() {
            continue;
        }
        let (locations, actuators) = crate::corpus::archetype(a);
        let mut cfg = base.clone();
        cfg.corpus = cfg.corpus.with_archetype(locations, actuators);
        cfg.graph_count = (base.graph_count * members.len() / n_clients).max(members.len() * 4);
        let ds = generate_dataset(&cfg, rng);
        let (train, test) = ds.train_test_split(0.8, rng);
        test_graphs.extend(test.graphs);
        let splits = train.dirichlet_split(members.len(), alpha, rng);
        for (m, split) in members.into_iter().zip(splits) {
            client_sets[m] = split;
        }
    }
    rng.shuffle(&mut test_graphs);
    FederatedData {
        clients: client_sets,
        test: GraphDataset::new(test_graphs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset(seed: u64) -> GraphDataset {
        let mut rng = Rng::seed_from_u64(seed);
        generate_dataset(&DatasetConfig::small_ifttt(), &mut rng)
    }

    #[test]
    fn dataset_has_requested_size_and_mixed_labels() {
        let ds = small_dataset(1);
        assert_eq!(ds.len(), 120);
        // Quota sampling should land close to the configured 25%.
        let vuln = ds.vulnerable_count();
        assert!(
            (25..=40).contains(&vuln),
            "vulnerable count off-quota: {vuln}"
        );
    }

    #[test]
    fn node_counts_within_bounds() {
        let ds = small_dataset(2);
        let stats = ds.stats();
        assert!(stats.min_nodes >= 1);
        assert!(stats.max_nodes <= 12, "max {}", stats.max_nodes);
    }

    #[test]
    fn dirichlet_split_conserves_graphs() {
        let ds = small_dataset(3);
        let mut rng = Rng::seed_from_u64(4);
        for &alpha in &[0.1, 1.0, 10.0] {
            let clients = ds.dirichlet_split(7, alpha, &mut rng);
            assert_eq!(clients.len(), 7);
            let total: usize = clients.iter().map(GraphDataset::len).sum();
            assert_eq!(total, ds.len(), "alpha {alpha}");
        }
    }

    #[test]
    fn low_alpha_is_more_skewed_than_high_alpha() {
        let ds = small_dataset(5);
        let imbalance = |alpha: f64, seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let clients = ds.dirichlet_split(10, alpha, &mut rng);
            let sizes: Vec<f64> = clients.iter().map(|c| c.len() as f64).collect();
            fexiot_tensor::stats::std_dev(&sizes)
        };
        // Average over several seeds to keep the test stable.
        let low: f64 = (0..5).map(|s| imbalance(0.1, s)).sum::<f64>() / 5.0;
        let high: f64 = (0..5).map(|s| imbalance(50.0, s)).sum::<f64>() / 5.0;
        assert!(
            low > high,
            "low-alpha skew {low} should exceed high-alpha {high}"
        );
    }

    #[test]
    fn train_test_split_partitions() {
        let ds = small_dataset(6);
        let mut rng = Rng::seed_from_u64(7);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(train.len(), 96);
    }

    #[test]
    fn federated_generation_covers_all_clients() {
        let mut rng = Rng::seed_from_u64(21);
        let mut base = DatasetConfig::small_ifttt();
        base.graph_count = 120;
        let fed = generate_federated(&base, 9, 3, 1.0, &mut rng);
        assert_eq!(fed.clients.len(), 9);
        assert!(
            fed.clients.iter().all(|c| !c.is_empty()),
            "empty client dataset"
        );
        assert!(!fed.test.is_empty());
    }

    #[test]
    fn archetypes_shape_device_vocabulary() {
        // Clients of different archetypes should command different device sets.
        let mut rng = Rng::seed_from_u64(22);
        let mut base = DatasetConfig::small_ifttt();
        base.graph_count = 120;
        let fed = generate_federated(&base, 4, 4, 10.0, &mut rng);
        let kinds = |ds: &GraphDataset| -> std::collections::BTreeSet<crate::device::DeviceKind> {
            ds.graphs
                .iter()
                .flat_map(|g| g.nodes.iter())
                .flat_map(|n| n.rule.actions.iter())
                .map(|c| c.device.kind)
                .collect()
        };
        let a = kinds(&fed.clients[0]);
        let b = kinds(&fed.clients[1]);
        assert!(a != b, "archetypes should differ in deployed devices");
    }

    #[test]
    fn generation_is_bit_identical_at_any_thread_count() {
        let gen_with = |threads: usize| {
            let mut rng = Rng::seed_from_u64(11);
            generate_dataset_with(
                &fexiot_par::ParPool::new(threads),
                &DatasetConfig::small_ifttt(),
                &mut rng,
            )
        };
        let base = gen_with(1);
        for threads in [2, 7] {
            let ds = gen_with(threads);
            assert_eq!(ds.graphs.len(), base.graphs.len());
            for (g, bg) in ds.graphs.iter().zip(&base.graphs) {
                assert_eq!(g.edges, bg.edges, "threads={threads}");
                assert_eq!(g.label, bg.label, "threads={threads}");
                for (n, bn) in g.nodes.iter().zip(&bg.nodes) {
                    let bits =
                        |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                    assert_eq!(
                        bits(&n.features),
                        bits(&bn.features),
                        "threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn classes_cover_benign_and_kinds() {
        let ds = small_dataset(8);
        let classes: std::collections::BTreeSet<usize> =
            ds.graphs.iter().map(GraphDataset::class_of).collect();
        assert!(classes.contains(&0), "no benign class");
        assert!(classes.len() >= 4, "too few classes: {classes:?}");
    }
}
