//! Synthetic rule-corpus generation for the five platforms.
//!
//! Substitutes the paper's crawled corpora (185 SmartThings apps, 574 Home
//! Assistant blueprints, 316k IFTTT applets, Google Assistant and Alexa
//! command sets). Rules are sampled from the structured semantics in
//! [`crate::rule`] and rendered into each platform's characteristic phrasing,
//! so the NLP pipeline faces the same heterogeneity the paper describes:
//! conditional sentences for app platforms, terse imperative commands for the
//! voice assistants.

use crate::device::{Channel, Device, DeviceKind, Location};
use crate::rule::{command_phrase, dev, trigger_phrase, Command, Platform, Rule, Trigger};
use fexiot_tensor::rng::Rng;

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of rules to generate per platform.
    pub rules_per_platform: Vec<(Platform, usize)>,
    /// Probability that a rule has a second action command.
    pub multi_action_prob: f64,
    /// Probability that a trigger is channel-based rather than device-based.
    pub channel_trigger_prob: f64,
    /// Locations devices may be placed in (empty = all). Household
    /// archetypes restrict this to create genuine federated heterogeneity.
    pub location_pool: Vec<Location>,
    /// Actuator kinds the household deploys (empty = all).
    pub actuator_pool: Vec<DeviceKind>,
}

impl CorpusConfig {
    /// A small default corpus for tests and quick examples.
    pub fn small() -> Self {
        Self {
            rules_per_platform: vec![
                (Platform::SmartThings, 60),
                (Platform::HomeAssistant, 60),
                (Platform::Ifttt, 120),
                (Platform::GoogleAssistant, 40),
                (Platform::AmazonAlexa, 40),
            ],
            multi_action_prob: 0.35,
            channel_trigger_prob: 0.45,
            location_pool: Vec::new(),
            actuator_pool: Vec::new(),
        }
    }

    /// Proportions mirroring the paper's Table I crawl scales (scaled down by
    /// `scale`; `scale = 1.0` approximates the paper's usable rule counts).
    pub fn paper_scale(scale: f64) -> Self {
        let n = |base: usize| ((base as f64 * scale).round() as usize).max(8);
        Self {
            rules_per_platform: vec![
                (Platform::SmartThings, n(185)),
                (Platform::HomeAssistant, n(574)),
                (Platform::Ifttt, n(1535)),
                (Platform::GoogleAssistant, n(480)),
                (Platform::AmazonAlexa, n(320)),
            ],
            multi_action_prob: 0.35,
            channel_trigger_prob: 0.45,
            location_pool: Vec::new(),
            actuator_pool: Vec::new(),
        }
    }

    /// Only the IFTTT platform (the paper's homogeneous dataset).
    pub fn ifttt_only(rules: usize) -> Self {
        Self {
            rules_per_platform: vec![(Platform::Ifttt, rules)],
            multi_action_prob: 0.35,
            channel_trigger_prob: 0.45,
            location_pool: Vec::new(),
            actuator_pool: Vec::new(),
        }
    }

    /// Restricts the corpus to a household archetype: a subset of rooms and
    /// preferred actuator kinds. Used by the federated dataset generator to
    /// create genuinely heterogeneous clients (paper §III-B2: "there exist
    /// several clusters of households" with i.i.d. data inside each).
    pub fn with_archetype(mut self, locations: Vec<Location>, actuators: Vec<DeviceKind>) -> Self {
        self.location_pool = locations;
        self.actuator_pool = actuators;
        self
    }

    pub fn total_rules(&self) -> usize {
        self.rules_per_platform.iter().map(|(_, n)| n).sum()
    }
}

/// Generates rule corpora with ground-truth semantics.
pub struct CorpusGenerator {
    next_id: u32,
}

impl CorpusGenerator {
    pub fn new() -> Self {
        Self { next_id: 0 }
    }

    /// Generates the full corpus described by `config`.
    pub fn generate(&mut self, config: &CorpusConfig, rng: &mut Rng) -> Vec<Rule> {
        let mut rules = Vec::with_capacity(config.total_rules());
        for &(platform, count) in &config.rules_per_platform {
            for _ in 0..count {
                rules.push(self.generate_rule(platform, config, rng));
            }
        }
        rules
    }

    /// Generates one random rule for `platform`.
    pub fn generate_rule(
        &mut self,
        platform: Platform,
        config: &CorpusConfig,
        rng: &mut Rng,
    ) -> Rule {
        let trigger = self.random_trigger(platform, config, rng);
        let mut actions = vec![self.random_command(config, rng)];
        if rng.bool(config.multi_action_prob) {
            let second = self.random_command(config, rng);
            if second.device != actions[0].device {
                actions.push(second);
            }
        }
        self.build_rule(platform, trigger, actions)
    }

    /// Builds a rule with explicit semantics (used by the vulnerability
    /// injectors to construct specific patterns).
    pub fn build_rule(
        &mut self,
        platform: Platform,
        trigger: Trigger,
        actions: Vec<Command>,
    ) -> Rule {
        let id = self.next_id;
        self.next_id += 1;
        let text = render_text(platform, &trigger, &actions);
        Rule {
            id,
            platform,
            trigger,
            actions,
            text,
        }
    }

    /// Next id that will be assigned (used by injectors to reserve blocks).
    pub fn peek_next_id(&self) -> u32 {
        self.next_id
    }

    /// Skips `count` ids (reserving them for externally-built rules).
    pub fn advance_ids(&mut self, count: u32) {
        self.next_id += count;
    }

    fn random_trigger(
        &mut self,
        platform: Platform,
        config: &CorpusConfig,
        rng: &mut Rng,
    ) -> Trigger {
        // Voice assistants are predominantly manually invoked.
        if matches!(platform, Platform::GoogleAssistant | Platform::AmazonAlexa) && rng.bool(0.5) {
            return Trigger::Manual;
        }
        if rng.bool(0.06) {
            return Trigger::Time {
                hour: rng.range(0, 24) as u8,
            };
        }
        if rng.bool(config.channel_trigger_prob) {
            let channel = *rng.choose(&Channel::ALL);
            let location = pick_location(config, rng);
            // Hazard channels trigger on detection (high) almost always.
            let high = match channel {
                Channel::Smoke | Channel::Co | Channel::Water | Channel::Motion => rng.bool(0.9),
                _ => rng.bool(0.5),
            };
            Trigger::ChannelLevel {
                channel,
                location,
                high,
            }
        } else {
            let device = self.random_device(config, rng);
            Trigger::DeviceState {
                device,
                active: rng.bool(0.55),
            }
        }
    }

    fn random_device(&mut self, config: &CorpusConfig, rng: &mut Rng) -> Device {
        // Triggers can come from sensors or actuator state changes.
        let kind = if rng.bool(0.3) {
            *rng.choose(&DeviceKind::SENSORS)
        } else {
            pick_actuator(config, rng)
        };
        dev(kind, pick_location(config, rng))
    }

    fn random_command(&mut self, config: &CorpusConfig, rng: &mut Rng) -> Command {
        Command {
            device: dev(pick_actuator(config, rng), pick_location(config, rng)),
            activate: rng.bool(0.6),
        }
    }
}

impl Default for CorpusGenerator {
    fn default() -> Self {
        Self::new()
    }
}

fn pick_location(config: &CorpusConfig, rng: &mut Rng) -> Location {
    if config.location_pool.is_empty() {
        *rng.choose(&Location::ALL)
    } else {
        *rng.choose(&config.location_pool)
    }
}

fn pick_actuator(config: &CorpusConfig, rng: &mut Rng) -> DeviceKind {
    if config.actuator_pool.is_empty() {
        *rng.choose(&DeviceKind::ACTUATORS)
    } else {
        *rng.choose(&config.actuator_pool)
    }
}

/// The household archetypes used for federated heterogeneity: each archetype
/// is a coherent home profile (rooms + device emphasis). Clients assigned the
/// same archetype have approximately i.i.d. data; across archetypes the
/// distributions genuinely differ — exactly the structure Alg. 1 clusters on.
pub fn archetype(index: usize) -> (Vec<Location>, Vec<DeviceKind>) {
    use DeviceKind as K;
    use Location as L;
    match index % 4 {
        0 => (
            // Climate-focused apartment.
            vec![L::LivingRoom, L::Bedroom, L::Kitchen],
            vec![
                K::Thermostat,
                K::Heater,
                K::AirConditioner,
                K::Fan,
                K::Humidifier,
                K::Dehumidifier,
                K::Window,
                K::Light,
            ],
        ),
        1 => (
            // Security-focused house.
            vec![L::Hallway, L::Garage, L::LivingRoom, L::Basement],
            vec![
                K::Lock,
                K::Door,
                K::Camera,
                K::Alarm,
                K::GarageDoor,
                K::Light,
            ],
        ),
        2 => (
            // Entertainment / convenience home.
            vec![L::LivingRoom, L::Bedroom, L::Bathroom],
            vec![
                K::Tv,
                K::Speaker,
                K::Light,
                K::Blind,
                K::Plug,
                K::CoffeeMaker,
                K::Vacuum,
            ],
        ),
        _ => (
            // Utility / garden home.
            vec![L::Kitchen, L::Garden, L::Basement],
            vec![
                K::WaterValve,
                K::Sprinkler,
                K::Washer,
                K::Dryer,
                K::Oven,
                K::Plug,
                K::Light,
            ],
        ),
    }
}

/// Renders the rule description in the platform's characteristic style.
pub fn render_text(platform: Platform, trigger: &Trigger, actions: &[Command]) -> String {
    let action_text = actions
        .iter()
        .map(command_phrase)
        .collect::<Vec<_>>()
        .join(" and ");
    let action_text = capitalize(&action_text);
    match platform {
        Platform::SmartThings => match trigger {
            Trigger::Manual => format!("{action_text} when I tap the app"),
            t => format!("{action_text} if {}", trigger_phrase(t)),
        },
        Platform::HomeAssistant => match trigger {
            Trigger::Manual => format!("{action_text} on manual trigger"),
            t => format!(
                "When {} then {}",
                trigger_phrase(t),
                action_text.to_lowercase()
            ),
        },
        Platform::Ifttt => match trigger {
            Trigger::Manual => format!("If I press the button then {}", action_text.to_lowercase()),
            t => format!(
                "If {} then {}",
                trigger_phrase(t),
                action_text.to_lowercase()
            ),
        },
        Platform::GoogleAssistant => match trigger {
            Trigger::Manual => format!("Hey Google {}", action_text.to_lowercase()),
            t => format!(
                "Hey Google {} when {}",
                action_text.to_lowercase(),
                trigger_phrase(t)
            ),
        },
        Platform::AmazonAlexa => match trigger {
            Trigger::Manual => format!("Alexa {}", action_text.to_lowercase()),
            t => format!(
                "Alexa {} when {}",
                action_text.to_lowercase(),
                trigger_phrase(t)
            ),
        },
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_match_config() {
        let mut rng = Rng::seed_from_u64(1);
        let config = CorpusConfig::small();
        let rules = CorpusGenerator::new().generate(&config, &mut rng);
        assert_eq!(rules.len(), config.total_rules());
        for p in Platform::ALL {
            let expected = config
                .rules_per_platform
                .iter()
                .find(|(q, _)| *q == p)
                .unwrap()
                .1;
            assert_eq!(rules.iter().filter(|r| r.platform == p).count(), expected);
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut rng = Rng::seed_from_u64(2);
        let rules = CorpusGenerator::new().generate(&CorpusConfig::small(), &mut rng);
        let mut ids: Vec<u32> = rules.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rules.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            CorpusGenerator::new().generate(&CorpusConfig::small(), &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn platform_phrasing_differs() {
        let trigger = Trigger::ChannelLevel {
            channel: Channel::Smoke,
            location: Location::Kitchen,
            high: true,
        };
        let actions = vec![Command {
            device: dev(DeviceKind::WaterValve, Location::Kitchen),
            activate: true,
        }];
        let st = render_text(Platform::SmartThings, &trigger, &actions);
        let ifttt = render_text(Platform::Ifttt, &trigger, &actions);
        let alexa = render_text(Platform::AmazonAlexa, &trigger, &actions);
        assert!(st.contains("if smoke is detected"), "{st}");
        assert!(ifttt.starts_with("If smoke is detected"), "{ifttt}");
        assert!(alexa.starts_with("Alexa"), "{alexa}");
    }

    #[test]
    fn some_rules_have_multiple_actions() {
        let mut rng = Rng::seed_from_u64(3);
        let rules = CorpusGenerator::new().generate(&CorpusConfig::small(), &mut rng);
        assert!(rules.iter().any(|r| r.actions.len() > 1));
    }

    #[test]
    fn corpus_contains_correlated_pairs() {
        // Ground truth must be non-degenerate: some pairs correlate, most do not.
        let mut rng = Rng::seed_from_u64(4);
        let rules = CorpusGenerator::new().generate(&CorpusConfig::small(), &mut rng);
        let mut positives = 0usize;
        let mut total = 0usize;
        for a in &rules {
            for b in &rules {
                if a.id != b.id {
                    total += 1;
                    if a.can_trigger(b) {
                        positives += 1;
                    }
                }
            }
        }
        assert!(positives > 0, "no correlated pairs in corpus");
        assert!(
            (positives as f64) < 0.2 * total as f64,
            "too many correlations: {positives}/{total}"
        );
    }
}
