//! External attack simulation (paper §IV-A, following HAWatcher): five log
//! tampering attacks that create *external* graph vulnerabilities. Each attack
//! is a pure mutator over a raw event log.

use crate::device::Device;
use crate::events::{EventRecord, EventValue};
use fexiot_tensor::rng::Rng;

/// The five attack types from HAWatcher that the paper injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackKind {
    /// Forged sensor events for things that never happened.
    FakeEvents,
    /// Forged device-command state changes with no rule cause.
    FakeCommands,
    /// Real commands whose log records are suppressed (state changes silently).
    StealthyCommands,
    /// Commands that are logged as executed but the device never changed.
    CommandFailure,
    /// Random loss of legitimate event records.
    EventLosses,
}

impl AttackKind {
    pub const ALL: [AttackKind; 5] = [
        AttackKind::FakeEvents,
        AttackKind::FakeCommands,
        AttackKind::StealthyCommands,
        AttackKind::CommandFailure,
        AttackKind::EventLosses,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AttackKind::FakeEvents => "fake events",
            AttackKind::FakeCommands => "fake commands",
            AttackKind::StealthyCommands => "stealthy commands",
            AttackKind::CommandFailure => "command failure",
            AttackKind::EventLosses => "event losses",
        }
    }
}

/// Applies `kind` to the log with the given intensity (fraction of records
/// touched/injected, in `(0, 1]`). Returns the tampered log, time-ordered.
pub fn apply_attack(
    kind: AttackKind,
    log: &[EventRecord],
    intensity: f64,
    rng: &mut Rng,
) -> Vec<EventRecord> {
    assert!(
        intensity > 0.0 && intensity <= 1.0,
        "intensity out of (0,1]"
    );
    let mut out: Vec<EventRecord> = match kind {
        AttackKind::FakeEvents => {
            let mut out = log.to_vec();
            let devices = sensor_devices(log);
            if !devices.is_empty() {
                let count = ((log.len() as f64 * intensity) as usize).max(1);
                let max_t = log.last().map_or(100, |e| e.time);
                for _ in 0..count {
                    let device = *rng.choose(&devices);
                    let (on_word, off_word) = device.kind.state_words();
                    out.push(EventRecord {
                        time: rng.usize(max_t as usize + 1) as u64,
                        device,
                        attribute: "reading",
                        value: EventValue::State(
                            if rng.bool(0.7) { on_word } else { off_word }.to_string(),
                        ),
                    });
                }
            }
            out
        }
        AttackKind::FakeCommands => {
            let mut out = log.to_vec();
            let devices = actuator_devices(log);
            if !devices.is_empty() {
                let count = ((log.len() as f64 * intensity) as usize).max(1);
                let max_t = log.last().map_or(100, |e| e.time);
                for _ in 0..count {
                    let device = *rng.choose(&devices);
                    let (on_word, off_word) = device.kind.state_words();
                    out.push(EventRecord {
                        time: rng.usize(max_t as usize + 1) as u64,
                        device,
                        attribute: "state",
                        value: EventValue::State(
                            if rng.bool(0.5) { on_word } else { off_word }.to_string(),
                        ),
                    });
                }
            }
            out
        }
        AttackKind::StealthyCommands => {
            // Suppress a fraction of actuator state-change records.
            log.iter()
                .filter(|e| !(e.attribute == "state" && rng.bool(intensity)))
                .cloned()
                .collect()
        }
        AttackKind::CommandFailure => {
            // A fraction of state changes never happened: revert the recorded
            // value to the device's opposite state word.
            log.iter()
                .map(|e| {
                    if e.attribute == "state" && rng.bool(intensity) {
                        let mut e = e.clone();
                        if let EventValue::State(s) = &e.value {
                            let (on_word, off_word) = e.device.kind.state_words();
                            let flipped = if s == on_word { off_word } else { on_word };
                            e.value = EventValue::State(flipped.to_string());
                        }
                        e
                    } else {
                        e.clone()
                    }
                })
                .collect()
        }
        AttackKind::EventLosses => log
            .iter()
            .filter(|_| !rng.bool(intensity))
            .cloned()
            .collect(),
    };
    out.sort_by_key(|e| e.time);
    out
}

fn sensor_devices(log: &[EventRecord]) -> Vec<Device> {
    let mut ds: Vec<Device> = log
        .iter()
        .map(|e| e.device)
        .filter(|d| d.kind.is_sensor())
        .collect();
    ds.sort_unstable();
    ds.dedup();
    ds
}

fn actuator_devices(log: &[EventRecord]) -> Vec<Device> {
    let mut ds: Vec<Device> = log
        .iter()
        .map(|e| e.device)
        .filter(|d| !d.kind.is_sensor())
        .collect();
    ds.sort_unstable();
    ds.dedup();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind as K, Location as L};
    use crate::rule::dev;

    fn sample_log() -> Vec<EventRecord> {
        let motion = dev(K::MotionSensor, L::Kitchen);
        let light = dev(K::Light, L::Kitchen);
        (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    EventRecord {
                        time: i,
                        device: motion,
                        attribute: "reading",
                        value: EventValue::State(
                            if i % 4 == 0 { "active" } else { "inactive" }.into(),
                        ),
                    }
                } else {
                    EventRecord {
                        time: i,
                        device: light,
                        attribute: "state",
                        value: EventValue::State(if i % 4 == 1 { "on" } else { "off" }.into()),
                    }
                }
            })
            .collect()
    }

    #[test]
    fn fake_events_grow_the_log() {
        let log = sample_log();
        let mut rng = Rng::seed_from_u64(1);
        let attacked = apply_attack(AttackKind::FakeEvents, &log, 0.2, &mut rng);
        assert!(attacked.len() > log.len());
        assert!(attacked.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn event_losses_shrink_the_log() {
        let log = sample_log();
        let mut rng = Rng::seed_from_u64(2);
        let attacked = apply_attack(AttackKind::EventLosses, &log, 0.5, &mut rng);
        assert!(attacked.len() < log.len());
    }

    #[test]
    fn stealthy_commands_remove_only_state_records() {
        let log = sample_log();
        let mut rng = Rng::seed_from_u64(3);
        let attacked = apply_attack(AttackKind::StealthyCommands, &log, 1.0, &mut rng);
        assert!(attacked.iter().all(|e| e.attribute != "state"));
        let readings = log.iter().filter(|e| e.attribute == "reading").count();
        assert_eq!(attacked.len(), readings);
    }

    #[test]
    fn command_failure_flips_states() {
        let log = sample_log();
        let mut rng = Rng::seed_from_u64(4);
        let attacked = apply_attack(AttackKind::CommandFailure, &log, 1.0, &mut rng);
        assert_eq!(attacked.len(), log.len());
        let flipped = log
            .iter()
            .zip(&attacked)
            .filter(|(a, b)| a.attribute == "state" && a.value != b.value)
            .count();
        assert!(flipped > 0);
    }

    #[test]
    fn fake_commands_target_actuators() {
        let log = sample_log();
        let mut rng = Rng::seed_from_u64(5);
        let attacked = apply_attack(AttackKind::FakeCommands, &log, 0.3, &mut rng);
        let added = attacked.len() - log.len();
        assert!(added > 0);
        // All injected records must be actuator state records.
        let injected: Vec<&EventRecord> = attacked.iter().filter(|e| !log.contains(e)).collect();
        assert!(injected.iter().all(|e| !e.device.kind.is_sensor()));
    }
}
