//! Event-log simulation and cleaning (paper §III-A2, §IV-A).
//!
//! Substitutes the paper's one-week testbed deployment: a discrete-event
//! simulator runs a home's rule set against stochastic environment stimuli and
//! emits raw event logs with the same noise the paper's cleaner must handle —
//! periodic repeated sensor readings, execution-error records, and numeric
//! readings where rules speak in logical levels. The cleaner removes the
//! noise and Jenks-discretizes numeric values.

use crate::device::{Channel, Device, DeviceKind, Location};
use crate::rule::{Rule, Trigger};
use fexiot_nlp::jenks;
use fexiot_tensor::rng::Rng;
use std::collections::BTreeMap;

/// Value carried by one raw event record.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// A device state word ("on", "locked", "wet").
    State(String),
    /// A numeric sensor reading.
    Numeric(f64),
    /// An execution-error record (noise).
    Error(String),
}

/// One raw event-log record: timestamp, device, attribute, value.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Seconds since simulation start.
    pub time: u64,
    pub device: Device,
    pub attribute: &'static str,
    pub value: EventValue,
}

/// A cleaned event: state changes only, numeric readings discretized.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanEvent {
    pub time: u64,
    pub device: Device,
    /// Logical state word after cleaning.
    pub state: String,
    /// Whether the state corresponds to the device's "active" polarity.
    pub active: bool,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated duration in seconds.
    pub duration: u64,
    /// Mean seconds between external stimuli (motion, smoke, leaks...).
    pub stimulus_interval: u64,
    /// Period of noisy repeated sensor reports.
    pub report_interval: u64,
    /// Probability a command execution errors out (logged as noise).
    pub error_prob: f64,
}

impl SimConfig {
    /// A compressed "one week" at coarse resolution for tests and benches.
    pub fn short() -> Self {
        Self {
            duration: 3_600,
            stimulus_interval: 120,
            report_interval: 300,
            error_prob: 0.03,
        }
    }

    /// Paper-scale week of logs.
    pub fn week() -> Self {
        Self {
            duration: 7 * 24 * 3_600,
            stimulus_interval: 900,
            report_interval: 600,
            error_prob: 0.03,
        }
    }
}

/// Discrete-event smart-home simulator.
pub struct HomeSimulator {
    pub rules: Vec<Rule>,
    /// Current activation state per device.
    device_state: BTreeMap<Device, bool>,
    /// Channel levels per (channel, location), in arbitrary units around 0.
    channel_level: BTreeMap<(Channel, Location), f64>,
    /// Channel/location pairs the deployed rules actually observe; external
    /// stimuli are biased toward these so the log is eventful.
    watched: Vec<(Channel, Location)>,
}

impl HomeSimulator {
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut device_state = BTreeMap::new();
        let mut watched = Vec::new();
        for r in &rules {
            for c in &r.actions {
                device_state.entry(c.device).or_insert(false);
            }
            match r.trigger {
                Trigger::DeviceState { device, .. } => {
                    device_state.entry(device).or_insert(false);
                }
                Trigger::ChannelLevel {
                    channel, location, ..
                } => {
                    // A rule watching a channel implies the home has the
                    // matching sensor installed there.
                    let sensor = Device::new(DeviceKind::sensor_for_channel(channel), location);
                    device_state.entry(sensor).or_insert(false);
                    if !watched.contains(&(channel, location)) {
                        watched.push((channel, location));
                    }
                }
                _ => {}
            }
        }
        Self {
            rules,
            device_state,
            channel_level: BTreeMap::new(),
            watched,
        }
    }

    /// Runs the simulation and returns the raw event log, time-ordered.
    ///
    /// Stimuli follow a per-home *routine* (a repeating cycle of channel
    /// pokes — residents have habits) with occasional random deviations, so
    /// normal logs carry learnable sequential structure.
    pub fn run(&mut self, config: &SimConfig, rng: &mut Rng) -> Vec<EventRecord> {
        let mut log = Vec::new();
        let mut t: u64 = 0;
        let mut next_report: u64 = config.report_interval;
        // Build the home's routine: a short cycle over the watched channels.
        let routine: Vec<(Channel, Location, f64)> = (0..6)
            .map(|_| {
                let (c, l) = if !self.watched.is_empty() && rng.bool(0.8) {
                    *rng.choose(&self.watched)
                } else {
                    (*rng.choose(&Channel::ALL), *rng.choose(&Location::ALL))
                };
                (c, l, if rng.bool(0.6) { 1.0 } else { -1.0 })
            })
            .collect();
        let mut routine_at = 0usize;
        while t < config.duration {
            let dt = 1 + rng.usize(config.stimulus_interval as usize * 2) as u64;
            t += dt;
            if t >= config.duration {
                break;
            }
            // Mostly follow the routine; sometimes act spontaneously.
            let (channel, location, delta) = if rng.bool(0.75) {
                let item = routine[routine_at % routine.len()];
                routine_at += 1;
                item
            } else if !self.watched.is_empty() && rng.bool(0.7) {
                let (c, l) = *rng.choose(&self.watched);
                (c, l, if rng.bool(0.6) { 1.0 } else { -1.0 })
            } else {
                (
                    *rng.choose(&Channel::ALL),
                    *rng.choose(&Location::ALL),
                    if rng.bool(0.6) { 1.0 } else { -1.0 },
                )
            };
            self.bump_channel(
                channel,
                location,
                delta * rng.uniform(0.8, 1.6),
                t,
                &mut log,
                rng,
            );

            // Periodic noisy sensor reports (repeated readings the cleaner drops).
            while next_report <= t {
                self.emit_periodic_reports(next_report, &mut log, rng);
                next_report += config.report_interval;
            }

            // Fire the rule engine to a fixed point (bounded cascade depth).
            self.fire_rules(t, config, &mut log, rng);
        }
        log.sort_by_key(|e| e.time);
        log
    }

    fn bump_channel(
        &mut self,
        channel: Channel,
        location: Location,
        delta: f64,
        t: u64,
        log: &mut Vec<EventRecord>,
        rng: &mut Rng,
    ) {
        let level = self.channel_level.entry((channel, location)).or_insert(0.0);
        *level = (*level + delta).clamp(-3.0, 3.0);
        self.report_channel(channel, location, t, log, rng);
    }

    /// Sensors observing `channel` at `location` report its current level —
    /// whether the change came from an external stimulus or a device's
    /// physical side effect.
    fn report_channel(
        &mut self,
        channel: Channel,
        location: Location,
        t: u64,
        log: &mut Vec<EventRecord>,
        rng: &mut Rng,
    ) {
        let level = self
            .channel_level
            .get(&(channel, location))
            .copied()
            .unwrap_or(0.0);
        let sensors: Vec<Device> = self
            .device_state
            .keys()
            .filter(|d| d.location == location && d.kind.sense_channel() == Some(channel))
            .copied()
            .collect();
        for s in sensors {
            let record = if s.kind.numeric_readings() {
                // Numeric reading (e.g. "humidity is 32"): affine map of level.
                EventValue::Numeric(50.0 + 15.0 * level + rng.normal(0.0, 1.0))
            } else {
                let (on_word, off_word) = s.kind.state_words();
                EventValue::State(if level > 0.5 { on_word } else { off_word }.to_string())
            };
            log.push(EventRecord {
                time: t,
                device: s,
                attribute: "reading",
                value: record,
            });
            let active = level > 0.5;
            self.device_state.insert(s, active);
        }
    }

    fn emit_periodic_reports(&self, t: u64, log: &mut Vec<EventRecord>, rng: &mut Rng) {
        for (&device, &state) in &self.device_state {
            if device.kind.is_sensor() && rng.bool(0.5) {
                let value = if device.kind.numeric_readings() {
                    let level = self
                        .channel_level
                        .get(&(
                            device.kind.sense_channel().unwrap_or(Channel::Power),
                            device.location,
                        ))
                        .copied()
                        .unwrap_or(0.0);
                    EventValue::Numeric(50.0 + 15.0 * level + rng.normal(0.0, 1.0))
                } else {
                    let (on_word, off_word) = device.kind.state_words();
                    EventValue::State(if state { on_word } else { off_word }.to_string())
                };
                log.push(EventRecord {
                    time: t,
                    device,
                    attribute: "periodic",
                    value,
                });
            }
        }
    }

    fn fire_rules(
        &mut self,
        t: u64,
        config: &SimConfig,
        log: &mut Vec<EventRecord>,
        rng: &mut Rng,
    ) {
        for depth in 0..6u64 {
            let mut fired = false;
            let satisfied: Vec<usize> = (0..self.rules.len())
                .filter(|&i| self.trigger_satisfied(&self.rules[i].trigger))
                .collect();
            for i in satisfied {
                let actions = self.rules[i].actions.clone();
                for cmd in actions {
                    let current = self.device_state.get(&cmd.device).copied().unwrap_or(false);
                    if current == cmd.activate {
                        continue; // Already in the commanded state.
                    }
                    let ts = t + depth + 1;
                    if rng.bool(config.error_prob) {
                        // Execution error: logged, state unchanged (noise).
                        log.push(EventRecord {
                            time: ts,
                            device: cmd.device,
                            attribute: "command",
                            value: EventValue::Error("execution failed".to_string()),
                        });
                        continue;
                    }
                    self.device_state.insert(cmd.device, cmd.activate);
                    let (on_word, off_word) = cmd.device.kind.state_words();
                    log.push(EventRecord {
                        time: ts,
                        device: cmd.device,
                        attribute: "state",
                        value: EventValue::State(
                            if cmd.activate { on_word } else { off_word }.to_string(),
                        ),
                    });
                    // Physical side effects propagate to channels, and the
                    // sensors watching those channels report the change.
                    for (ch, dir) in cmd.device.kind.channel_effects(cmd.activate) {
                        let level = self
                            .channel_level
                            .entry((ch, cmd.device.location))
                            .or_insert(0.0);
                        *level = (*level + 0.7 * dir as f64).clamp(-3.0, 3.0);
                        self.report_channel(ch, cmd.device.location, ts, log, rng);
                    }
                    fired = true;
                }
            }
            if !fired {
                break;
            }
        }
    }

    fn trigger_satisfied(&self, trigger: &Trigger) -> bool {
        match *trigger {
            Trigger::DeviceState { device, active } => {
                self.device_state.get(&device).copied().unwrap_or(false) == active
            }
            Trigger::ChannelLevel {
                channel,
                location,
                high,
            } => {
                // Platforms consume binary sensor states, so the engine uses
                // the same threshold the sensors report with (level > 0.5 =
                // "high"/"detected"; anything else reads as low).
                let level = self
                    .channel_level
                    .get(&(channel, location))
                    .copied()
                    .unwrap_or(0.0);
                if high {
                    level > 0.5
                } else {
                    level <= 0.5
                }
            }
            Trigger::Time { .. } | Trigger::Manual => false,
        }
    }

    /// Current activation state of a device (for tests).
    pub fn device_state(&self, device: Device) -> Option<bool> {
        self.device_state.get(&device).copied()
    }
}

/// Cleans a raw log (paper §III-A2): drops execution errors, deduplicates
/// repeated readings that do not change device state, and discretizes numeric
/// readings into logical levels with Jenks natural breaks.
pub fn clean_log(raw: &[EventRecord]) -> Vec<CleanEvent> {
    // Collect numeric readings per device for Jenks break computation.
    let mut numeric: BTreeMap<Device, Vec<f64>> = BTreeMap::new();
    for e in raw {
        if let EventValue::Numeric(v) = e.value {
            numeric.entry(e.device).or_default().push(v);
        }
    }
    let breaks: BTreeMap<Device, Vec<f64>> = numeric
        .iter()
        .map(|(d, vals)| (*d, jenks::jenks_breaks(vals, 2)))
        .collect();

    let mut last_state: BTreeMap<Device, String> = BTreeMap::new();
    let mut out = Vec::new();
    for e in raw {
        let state = match &e.value {
            EventValue::Error(_) => continue, // Execution errors are noise.
            EventValue::State(s) => s.clone(),
            EventValue::Numeric(v) => {
                let class =
                    jenks::classify(*v, breaks.get(&e.device).map_or(&[], |b| b.as_slice()));
                jenks::level_name(class, 2).to_string()
            }
        };
        // Repetitive readings that do not change the state are noise.
        if last_state.get(&e.device) == Some(&state) {
            continue;
        }
        last_state.insert(e.device, state.clone());
        let active = is_active_word(e.device.kind, &state);
        out.push(CleanEvent {
            time: e.time,
            device: e.device,
            state,
            active,
        });
    }
    out
}

/// Maps a state word to the device's activation polarity.
fn is_active_word(kind: DeviceKind, word: &str) -> bool {
    let (on_word, _) = kind.state_words();
    word == on_word
        || matches!(
            word,
            "high" | "on" | "active" | "open" | "detected" | "wet" | "unlocked"
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{dev, Command, Platform};

    fn smoke_rules() -> Vec<Rule> {
        // smoke -> valve open; water flow -> valve close (the paper's intro example).
        vec![
            Rule {
                id: 0,
                platform: Platform::SmartThings,
                trigger: Trigger::ChannelLevel {
                    channel: Channel::Smoke,
                    location: Location::Kitchen,
                    high: true,
                },
                actions: vec![Command {
                    device: dev(DeviceKind::WaterValve, Location::Kitchen),
                    activate: true,
                }],
                text: String::new(),
            },
            Rule {
                id: 1,
                platform: Platform::SmartThings,
                trigger: Trigger::ChannelLevel {
                    channel: Channel::Water,
                    location: Location::Kitchen,
                    high: true,
                },
                actions: vec![Command {
                    device: dev(DeviceKind::WaterValve, Location::Kitchen),
                    activate: false,
                }],
                text: String::new(),
            },
        ]
    }

    #[test]
    fn simulation_produces_ordered_log() {
        let mut sim = HomeSimulator::new(smoke_rules());
        let mut rng = Rng::seed_from_u64(1);
        let log = sim.run(&SimConfig::short(), &mut rng);
        assert!(!log.is_empty());
        assert!(log.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn log_contains_noise_types() {
        let mut rules = smoke_rules();
        // Add a numeric-reading sensor to exercise Jenks cleaning.
        rules.push(Rule {
            id: 2,
            platform: Platform::SmartThings,
            trigger: Trigger::DeviceState {
                device: dev(DeviceKind::LeakSensor, Location::Kitchen),
                active: true,
            },
            actions: vec![Command {
                device: dev(DeviceKind::Fan, Location::Kitchen),
                activate: true,
            }],
            text: String::new(),
        });
        let mut sim = HomeSimulator::new(rules);
        let mut rng = Rng::seed_from_u64(2);
        let mut cfg = SimConfig::short();
        cfg.duration = 60_000;
        cfg.error_prob = 0.5;
        let log = sim.run(&cfg, &mut rng);
        assert!(
            log.iter()
                .any(|e| matches!(e.value, EventValue::Numeric(_))),
            "no numeric readings"
        );
        assert!(
            log.iter().any(|e| matches!(e.value, EventValue::Error(_))),
            "no error noise"
        );
    }

    #[test]
    fn cleaner_removes_errors_and_duplicates() {
        let d = dev(DeviceKind::Light, Location::Kitchen);
        let raw = vec![
            EventRecord {
                time: 1,
                device: d,
                attribute: "state",
                value: EventValue::State("on".into()),
            },
            EventRecord {
                time: 2,
                device: d,
                attribute: "periodic",
                value: EventValue::State("on".into()),
            },
            EventRecord {
                time: 3,
                device: d,
                attribute: "command",
                value: EventValue::Error("boom".into()),
            },
            EventRecord {
                time: 4,
                device: d,
                attribute: "state",
                value: EventValue::State("off".into()),
            },
            EventRecord {
                time: 5,
                device: d,
                attribute: "periodic",
                value: EventValue::State("off".into()),
            },
        ];
        let clean = clean_log(&raw);
        assert_eq!(clean.len(), 2);
        assert_eq!(clean[0].state, "on");
        assert!(clean[0].active);
        assert_eq!(clean[1].state, "off");
        assert!(!clean[1].active);
    }

    #[test]
    fn cleaner_discretizes_numeric_readings() {
        let d = dev(DeviceKind::LeakSensor, Location::Kitchen);
        let raw: Vec<EventRecord> = [20.0, 21.0, 22.0, 80.0, 81.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| EventRecord {
                time: i as u64,
                device: d,
                attribute: "reading",
                value: EventValue::Numeric(v),
            })
            .collect();
        let clean = clean_log(&raw);
        // 20,21,22 -> "low" (dedup to one), 80,81 -> "high" (dedup to one).
        assert_eq!(clean.len(), 2);
        assert_eq!(clean[0].state, "low");
        assert_eq!(clean[1].state, "high");
    }

    #[test]
    fn rule_cascade_changes_device_state() {
        let mut sim = HomeSimulator::new(smoke_rules());
        let valve = dev(DeviceKind::WaterValve, Location::Kitchen);
        assert_eq!(sim.device_state(valve), Some(false));
        // Force smoke high and fire.
        let mut rng = Rng::seed_from_u64(3);
        let mut log = Vec::new();
        sim.bump_channel(
            Channel::Smoke,
            Location::Kitchen,
            2.0,
            10,
            &mut log,
            &mut rng,
        );
        let cfg = SimConfig {
            error_prob: 0.0,
            ..SimConfig::short()
        };
        sim.fire_rules(10, &cfg, &mut log, &mut rng);
        // Valve opened by rule 0, then its water side effect triggered rule 1 closing it.
        let valve_events: Vec<&EventRecord> = log.iter().filter(|e| e.device == valve).collect();
        assert!(
            valve_events.len() >= 2,
            "expected open then close, got {valve_events:?}"
        );
    }
}
