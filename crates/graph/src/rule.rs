//! Automation rules: the structured trigger-action semantics plus the
//! platform-phrased natural-language description that the NLP pipeline sees.

use crate::device::{Channel, Device, DeviceKind, Location};

/// The five IoT automation platforms evaluated in the paper (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    SmartThings,
    HomeAssistant,
    Ifttt,
    GoogleAssistant,
    AmazonAlexa,
}

impl Platform {
    pub const ALL: [Platform; 5] = [
        Platform::SmartThings,
        Platform::HomeAssistant,
        Platform::Ifttt,
        Platform::GoogleAssistant,
        Platform::AmazonAlexa,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Platform::SmartThings => "SmartThings",
            Platform::HomeAssistant => "Home Assistant",
            Platform::Ifttt => "IFTTT",
            Platform::GoogleAssistant => "Google Assistant",
            Platform::AmazonAlexa => "Amazon Alexa",
        }
    }

    /// Voice-assistant platforms phrase rules as concise commands and are
    /// embedded with the sentence encoder; the others use word embeddings of
    /// key phrases (paper §IV-A).
    pub fn uses_sentence_embeddings(self) -> bool {
        matches!(self, Platform::GoogleAssistant | Platform::AmazonAlexa)
    }
}

/// What a rule waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// A device reaches an activation state ("when the lights are on").
    DeviceState { device: Device, active: bool },
    /// A physical channel crosses into the high/low regime
    /// ("if temperature is high", "when smoke is detected").
    ChannelLevel {
        channel: Channel,
        location: Location,
        high: bool,
    },
    /// A fixed time of day ("at 7 am").
    Time { hour: u8 },
    /// Manual user interaction ("when I tap the button").
    Manual,
}

/// A command issued by a rule's action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    pub device: Device,
    /// `true` = activate (on/open/unlock/start), `false` = deactivate.
    pub activate: bool,
}

impl Command {
    /// Channels this command influences, with direction.
    pub fn channel_effects(&self) -> Vec<(Channel, i8)> {
        self.device.kind.channel_effects(self.activate)
    }
}

/// One automation rule with both its machine semantics and its description.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Stable id within a corpus.
    pub id: u32,
    pub platform: Platform,
    pub trigger: Trigger,
    pub actions: Vec<Command>,
    /// The natural-language description crawled/phrased for this platform.
    pub text: String,
}

impl Rule {
    /// Ground truth for interaction correlation discovery: can executing
    /// `self`'s actions satisfy `other`'s trigger?
    ///
    /// Two mechanisms compose an "action-trigger" correlation:
    /// 1. *Explicit*: a command drives exactly the device state the other
    ///    rule's trigger waits for.
    /// 2. *Physical*: a command's channel effect pushes the channel of a
    ///    `ChannelLevel` trigger in the requested direction at the same
    ///    location (a heater turning on can raise "temperature is high").
    pub fn can_trigger(&self, other: &Rule) -> bool {
        match other.trigger {
            Trigger::DeviceState { device, active } => self
                .actions
                .iter()
                .any(|c| c.device == device && c.activate == active),
            Trigger::ChannelLevel {
                channel,
                location,
                high,
            } => {
                let want: i8 = if high { 1 } else { -1 };
                self.actions.iter().any(|c| {
                    c.device.location == location
                        && c.channel_effects()
                            .iter()
                            .any(|&(ch, dir)| ch == channel && dir == want)
                })
            }
            Trigger::Time { .. } | Trigger::Manual => false,
        }
    }

    /// The trigger's physical channel, if channel-based.
    pub fn trigger_channel(&self) -> Option<Channel> {
        match self.trigger {
            Trigger::ChannelLevel { channel, .. } => Some(channel),
            Trigger::DeviceState { device, .. } => device.kind.sense_channel(),
            _ => None,
        }
    }

    /// True if any action commands the given device.
    pub fn commands_device(&self, device: Device) -> bool {
        self.actions.iter().any(|c| c.device == device)
    }
}

/// Phrases a trigger in platform-neutral English (corpus templates add
/// platform flavor around this core).
pub fn trigger_phrase(trigger: &Trigger) -> String {
    match trigger {
        Trigger::DeviceState { device, active } => {
            let (on_word, off_word) = device.kind.state_words();
            format!(
                "the {} is {}",
                device.name(),
                if *active { on_word } else { off_word }
            )
        }
        Trigger::ChannelLevel {
            channel,
            location,
            high,
        } => match channel {
            Channel::Smoke | Channel::Co | Channel::Motion => {
                if *high {
                    format!("{} is detected in the {}", channel.word(), location.word())
                } else {
                    format!(
                        "no {} is detected in the {}",
                        channel.word(),
                        location.word()
                    )
                }
            }
            Channel::Water => {
                if *high {
                    format!("a water leak is detected in the {}", location.word())
                } else {
                    format!("the {} is dry", location.word())
                }
            }
            _ => format!(
                "the {} in the {} is {}",
                channel.word(),
                location.word(),
                if *high { "high" } else { "low" }
            ),
        },
        Trigger::Time { hour } => format!("it is {} o'clock", hour),
        Trigger::Manual => "I tap the button".to_string(),
    }
}

/// Phrases a command ("open the kitchen water valve").
pub fn command_phrase(cmd: &Command) -> String {
    let (on_verb, off_verb) = cmd.device.kind.verbs();
    let verb = if cmd.activate { on_verb } else { off_verb };
    // "turn on" style verbs split around the object for naturalness.
    if let Some(rest) = verb.strip_prefix("turn ") {
        format!("turn the {} {}", cmd.device.name(), rest)
    } else {
        format!("{} the {}", verb, cmd.device.name())
    }
}

/// Helper to build devices tersely in tests and generators.
pub fn dev(kind: DeviceKind, location: Location) -> Device {
    Device::new(kind, location)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind as K, Location as L};

    fn rule(id: u32, trigger: Trigger, actions: Vec<Command>) -> Rule {
        Rule {
            id,
            platform: Platform::SmartThings,
            trigger,
            actions,
            text: String::new(),
        }
    }

    #[test]
    fn explicit_device_state_correlation() {
        // R1 turns lights on; R2 triggers when lights are on.
        let r1 = rule(
            1,
            Trigger::Manual,
            vec![Command {
                device: dev(K::Light, L::LivingRoom),
                activate: true,
            }],
        );
        let r2 = rule(
            2,
            Trigger::DeviceState {
                device: dev(K::Light, L::LivingRoom),
                active: true,
            },
            vec![],
        );
        assert!(r1.can_trigger(&r2));
        assert!(!r2.can_trigger(&r1));
    }

    #[test]
    fn polarity_must_match() {
        let r1 = rule(
            1,
            Trigger::Manual,
            vec![Command {
                device: dev(K::Light, L::LivingRoom),
                activate: false,
            }],
        );
        let r2 = rule(
            2,
            Trigger::DeviceState {
                device: dev(K::Light, L::LivingRoom),
                active: true,
            },
            vec![],
        );
        assert!(!r1.can_trigger(&r2));
    }

    #[test]
    fn location_must_match() {
        let r1 = rule(
            1,
            Trigger::Manual,
            vec![Command {
                device: dev(K::Light, L::Kitchen),
                activate: true,
            }],
        );
        let r2 = rule(
            2,
            Trigger::DeviceState {
                device: dev(K::Light, L::LivingRoom),
                active: true,
            },
            vec![],
        );
        assert!(!r1.can_trigger(&r2));
    }

    #[test]
    fn physical_channel_correlation() {
        // Heater on raises kitchen temperature -> triggers "temperature high".
        let r1 = rule(
            1,
            Trigger::Manual,
            vec![Command {
                device: dev(K::Heater, L::Kitchen),
                activate: true,
            }],
        );
        let r2 = rule(
            2,
            Trigger::ChannelLevel {
                channel: Channel::Temperature,
                location: L::Kitchen,
                high: true,
            },
            vec![],
        );
        let r3 = rule(
            3,
            Trigger::ChannelLevel {
                channel: Channel::Temperature,
                location: L::Kitchen,
                high: false,
            },
            vec![],
        );
        assert!(r1.can_trigger(&r2));
        assert!(!r1.can_trigger(&r3), "heater cannot lower temperature");
    }

    #[test]
    fn time_and_manual_triggers_never_correlate() {
        let r1 = rule(
            1,
            Trigger::Manual,
            vec![Command {
                device: dev(K::Light, L::Kitchen),
                activate: true,
            }],
        );
        let r2 = rule(2, Trigger::Time { hour: 7 }, vec![]);
        let r3 = rule(3, Trigger::Manual, vec![]);
        assert!(!r1.can_trigger(&r2));
        assert!(!r1.can_trigger(&r3));
    }

    #[test]
    fn phrases_read_naturally() {
        let t = Trigger::ChannelLevel {
            channel: Channel::Smoke,
            location: L::Kitchen,
            high: true,
        };
        assert_eq!(trigger_phrase(&t), "smoke is detected in the kitchen");
        let c = Command {
            device: dev(K::WaterValve, L::Kitchen),
            activate: false,
        };
        assert_eq!(command_phrase(&c), "close the kitchen water valve");
        let c2 = Command {
            device: dev(K::Light, L::Bedroom),
            activate: true,
        };
        assert_eq!(command_phrase(&c2), "turn the bedroom light on");
    }
}
