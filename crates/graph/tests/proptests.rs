//! Property tests for the graph substrate: corpus/parse round-trips, event
//! cleaner invariants, attack mutator sanity, and graph-structure laws.

use fexiot_graph::attacks::{apply_attack, AttackKind};
use fexiot_graph::corpus::{CorpusConfig, CorpusGenerator};
use fexiot_graph::events::{clean_log, EventValue, HomeSimulator, SimConfig};
use fexiot_graph::{CorpusIndex, FeatureConfig, GraphBuilder};
use fexiot_nlp::{parse_rule, Lexicon};
use fexiot_tensor::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rendered_rules_parse_to_their_action_devices(seed in 0u64..300) {
        // The NLP pipeline must recover the commanded device word from every
        // platform's rendering — that is the cross-modality fusion contract.
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let mut cfg = CorpusConfig::small();
        cfg.rules_per_platform.iter_mut().for_each(|(_, n)| *n = 4);
        let rules = gen.generate(&cfg, &mut rng);
        let lex = Lexicon::new();
        for rule in &rules {
            let parse = parse_rule(&rule.text, &lex);
            for cmd in &rule.actions {
                // The device's head word (last token of the lexicon word).
                let head = cmd.device.kind.word().split(' ').next_back().unwrap().to_string();
                let merged = cmd.device.kind.word().replace(' ', "_");
                // A location can merge with the head into a collocation
                // ("garage door" -> garage_door), so suffix matches count.
                let matches = |t: &String| t == &head || t == &merged || t.ends_with(&format!("_{head}"));
                let found = parse.action.objects.iter().any(matches)
                    || parse.action.tokens.iter().any(matches);
                prop_assert!(
                    found,
                    "device {:?} not recovered from '{}' (objects {:?})",
                    cmd.device.kind,
                    rule.text,
                    parse.action.objects
                );
            }
        }
    }

    #[test]
    fn cleaner_output_has_no_noise(seed in 0u64..200) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::ifttt_only(20), &mut rng);
        let mut sim = HomeSimulator::new(rules);
        let mut cfg = SimConfig::short();
        cfg.error_prob = 0.2;
        let raw = sim.run(&cfg, &mut rng);
        let clean = clean_log(&raw);
        // No record corresponds to an execution error.
        prop_assert!(raw.iter().filter(|e| matches!(e.value, EventValue::Error(_))).count() == 0
            || clean.len() < raw.len());
        // Per device, consecutive cleaned states always differ (dedup holds).
        for d in clean.iter().map(|e| e.device).collect::<std::collections::BTreeSet<_>>() {
            let states: Vec<&str> =
                clean.iter().filter(|e| e.device == d).map(|e| e.state.as_str()).collect();
            prop_assert!(states.windows(2).all(|w| w[0] != w[1]), "repeated state for {d:?}");
        }
        // Time-ordered.
        prop_assert!(clean.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn attacks_preserve_time_order_and_never_panic(seed in 0u64..200, intensity in 0.05f64..0.9) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::ifttt_only(15), &mut rng);
        let mut sim = HomeSimulator::new(rules);
        let raw = sim.run(&SimConfig::short(), &mut rng);
        for kind in AttackKind::ALL {
            let attacked = apply_attack(kind, &raw, intensity, &mut rng);
            prop_assert!(attacked.windows(2).all(|w| w[0].time <= w[1].time), "{kind:?}");
        }
    }

    #[test]
    fn sampled_graph_edges_match_ground_truth(seed in 0u64..200, size in 2usize..10) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut gen = CorpusGenerator::new();
        let rules = gen.generate(&CorpusConfig::ifttt_only(60), &mut rng);
        let index = CorpusIndex::build(rules);
        let builder = GraphBuilder::new(FeatureConfig::small());
        let g = builder.sample_graph(&index, size, &mut rng);
        // Every edge must be justified by `can_trigger`, and every justified
        // pair must be an edge (the builder is exact, not approximate).
        for i in 0..g.node_count() {
            for j in 0..g.node_count() {
                let should = i != j && g.nodes[i].rule.can_trigger(&g.nodes[j].rule);
                let has = g.edges.contains(&(i, j));
                prop_assert_eq!(should, has, "edge ({}, {}) mismatch", i, j);
            }
        }
        // Node features are finite and platform-dimensioned.
        for n in &g.nodes {
            prop_assert!(n.features.iter().all(|v| v.is_finite()));
            prop_assert_eq!(
                n.features.len(),
                builder.config().node_dim(n.rule.platform)
            );
        }
    }
}
