//! Property-based tests for the numeric substrate: algebraic laws of the
//! matrix type, distribution invariants of the RNG, and autograd consistency
//! under random compositions.

use fexiot_tensor::{linalg, Matrix, Rng, Tape};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn matmul_distributes_over_add(a in small_matrix(3, 3), b in small_matrix(3, 3), c in small_matrix(3, 3)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_reverses_product(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn solve_then_multiply_roundtrips(seed in 0u64..1000) {
        let mut rng = Rng::seed_from_u64(seed);
        // Diagonally dominant => comfortably nonsingular.
        let n = 4;
        let mut a = Matrix::random_normal(n, n, 0.0, 1.0, &mut rng);
        for i in 0..n {
            a[(i, i)] += 8.0;
        }
        let x_true = Matrix::random_normal(n, 1, 0.0, 1.0, &mut rng);
        let b = a.matmul(&x_true);
        let x = linalg::solve(&a, &b).expect("nonsingular");
        prop_assert!(x.max_abs_diff(&x_true) < 1e-6);
    }

    #[test]
    fn rng_usize_in_range(seed in 0u64..1000, n in 1usize..500) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.usize(n) < n);
        }
    }

    #[test]
    fn dirichlet_is_simplex(seed in 0u64..500, k in 2usize..10, alpha in 0.05f64..20.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let d = rng.dirichlet(&vec![alpha; k]);
        prop_assert_eq!(d.len(), k);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_rows_are_distributions(m in small_matrix(4, 6)) {
        let mut tape = Tape::new();
        let v = tape.constant(m);
        let s = tape.softmax_row(v);
        let out = tape.value(s);
        for r in 0..out.rows() {
            let sum: f64 = out.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(out.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn backward_of_linear_matches_coefficients(w in small_matrix(3, 3), x in small_matrix(2, 3)) {
        // loss = sum(x W); d loss / d W = x^T * ones.
        let mut tape = Tape::new();
        let wv = tape.param(w.clone());
        let xv = tape.constant(x.clone());
        let y = tape.matmul(xv, wv);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        let g = grads.get(wv, &w);
        let expected = x.transpose().matmul(&Matrix::ones(2, 3));
        prop_assert!(g.max_abs_diff(&expected) < 1e-9);
    }
}

// ---- fixed-layout matrix frames (the fexiot-store zero-copy codec) ----

use fexiot_tensor::codec::{ByteReader, ByteWriter};

/// Deterministic matrix from a seed, covering degenerate shapes (0×N, N×0)
/// and the full f64 special-value zoo. The codec must roundtrip bit
/// patterns, not values, so NaN and signed zero are compared via `to_bits`.
fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| match rng.usize(10) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => f64::MIN_POSITIVE / 2.0, // subnormal
            _ => rng.uniform(-1e12, 1e12),
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fixed_frame_roundtrips_bit_exactly(rows in 0usize..7, cols in 0usize..7, seed in 0u64..10_000) {
        let m = seeded_matrix(rows, cols, seed);
        let mut w = ByteWriter::new();
        w.write_matrix_fixed(&m);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.read_matrix_fixed().expect("well-formed frame");
        prop_assert!(bits_equal(&m, &back));
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn fixed_frame_encoding_is_byte_stable(rows in 0usize..7, cols in 0usize..7, seed in 0u64..10_000) {
        let m = seeded_matrix(rows, cols, seed);
        let mut w1 = ByteWriter::new();
        w1.write_matrix_fixed(&m);
        let mut w2 = ByteWriter::new();
        w2.write_matrix_fixed(&m);
        prop_assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn fixed_frame_list_roundtrips(count in 0usize..5, seed in 0u64..10_000) {
        let mut rng = Rng::seed_from_u64(seed ^ 0xF1F1);
        let ms: Vec<Matrix> = (0..count)
            .map(|i| seeded_matrix(rng.usize(7), rng.usize(7), seed.wrapping_add(i as u64)))
            .collect();
        let mut w = ByteWriter::new();
        w.write_matrices_fixed(&ms);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.read_matrices_fixed().expect("well-formed frames");
        prop_assert_eq!(ms.len(), back.len());
        for (a, b) in ms.iter().zip(&back) {
            prop_assert!(bits_equal(a, b));
        }
    }

    #[test]
    fn truncated_fixed_frame_is_a_clean_error(rows in 1usize..7, cols in 1usize..7, seed in 0u64..10_000, cut in 1usize..64) {
        let m = seeded_matrix(rows, cols, seed);
        let mut w = ByteWriter::new();
        w.write_matrix_fixed(&m);
        let bytes = w.into_bytes();
        let cut = cut.min(bytes.len() - 1).max(1);
        let mut r = ByteReader::new(&bytes[..bytes.len() - cut]);
        prop_assert!(r.read_matrix_fixed().is_err());
    }

    #[test]
    fn payload_bit_flip_fails_the_checksum(rows in 1usize..7, cols in 1usize..7, seed in 0u64..10_000, byte in 0usize..1024, bit in 0u8..8) {
        let m = seeded_matrix(rows, cols, seed);
        let mut w = ByteWriter::new();
        w.write_matrix_fixed(&m);
        let mut bytes = w.into_bytes();
        // Flip strictly inside the payload region (the header is 32 bytes:
        // magic, rows, cols, checksum). A changed payload byte must fail the
        // FNV verification — Ok here means corruption slipped through.
        let idx = 32 + byte % (bytes.len() - 32);
        bytes[idx] ^= 1 << bit;
        let mut r = ByteReader::new(&bytes);
        prop_assert!(r.read_matrix_fixed().is_err(), "corrupt payload slipped past the checksum");
    }
}
