//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records the forward computation as a flat list of nodes; calling
//! [`Tape::backward`] walks the list in reverse and accumulates gradients for
//! every node, which the optimizers then read back for the parameter nodes.
//!
//! The op set is deliberately small — exactly what the GCN/GIN/MAGNN encoders,
//! the MLP, and the DeepLog LSTM need — and every rule is pinned down by a
//! finite-difference test in this module.

use crate::matrix::Matrix;

/// Handle to a node on a [`Tape`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Clone, Debug)]
enum Op {
    /// Constant input; no gradient is accumulated for it.
    Const,
    /// Trainable parameter; gradient is accumulated and read back.
    Param,
    MatMul(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Hadamard(usize, usize),
    Scale(usize, f64),
    AddScalar(usize),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    Exp(usize),
    /// (n,d) -> (1,d) column means.
    MeanRows(usize),
    /// (n,d) -> (1,1) sum of all entries.
    SumAll(usize),
    /// (n,d) -> (1,1) mean of all entries.
    MeanAll(usize),
    /// (n,d) + broadcast (1,d).
    AddRowBroadcast(usize, usize),
    /// Horizontal concatenation of two equal-row matrices.
    ConcatCols(usize, usize),
    /// Matrix times a (1,1) scalar node.
    MulScalarVar(usize, usize),
    /// Elementwise division of equal-shaped nodes.
    Div(usize, usize),
    /// Row-wise softmax.
    SoftmaxRow(usize),
    /// Weighted softmax cross-entropy against integer targets; produces (1,1).
    ///
    /// Loss = sum_i w[y_i] * CE_i / sum_i w[y_i]  (weighted mean).
    SoftmaxCrossEntropy {
        logits: usize,
        targets: Vec<usize>,
        class_weights: Vec<f64>,
    },
}

struct Node {
    op: Op,
    value: Matrix,
}

/// Gradients produced by [`Tape::backward`].
pub struct Grads {
    grads: Vec<Option<Matrix>>,
}

impl Grads {
    /// Gradient of the loss with respect to `var`. Zero matrix if the var did
    /// not influence the loss.
    pub fn get(&self, var: Var, shape_like: &Matrix) -> Matrix {
        match &self.grads[var.0] {
            Some(g) => g.clone(),
            None => Matrix::zeros(shape_like.rows(), shape_like.cols()),
        }
    }

    /// Borrowing accessor; `None` means the var did not influence the loss.
    pub fn try_get(&self, var: Var) -> Option<&Matrix> {
        self.grads[var.0].as_ref()
    }
}

/// Records a forward computation for later differentiation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Registers a constant (no gradient tracked).
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.push(Op::Const, m)
    }

    /// Registers a trainable parameter (gradient tracked).
    pub fn param(&mut self, m: Matrix) -> Var {
        self.push(Op::Param, m)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a.0, b.0), v)
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a.0, b.0), v)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a.0, b.0), v)
    }

    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(Op::Hadamard(a.0, b.0), v)
    }

    /// Elementwise `a / b` (equal shapes). The caller must keep `b` away
    /// from zero (e.g. softmax denominators are strictly positive).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x / y);
        self.push(Op::Div(a.0, b.0), v)
    }

    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.value(a).scale(s);
        self.push(Op::Scale(a.0, s), v)
    }

    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let v = self.value(a).map(|x| x + s);
        self.push(Op::AddScalar(a.0), v)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a.0), v)
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a.0), v)
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        self.push(Op::Tanh(a.0), v)
    }

    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::exp);
        self.push(Op::Exp(a.0), v)
    }

    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).mean_rows();
        self.push(Op::MeanRows(a.0), v)
    }

    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(Op::SumAll(a.0), v)
    }

    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(Op::MeanAll(a.0), v)
    }

    /// `(n,d) + (1,d)` with the row vector broadcast to every row.
    pub fn add_row_broadcast(&mut self, a: Var, row: Var) -> Var {
        let (m, r) = (self.value(a), self.value(row));
        assert_eq!(r.rows(), 1, "add_row_broadcast: rhs must be a row vector");
        assert_eq!(m.cols(), r.cols(), "add_row_broadcast: width mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            for (o, &b) in out.row_mut(i).iter_mut().zip(r.row(0)) {
                *o += b;
            }
        }
        self.push(Op::AddRowBroadcast(a.0, row.0), out)
    }

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = Matrix::hstack(&[self.value(a), self.value(b)]);
        self.push(Op::ConcatCols(a.0, b.0), v)
    }

    /// `a * s` where `s` is a `(1,1)` node (scalar gate / attention weight).
    pub fn mul_scalar_var(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(
            self.value(s).shape(),
            (1, 1),
            "mul_scalar_var: scalar must be 1x1"
        );
        let sv = self.value(s)[(0, 0)];
        let v = self.value(a).scale(sv);
        self.push(Op::MulScalarVar(a.0, s.0), v)
    }

    /// Numerically stable row-wise softmax.
    pub fn softmax_row(&mut self, a: Var) -> Var {
        let m = self.value(a);
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        self.push(Op::SoftmaxRow(a.0), out)
    }

    /// Weighted-mean softmax cross-entropy. `logits` is `(n, C)`, `targets`
    /// has length `n`, `class_weights` has length `C`.
    pub fn softmax_cross_entropy(
        &mut self,
        logits: Var,
        targets: &[usize],
        class_weights: &[f64],
    ) -> Var {
        let lm = self.value(logits);
        assert_eq!(
            lm.rows(),
            targets.len(),
            "softmax_ce: target count mismatch"
        );
        assert_eq!(
            lm.cols(),
            class_weights.len(),
            "softmax_ce: class weight count mismatch"
        );
        let mut total = 0.0;
        let mut wsum = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            let row = lm.row(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f64>().ln();
            let w = class_weights[t];
            total += w * (lse - row[t]);
            wsum += w;
        }
        let loss = if wsum > 0.0 { total / wsum } else { 0.0 };
        self.push(
            Op::SoftmaxCrossEntropy {
                logits: logits.0,
                targets: targets.to_vec(),
                class_weights: class_weights.to_vec(),
            },
            Matrix::from_vec(1, 1, vec![loss]),
        )
    }

    /// Convenience: squared Frobenius norm of the difference of two vars, as (1,1).
    pub fn sq_distance(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.hadamard(d, d);
        self.sum_all(sq)
    }

    /// Runs reverse-mode differentiation from the scalar node `loss`.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1x1` node.
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be scalar"
        );
        self.backward_seeded(loss, Matrix::ones(1, 1))
    }

    /// Reverse-mode differentiation from `node` with an explicit upstream
    /// gradient `seed` (same shape as the node's value). This lets a
    /// computation split across tapes: an outer tape differentiates its own
    /// graph down to the boundary values, then each inner tape resumes from
    /// the boundary node with the outer gradient as its seed —
    /// `backward(loss)` is exactly `backward_seeded(loss, ones(1,1))`, so a
    /// split walk replays the identical f64 operation sequence.
    ///
    /// # Panics
    /// Panics if `seed`'s shape differs from the node's value.
    pub fn backward_seeded(&self, node: Var, seed: Matrix) -> Grads {
        assert_eq!(
            self.value(node).shape(),
            seed.shape(),
            "backward_seeded: seed shape must match the node"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[node.0] = Some(seed);

        for idx in (0..=node.0).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            let value = &self.nodes[idx].value;
            match &self.nodes[idx].op {
                Op::Const | Op::Param => {
                    grads[idx] = Some(g);
                    continue;
                }
                Op::MatMul(a, b) => {
                    let (av, bv) = (&self.nodes[*a].value, &self.nodes[*b].value);
                    accumulate(&mut grads, *a, g.matmul(&bv.transpose()));
                    accumulate(&mut grads, *b, av.transpose().matmul(&g));
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.scale(-1.0));
                }
                Op::Hadamard(a, b) => {
                    let (av, bv) = (&self.nodes[*a].value, &self.nodes[*b].value);
                    accumulate(&mut grads, *a, g.hadamard(bv));
                    accumulate(&mut grads, *b, g.hadamard(av));
                }
                Op::Scale(a, s) => accumulate(&mut grads, *a, g.scale(*s)),
                Op::AddScalar(a) => accumulate(&mut grads, *a, g),
                Op::Relu(a) => {
                    let mask = self.nodes[*a]
                        .value
                        .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    accumulate(&mut grads, *a, g.hadamard(&mask));
                }
                Op::Sigmoid(a) => {
                    let d = value.map(|s| s * (1.0 - s));
                    accumulate(&mut grads, *a, g.hadamard(&d));
                }
                Op::Tanh(a) => {
                    let d = value.map(|t| 1.0 - t * t);
                    accumulate(&mut grads, *a, g.hadamard(&d));
                }
                Op::Exp(a) => accumulate(&mut grads, *a, g.hadamard(value)),
                Op::MeanRows(a) => {
                    let n = self.nodes[*a].value.rows();
                    let inv = 1.0 / n.max(1) as f64;
                    let ga = Matrix::from_fn(n, g.cols(), |_, c| g[(0, c)] * inv);
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumAll(a) => {
                    let (r, c) = self.nodes[*a].value.shape();
                    accumulate(&mut grads, *a, Matrix::full(r, c, g[(0, 0)]));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[*a].value.shape();
                    let inv = 1.0 / (r * c).max(1) as f64;
                    accumulate(&mut grads, *a, Matrix::full(r, c, g[(0, 0)] * inv));
                }
                Op::AddRowBroadcast(a, row) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *row, g.sum_rows());
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.nodes[*a].value.cols();
                    let bc = self.nodes[*b].value.cols();
                    let mut ga = Matrix::zeros(g.rows(), ac);
                    let mut gb = Matrix::zeros(g.rows(), bc);
                    for r in 0..g.rows() {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Div(a, b) => {
                    let (av, bv) = (&self.nodes[*a].value, &self.nodes[*b].value);
                    accumulate(&mut grads, *a, g.zip(bv, |gi, bi| gi / bi));
                    accumulate(
                        &mut grads,
                        *b,
                        g.zip(av, |gi, ai| gi * ai).zip(bv, |t, bi| -t / (bi * bi)),
                    );
                }
                Op::MulScalarVar(a, s) => {
                    let sv = self.nodes[*s].value[(0, 0)];
                    let av = &self.nodes[*a].value;
                    accumulate(&mut grads, *a, g.scale(sv));
                    let gs = g.hadamard(av).sum();
                    accumulate(&mut grads, *s, Matrix::from_vec(1, 1, vec![gs]));
                }
                Op::SoftmaxRow(a) => {
                    // For each row: g_in = s .* (g - (g . s)).
                    let s = value;
                    let mut ga = Matrix::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let dot: f64 = g.row(r).iter().zip(s.row(r)).map(|(&x, &y)| x * y).sum();
                        for c in 0..g.cols() {
                            ga[(r, c)] = s[(r, c)] * (g[(r, c)] - dot);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SoftmaxCrossEntropy {
                    logits,
                    targets,
                    class_weights,
                } => {
                    let lm = &self.nodes[*logits].value;
                    let wsum: f64 = targets.iter().map(|&t| class_weights[t]).sum();
                    let scale = if wsum > 0.0 { g[(0, 0)] / wsum } else { 0.0 };
                    let mut ga = Matrix::zeros(lm.rows(), lm.cols());
                    for (r, &t) in targets.iter().enumerate() {
                        let row = lm.row(r);
                        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let exps: Vec<f64> = row.iter().map(|&v| (v - max).exp()).collect();
                        let z: f64 = exps.iter().sum();
                        let w = class_weights[t];
                        for c in 0..lm.cols() {
                            let p = exps[c] / z;
                            let onehot = if c == t { 1.0 } else { 0.0 };
                            ga[(r, c)] = scale * w * (p - onehot);
                        }
                    }
                    accumulate(&mut grads, *logits, ga);
                }
            }
        }
        Grads { grads }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: usize, g: Matrix) {
    match &mut grads[idx] {
        Some(existing) => existing.axpy(1.0, &g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Central finite-difference check of d(loss)/d(param) for a scalar-loss builder.
    fn check_grad(param: &Matrix, build: impl Fn(&mut Tape, Var) -> Var, tol: f64) {
        let mut tape = Tape::new();
        let p = tape.param(param.clone());
        let loss = build(&mut tape, p);
        let grads = tape.backward(loss);
        let analytic = grads.get(p, param);

        let eps = 1e-5;
        for r in 0..param.rows() {
            for c in 0..param.cols() {
                let mut plus = param.clone();
                plus[(r, c)] += eps;
                let mut minus = param.clone();
                minus[(r, c)] -= eps;
                let f = |m: Matrix| {
                    let mut t = Tape::new();
                    let v = t.param(m);
                    let l = build(&mut t, v);
                    t.value(l)[(0, 0)]
                };
                let numeric = (f(plus) - f(minus)) / (2.0 * eps);
                let a = analytic[(r, c)];
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn grad_matmul_chain() {
        let mut rng = Rng::seed_from_u64(101);
        let w = Matrix::random_normal(3, 4, 0.0, 1.0, &mut rng);
        let x = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        check_grad(
            &w,
            move |t, p| {
                let xv = t.constant(x.clone());
                let y = t.matmul(xv, p);
                t.sum_all(y)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_relu_sigmoid_tanh_exp() {
        let mut rng = Rng::seed_from_u64(103);
        let w = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        for act in 0..4 {
            check_grad(
                &w,
                move |t, p| {
                    let a = match act {
                        0 => t.relu(p),
                        1 => t.sigmoid(p),
                        2 => t.tanh(p),
                        _ => t.exp(p),
                    };
                    t.mean_all(a)
                },
                2e-4,
            );
        }
    }

    #[test]
    fn grad_mean_rows_and_broadcast() {
        let mut rng = Rng::seed_from_u64(107);
        let b = Matrix::random_normal(1, 4, 0.0, 1.0, &mut rng);
        let x = Matrix::random_normal(3, 4, 0.0, 1.0, &mut rng);
        check_grad(
            &b,
            move |t, p| {
                let xv = t.constant(x.clone());
                let y = t.add_row_broadcast(xv, p);
                let m = t.mean_rows(y);
                let s = t.hadamard(m, m);
                t.sum_all(s)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_softmax_row() {
        let mut rng = Rng::seed_from_u64(109);
        let w = Matrix::random_normal(2, 5, 0.0, 1.0, &mut rng);
        let coef = Matrix::random_normal(2, 5, 0.0, 1.0, &mut rng);
        check_grad(
            &w,
            move |t, p| {
                let s = t.softmax_row(p);
                let c = t.constant(coef.clone());
                let weighted = t.hadamard(s, c);
                t.sum_all(weighted)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_softmax_cross_entropy() {
        let mut rng = Rng::seed_from_u64(113);
        let logits = Matrix::random_normal(4, 3, 0.0, 1.0, &mut rng);
        let targets = vec![0usize, 2, 1, 2];
        let weights = vec![1.0, 2.0, 0.5];
        check_grad(
            &logits,
            move |t, p| t.softmax_cross_entropy(p, &targets, &weights),
            1e-5,
        );
    }

    #[test]
    fn grad_contrastive_shape() {
        // Contrastive loss composition: d2*(1-y) + relu(k - d2)*y, both branches.
        let mut rng = Rng::seed_from_u64(127);
        let w = Matrix::random_normal(3, 2, 0.0, 0.5, &mut rng);
        let xa = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        let xb = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        for &y in &[0.0, 1.0] {
            let (xa, xb) = (xa.clone(), xb.clone());
            check_grad(
                &w,
                move |t, p| {
                    let a = t.constant(xa.clone());
                    let b = t.constant(xb.clone());
                    let za0 = t.matmul(a, p);
                    let za = t.mean_rows(za0);
                    let zb0 = t.matmul(b, p);
                    let zb = t.mean_rows(zb0);
                    let d2 = t.sq_distance(za, zb);
                    let same = t.scale(d2, 1.0 - y);
                    let neg = t.scale(d2, -1.0);
                    let marg = t.add_scalar(neg, 1.0);
                    let hinge0 = t.relu(marg);
                    let hinge = t.scale(hinge0, y);
                    t.add(same, hinge)
                },
                2e-4,
            );
        }
    }

    #[test]
    fn grad_concat_cols() {
        let mut rng = Rng::seed_from_u64(131);
        let w = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        let other = Matrix::random_normal(2, 2, 0.0, 1.0, &mut rng);
        let coef = Matrix::random_normal(2, 5, 0.0, 1.0, &mut rng);
        check_grad(
            &w,
            move |t, p| {
                let o = t.constant(other.clone());
                let cat = t.concat_cols(p, o);
                let c = t.constant(coef.clone());
                let h = t.hadamard(cat, c);
                t.sum_all(h)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_div() {
        let mut rng = Rng::seed_from_u64(139);
        let w = Matrix::random_normal(2, 2, 0.0, 1.0, &mut rng);
        let denom = Matrix::random_uniform(2, 2, 0.5, 2.0, &mut rng);
        let (d1, d2) = (denom.clone(), denom);
        check_grad(
            &w,
            move |t, p| {
                let d = t.constant(d1.clone());
                let q = t.div(p, d);
                t.sum_all(q)
            },
            1e-4,
        );
        // Gradient w.r.t. the denominator.
        let numer = Matrix::random_normal(2, 2, 0.0, 1.0, &mut rng);
        let w2 = Matrix::random_uniform(2, 2, 0.5, 2.0, &mut rng);
        check_grad(
            &w2,
            move |t, p| {
                let n = t.constant(numer.clone());
                let q = t.div(n, p);
                let _ = &d2;
                t.sum_all(q)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_mul_scalar_var() {
        let mut rng = Rng::seed_from_u64(137);
        let w = Matrix::random_normal(1, 1, 0.5, 0.2, &mut rng);
        let m = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        let coef = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);
        check_grad(
            &w,
            move |t, p| {
                let mv = t.constant(m.clone());
                let scaled = t.mul_scalar_var(mv, p);
                let c = t.constant(coef.clone());
                let h = t.hadamard(scaled, c);
                t.sum_all(h)
            },
            1e-5,
        );
        // And the gradient w.r.t. the matrix side.
        let mat = Matrix::random_normal(2, 2, 0.0, 1.0, &mut rng);
        check_grad(
            &mat,
            move |t, p| {
                let s = t.constant(Matrix::from_vec(1, 1, vec![1.7]));
                let scaled = t.mul_scalar_var(p, s);
                t.sum_all(scaled)
            },
            1e-5,
        );
    }

    #[test]
    fn reused_var_accumulates_gradient() {
        // loss = sum(p ∘ p); d/dp = 2p.
        let p0 = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 0.5]]);
        let mut tape = Tape::new();
        let p = tape.param(p0.clone());
        let sq = tape.hadamard(p, p);
        let loss = tape.sum_all(sq);
        let g = tape.backward(loss).get(p, &p0);
        assert!(g.max_abs_diff(&p0.scale(2.0)) < 1e-12);
    }

    #[test]
    fn unused_param_gets_zero_grad() {
        let mut tape = Tape::new();
        let used = tape.param(Matrix::ones(1, 1));
        let unused = tape.param(Matrix::ones(2, 2));
        let loss = tape.sum_all(used);
        let grads = tape.backward(loss);
        assert!(grads.try_get(unused).is_none());
        assert_eq!(grads.get(unused, &Matrix::ones(2, 2)).sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let p = tape.param(Matrix::ones(2, 2));
        tape.backward(p);
    }
}
