//! Dense row-major matrix of `f64`.
//!
//! This is the numeric workhorse for every model in the workspace. Shapes are
//! validated with assertions: a shape mismatch is a programming error, not a
//! recoverable condition, so the contract is panic-with-message (the same
//! contract `ndarray` uses for `dot`).

use crate::rng::Rng;

/// A dense `rows x cols` matrix stored in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a matrix where every element equals `v`.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: empty input");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A 1 x n row vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// An n x 1 column vector.
    pub fn col_vector(v: &[f64]) -> Self {
        Self {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.uniform(lo, hi))
    }

    /// Matrix with i.i.d. normal entries.
    pub fn random_normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.normal(mean, std))
    }

    /// Glorot/Xavier uniform initialization for a `fan_in x fan_out` weight.
    pub fn glorot(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        Self::random_uniform(fan_in, fan_out, -limit, limit, rng)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {} out of bounds ({} cols)",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous for both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Elementwise application of `f`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two equal-shaped matrices elementwise.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "zip: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + rhs` elementwise.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// `self - rhs` elementwise.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column means as a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self[(r, c)];
            }
        }
        let inv = 1.0 / self.rows as f64;
        for v in &mut out.data {
            *v *= inv;
        }
        out
    }

    /// Column sums as a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self[(r, c)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Euclidean distance between two equal-shaped matrices.
    pub fn sq_distance(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "sq_distance: shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// Index of the largest element in row `r` (first index on ties).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Vertically stacks matrices with equal column counts.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack: empty input");
        let cols = parts[0].cols;
        let rows = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack: empty input");
        let rows = parts[0].rows;
        let cols = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut at = 0;
            for m in parts {
                assert_eq!(m.rows, rows, "hstack: row mismatch");
                out.data[r * cols + at..r * cols + at + m.cols].copy_from_slice(m.row(r));
                at += m.cols;
            }
        }
        out
    }

    /// Copies the selected rows into a new matrix, in the given order.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Returns `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute elementwise difference; useful for approximate equality in tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from_u64(1);
        let a = Matrix::random_uniform(4, 4, -1.0, 1.0, &mut rng);
        let i = Matrix::eye(4);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from_u64(2);
        let a = Matrix::random_normal(3, 5, 0.0, 1.0, &mut rng);
        assert!(a.transpose().transpose().max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn mean_rows_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        let m = a.mean_rows();
        assert_eq!(m.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = Matrix::ones(2, 3);
        let b = Matrix::zeros(2, 2);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h[(0, 2)], 1.0);
        assert_eq!(h[(0, 3)], 0.0);
        let v = Matrix::vstack(&[&a, &Matrix::zeros(1, 3)]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v[(2, 0)], 0.0);
    }

    #[test]
    fn select_rows_reorders() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = Rng::seed_from_u64(3);
        let w = Matrix::glorot(10, 20, &mut rng);
        let limit = (6.0 / 30.0f64).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.5, 2.5, 2.5, 2.5]);
    }
}
