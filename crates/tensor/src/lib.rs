//! # fexiot-tensor
//!
//! Numeric substrate for the FexIoT reproduction: a dense [`Matrix`] type, a
//! reverse-mode autodiff [`Tape`], first-order optimizers, a
//! deterministic [`Rng`], small linear-algebra solvers, and descriptive
//! statistics.
//!
//! Everything downstream — the GNN encoders, the classic-ML baselines, the
//! kernel-SHAP explainer, and the federated aggregation — is built on this
//! crate, so the gradient rules are each pinned by finite-difference tests and
//! the distributions by moment tests.

pub mod autograd;
pub mod codec;
pub mod linalg;
pub mod matrix;
pub mod optim;
pub mod rng;
pub mod stats;

pub use autograd::{Grads, Tape, Var};
pub use codec::{fnv1a, ByteReader, ByteWriter, CodecError};
pub use matrix::Matrix;
pub use optim::{Adam, ParamVec, Sgd};
pub use rng::Rng;
