//! First-order optimizers over flat parameter lists.
//!
//! Models in this workspace expose their weights as an ordered `Vec<Matrix>`
//! (see [`ParamVec`]); the optimizers consume gradients aligned by index.

use crate::matrix::Matrix;

/// An ordered set of parameter matrices with helpers used by the federated
/// layer (flattening, distances, layer counts).
pub type ParamVec = Vec<Matrix>;

/// Total number of scalar parameters.
pub fn param_count(params: &ParamVec) -> usize {
    params.iter().map(Matrix::len).sum()
}

/// Serialized size in bytes assuming `f64` wire encoding; used by the
/// federated communication accounting.
pub fn param_bytes(params: &ParamVec) -> usize {
    param_count(params) * std::mem::size_of::<f64>()
}

/// Euclidean norm of the full parameter vector.
pub fn param_norm(params: &ParamVec) -> f64 {
    params
        .iter()
        .map(|m| m.frobenius_norm().powi(2))
        .sum::<f64>()
        .sqrt()
}

/// True when every entry of every matrix is finite (no NaN/±Inf). The
/// federated server runs this over each received update before it can reach
/// [`param_weighted_average`] or the trust scorer.
pub fn param_is_finite(params: &ParamVec) -> bool {
    params.iter().all(Matrix::is_finite)
}

/// Indices of matrices containing a non-finite entry (diagnostics for
/// quarantine logs).
pub fn param_nonfinite_layers(params: &ParamVec) -> Vec<usize> {
    params
        .iter()
        .enumerate()
        .filter(|(_, m)| !m.is_finite())
        .map(|(i, _)| i)
        .collect()
}

/// Elementwise difference `a - b` of two aligned parameter vectors.
pub fn param_sub(a: &ParamVec, b: &ParamVec) -> ParamVec {
    assert_eq!(a.len(), b.len(), "param_sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x.sub(y)).collect()
}

/// Flattens a parameter vector into one contiguous slice (for cosine similarity).
pub fn param_flatten(params: &ParamVec) -> Vec<f64> {
    let mut out = Vec::with_capacity(param_count(params));
    for m in params {
        out.extend_from_slice(m.as_slice());
    }
    out
}

/// Weighted average of aligned parameter vectors. Weights are normalized
/// internally; used by every FedAvg-style aggregator.
///
/// # Panics
/// Panics if `sets` is empty, lengths are misaligned, or all weights are zero.
pub fn param_weighted_average(sets: &[&ParamVec], weights: &[f64]) -> ParamVec {
    assert!(!sets.is_empty(), "param_weighted_average: empty input");
    assert_eq!(
        sets.len(),
        weights.len(),
        "param_weighted_average: weight count"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "param_weighted_average: zero total weight");
    let mut out: ParamVec = sets[0]
        .iter()
        .map(|m| Matrix::zeros(m.rows(), m.cols()))
        .collect();
    for (set, &w) in sets.iter().zip(weights) {
        assert_eq!(
            set.len(),
            out.len(),
            "param_weighted_average: layer count mismatch"
        );
        for (acc, m) in out.iter_mut().zip(set.iter()) {
            acc.axpy(w / total, m);
        }
    }
    out
}

/// Plain SGD with optional L2 weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f64,
    pub weight_decay: f64,
}

impl Sgd {
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Applies one step: `p -= lr * (g + wd * p)`.
    pub fn step(&self, params: &mut ParamVec, grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "sgd: grad count mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            if self.weight_decay != 0.0 {
                let decay = p.scale(self.weight_decay);
                p.axpy(-self.lr, &decay);
            }
            p.axpy(-self.lr, g);
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer for parameters shaped like `template`.
    pub fn new(lr: f64, template: &ParamVec) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: template
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect(),
            v: template
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect(),
        }
    }

    /// Applies one Adam update.
    ///
    /// # Panics
    /// Panics if `grads` is not aligned with the parameters this optimizer was
    /// created for.
    pub fn step(&mut self, params: &mut ParamVec, grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "adam: grad count mismatch");
        assert_eq!(params.len(), self.m.len(), "adam: state mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            assert_eq!(
                params[i].shape(),
                grads[i].shape(),
                "adam: shape mismatch at layer {i}"
            );
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for ((pm, pv), (&g, p)) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(grads[i].as_slice().iter().zip(params[i].as_mut_slice()))
            {
                *pm = self.beta1 * *pm + (1.0 - self.beta1) * g;
                *pv = self.beta2 * *pv + (1.0 - self.beta2) * g * g;
                let mhat = *pm / bc1;
                let vhat = *pv / bc2;
                *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Resets optimizer state (used when a client receives fresh global weights).
    pub fn reset(&mut self) {
        self.t = 0;
        for m in &mut self.m {
            *m = Matrix::zeros(m.rows(), m.cols());
        }
        for v in &mut self.v {
            *v = Matrix::zeros(v.rows(), v.cols());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;
    use crate::rng::Rng;

    /// Both optimizers should drive a convex quadratic toward its minimum.
    fn quadratic_loss(p: &Matrix) -> (f64, Matrix) {
        // loss = sum((p - 3)^2)
        let mut tape = Tape::new();
        let v = tape.param(p.clone());
        let shifted = tape.add_scalar(v, -3.0);
        let sq = tape.hadamard(shifted, shifted);
        let loss = tape.sum_all(sq);
        let g = tape.backward(loss).get(v, p);
        (tape.value(loss)[(0, 0)], g)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut rng = Rng::seed_from_u64(1);
        let mut params = vec![Matrix::random_normal(2, 2, 0.0, 1.0, &mut rng)];
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            let (_, g) = quadratic_loss(&params[0]);
            opt.step(&mut params, &[g]);
        }
        assert!(params[0].max_abs_diff(&Matrix::full(2, 2, 3.0)) < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut rng = Rng::seed_from_u64(2);
        let mut params = vec![Matrix::random_normal(2, 2, 0.0, 1.0, &mut rng)];
        let mut opt = Adam::new(0.1, &params);
        for _ in 0..500 {
            let (_, g) = quadratic_loss(&params[0]);
            opt.step(&mut params, &[g]);
        }
        assert!(params[0].max_abs_diff(&Matrix::full(2, 2, 3.0)) < 1e-3);
    }

    #[test]
    fn weighted_average_matches_manual() {
        let a = vec![Matrix::full(1, 2, 1.0)];
        let b = vec![Matrix::full(1, 2, 4.0)];
        let avg = param_weighted_average(&[&a, &b], &[3.0, 1.0]);
        assert!((avg[0][(0, 0)] - 1.75).abs() < 1e-12);
    }

    #[test]
    fn param_bytes_counts_f64() {
        let p = vec![Matrix::zeros(3, 4), Matrix::zeros(1, 5)];
        assert_eq!(param_count(&p), 17);
        assert_eq!(param_bytes(&p), 17 * 8);
    }

    #[test]
    fn sgd_weight_decay_shrinks() {
        let mut params = vec![Matrix::full(1, 1, 10.0)];
        let opt = Sgd {
            lr: 0.1,
            weight_decay: 1.0,
        };
        let zero_grad = vec![Matrix::zeros(1, 1)];
        for _ in 0..10 {
            opt.step(&mut params, &zero_grad);
        }
        assert!(params[0][(0, 0)] < 10.0);
        assert!(params[0][(0, 0)] > 0.0);
    }
}
