//! Small dense linear-algebra routines: linear solves and (weighted) least
//! squares. These back the kernel-SHAP weighted regression (paper Eq. 6) and
//! classic-ML fitting.

use crate::matrix::Matrix;

/// Error type for linear solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so).
    Singular,
    /// Input dimensions are inconsistent.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves `A x = b` for square `A` using Gaussian elimination with partial
/// pivoting. `b` may have multiple right-hand-side columns.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.rows() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let m = b.cols();
    // Augmented matrix [A | b].
    let mut aug = Matrix::zeros(n, n + m);
    for r in 0..n {
        aug.row_mut(r)[..n].copy_from_slice(a.row(r));
        aug.row_mut(r)[n..].copy_from_slice(b.row(r));
    }

    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, aug[(r, col)].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty range");
        if pivot_val < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            // Swap rows in place.
            for c in 0..n + m {
                let tmp = aug[(pivot_row, c)];
                aug[(pivot_row, c)] = aug[(col, c)];
                aug[(col, c)] = tmp;
            }
        }
        let inv = 1.0 / aug[(col, col)];
        for r in col + 1..n {
            let factor = aug[(r, col)] * inv;
            if factor == 0.0 {
                continue;
            }
            for c in col..n + m {
                let v = aug[(col, c)];
                aug[(r, c)] -= factor * v;
            }
        }
    }

    // Back substitution.
    let mut x = Matrix::zeros(n, m);
    for r in (0..n).rev() {
        for c in 0..m {
            let mut v = aug[(r, n + c)];
            for k in r + 1..n {
                v -= aug[(r, k)] * x[(k, c)];
            }
            x[(r, c)] = v / aug[(r, r)];
        }
    }
    Ok(x)
}

/// Ordinary least squares: `argmin_beta ||X beta - y||^2` with ridge
/// stabilization `lambda` (pass 0 for plain OLS; a tiny ridge is added
/// automatically if the normal equations are singular).
pub fn least_squares(x: &Matrix, y: &Matrix, lambda: f64) -> Result<Matrix, LinalgError> {
    weighted_least_squares(x, y, None, lambda)
}

/// Weighted least squares: `argmin_beta sum_i w_i (x_i beta - y_i)^2`.
///
/// This is the solver behind kernel SHAP (paper Eq. 6): rows are sampled
/// coalitions, weights are the Shapley kernel weights.
pub fn weighted_least_squares(
    x: &Matrix,
    y: &Matrix,
    weights: Option<&[f64]>,
    lambda: f64,
) -> Result<Matrix, LinalgError> {
    if y.rows() != x.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    if let Some(w) = weights {
        if w.len() != x.rows() {
            return Err(LinalgError::DimensionMismatch);
        }
    }
    let d = x.cols();
    // Form X^T W X and X^T W y directly (d is small for SHAP: one row per player).
    let mut xtwx = Matrix::zeros(d, d);
    let mut xtwy = Matrix::zeros(d, y.cols());
    for r in 0..x.rows() {
        let w = weights.map_or(1.0, |w| w[r]);
        if w == 0.0 {
            continue;
        }
        let xr = x.row(r);
        for i in 0..d {
            let wxi = w * xr[i];
            if wxi == 0.0 {
                continue;
            }
            for j in 0..d {
                xtwx[(i, j)] += wxi * xr[j];
            }
            for j in 0..y.cols() {
                xtwy[(i, j)] += wxi * y[(r, j)];
            }
        }
    }
    for i in 0..d {
        xtwx[(i, i)] += lambda;
    }
    match solve(&xtwx, &xtwy) {
        Ok(beta) => Ok(beta),
        Err(LinalgError::Singular) if lambda == 0.0 => {
            // Retry with a small ridge: sampled-coalition designs are often rank-deficient.
            for i in 0..d {
                xtwx[(i, i)] += 1e-8;
            }
            solve(&xtwx, &xtwy)
        }
        Err(e) => Err(e),
    }
}

/// Constrained weighted least squares where the coefficients must sum to a
/// fixed `total` (the SHAP efficiency constraint). Implemented by
/// substituting the last coefficient: `beta_last = total - sum(beta_rest)`.
pub fn sum_constrained_wls(
    x: &Matrix,
    y: &Matrix,
    weights: &[f64],
    total: f64,
) -> Result<Matrix, LinalgError> {
    let d = x.cols();
    if d == 0 {
        return Err(LinalgError::DimensionMismatch);
    }
    if d == 1 {
        return Ok(Matrix::from_vec(1, 1, vec![total]));
    }
    // Substitute: y' = y - total * x_last; x'_j = x_j - x_last.
    let mut xr = Matrix::zeros(x.rows(), d - 1);
    let mut yr = Matrix::zeros(y.rows(), 1);
    for r in 0..x.rows() {
        let last = x[(r, d - 1)];
        for c in 0..d - 1 {
            xr[(r, c)] = x[(r, c)] - last;
        }
        yr[(r, 0)] = y[(r, 0)] - total * last;
    }
    let beta = weighted_least_squares(&xr, &yr, Some(weights), 1e-10)?;
    let mut out = Matrix::zeros(d, 1);
    let mut rest = 0.0;
    for c in 0..d - 1 {
        out[(c, 0)] = beta[(c, 0)];
        rest += beta[(c, 0)];
    }
    out[(d - 1, 0)] = total - rest;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = Rng::seed_from_u64(5);
        let a = Matrix::random_normal(5, 5, 0.0, 1.0, &mut rng);
        let x_true = Matrix::random_normal(5, 2, 0.0, 1.0, &mut rng);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::col_vector(&[1.0, 2.0]);
        assert_eq!(solve(&a, &b), Err(LinalgError::Singular));
    }

    #[test]
    fn least_squares_recovers_linear_model() {
        let mut rng = Rng::seed_from_u64(7);
        let x = Matrix::random_normal(50, 3, 0.0, 1.0, &mut rng);
        let beta_true = Matrix::col_vector(&[2.0, -1.0, 0.5]);
        let y = x.matmul(&beta_true);
        let beta = least_squares(&x, &y, 0.0).unwrap();
        assert!(beta.max_abs_diff(&beta_true) < 1e-8);
    }

    #[test]
    fn weighted_least_squares_ignores_zero_weight_rows() {
        // Two clean rows determine the line; a third contaminated row has w=0.
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let y = Matrix::col_vector(&[1.0, 2.0, 100.0]);
        let beta = weighted_least_squares(&x, &y, Some(&[1.0, 1.0, 0.0]), 0.0).unwrap();
        assert!((beta[(0, 0)] - 1.0).abs() < 1e-8);
        assert!((beta[(1, 0)] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn sum_constrained_wls_respects_constraint() {
        let mut rng = Rng::seed_from_u64(11);
        let x = Matrix::from_fn(40, 4, |_, _| if rng.bool(0.5) { 1.0 } else { 0.0 });
        let y = Matrix::from_fn(40, 1, |r, _| {
            x.row(r).iter().sum::<f64>() + rng.normal(0.0, 0.01)
        });
        let w = vec![1.0; 40];
        let beta = sum_constrained_wls(&x, &y, &w, 4.0).unwrap();
        let total: f64 = beta.col(0).iter().sum();
        assert!((total - 4.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn singular_design_falls_back_to_ridge() {
        // Duplicate column -> singular normal equations; ridge fallback must solve.
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let y = Matrix::col_vector(&[2.0, 4.0, 6.0]);
        let beta = least_squares(&x, &y, 0.0).unwrap();
        // Prediction should still be accurate even though coefficients are not unique.
        let pred = x.matmul(&beta);
        assert!(pred.max_abs_diff(&y) < 1e-3);
    }
}
