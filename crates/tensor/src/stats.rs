//! Descriptive statistics used across the workspace: median / MAD for the
//! drift detector (paper §III-B3), cosine similarity for the layer-wise
//! clustering (Alg. 1), and box-plot summaries for the scalability figure.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of the middle two for even lengths); 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation (MAD): `median(|x - median(x)|)`.
///
/// The paper's drift detector normalizes latent distances by the per-class
/// MAD; a MAD of zero means the class is degenerate (all samples at the
/// centroid) and callers should treat any deviation as drift.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Linear-interpolated quantile, `q` in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile: q={q} out of [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Five-number box-plot summary (min, Q1, median, Q3, max), as reported in
/// the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxSummary {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

impl BoxSummary {
    pub fn from_samples(xs: &[f64]) -> Self {
        Self {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
        }
    }
}

/// Cosine similarity of two equal-length vectors; 0 if either is all-zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Euclidean distance of two equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_known_value() {
        // xs = [1,1,2,2,4,6,9]: median 2, deviations [1,1,0,0,2,4,7], MAD 1.
        assert_eq!(mad(&[1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0]), 1.0);
    }

    #[test]
    fn mad_zero_for_constant() {
        assert_eq!(mad(&[5.0; 10]), 0.0);
    }

    #[test]
    fn quantiles_and_box() {
        let xs: Vec<f64> = (1..=5).map(|v| v as f64).collect();
        let b = BoxSummary::from_samples(&xs);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
    }

    #[test]
    fn cosine_similarity_extremes() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn euclidean_matches_pythagoras() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_known() {
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }
}
