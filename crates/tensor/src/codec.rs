//! Minimal self-describing binary codec for model persistence.
//!
//! Little-endian, length-prefixed; no external dependencies. Every value is
//! written through [`ByteWriter`] and read back through [`ByteReader`], which
//! validates bounds and yields typed errors instead of panicking on corrupt
//! input.

use crate::matrix::Matrix;

/// Magic header for the fixed-layout matrix frame (`FEXMATF1` era).
pub const MATRIX_FIXED_MAGIC: u64 = 0xFE_F1_0A_70_4D_A7_01_00;

/// FNV-1a 64 over raw bytes — the store's content-address hash and the
/// fixed-layout frame's payload checksum share this function so blob keys
/// and in-frame integrity agree byte for byte.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A tag byte didn't match any known variant.
    BadTag(u8),
    /// A declared length is implausible for the remaining input.
    BadLength(u64),
    /// A magic/version header mismatch.
    BadHeader,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            CodecError::BadLength(n) => write!(f, "implausible length {n}"),
            CodecError::BadHeader => write!(f, "bad magic/version header"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub fn write_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn write_f64_slice(&mut self, xs: &[f64]) {
        self.write_usize(xs.len());
        for &x in xs {
            self.write_f64(x);
        }
    }

    pub fn write_matrix(&mut self, m: &Matrix) {
        self.write_usize(m.rows());
        self.write_usize(m.cols());
        for &v in m.as_slice() {
            self.write_f64(v);
        }
    }

    pub fn write_matrices(&mut self, ms: &[Matrix]) {
        self.write_usize(ms.len());
        for m in ms {
            self.write_matrix(m);
        }
    }

    /// Fixed-layout frame: magic, rows, cols, payload FNV-1a (all u64 LE),
    /// then the row-major payload as raw f64 LE words. The payload region is
    /// a single contiguous `memcpy`-shaped block so a reader can lift it with
    /// one pass (and an mmap'd consumer could borrow it in place); the
    /// checksum makes truncation and bit flips detectable without decoding.
    pub fn write_matrix_fixed(&mut self, m: &Matrix) {
        let mut payload = Vec::with_capacity(m.as_slice().len() * 8);
        for &v in m.as_slice() {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.write_u64(MATRIX_FIXED_MAGIC);
        self.write_u64(m.rows() as u64);
        self.write_u64(m.cols() as u64);
        self.write_u64(fnv1a(&payload));
        self.buf.extend_from_slice(&payload);
    }

    pub fn write_matrices_fixed(&mut self, ms: &[Matrix]) {
        self.write_usize(ms.len());
        for m in ms {
            self.write_matrix_fixed(m);
        }
    }
}

/// Bounds-checked byte source.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn read_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.read_u64()?;
        // A length can never exceed the remaining input in any encoding we
        // produce (every element is at least one byte).
        if v > (self.remaining() as u64).saturating_add(8) && v > 1 << 32 {
            return Err(CodecError::BadLength(v));
        }
        Ok(v as usize)
    }

    pub fn read_f64(&mut self) -> Result<f64, CodecError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn read_str(&mut self) -> Result<String, CodecError> {
        let len = self.read_usize()?;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadHeader)
    }

    pub fn read_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.read_usize()?;
        if len.saturating_mul(8) > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        (0..len).map(|_| self.read_f64()).collect()
    }

    pub fn read_matrix(&mut self) -> Result<Matrix, CodecError> {
        let rows = self.read_usize()?;
        let cols = self.read_usize()?;
        let n = rows.saturating_mul(cols);
        if n.saturating_mul(8) > self.remaining() {
            return Err(CodecError::BadLength(n as u64));
        }
        let data: Result<Vec<f64>, _> = (0..n).map(|_| self.read_f64()).collect();
        Ok(Matrix::from_vec(rows, cols, data?))
    }

    pub fn read_matrices(&mut self) -> Result<Vec<Matrix>, CodecError> {
        let len = self.read_usize()?;
        if len > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        (0..len).map(|_| self.read_matrix()).collect()
    }

    /// Counterpart of [`ByteWriter::write_matrix_fixed`]. Verifies the magic
    /// and the payload checksum, then lifts the payload in one bulk pass
    /// (`chunks_exact` over the contiguous f64 LE block — a single memcpy on
    /// little-endian targets).
    pub fn read_matrix_fixed(&mut self) -> Result<Matrix, CodecError> {
        if self.read_u64()? != MATRIX_FIXED_MAGIC {
            return Err(CodecError::BadHeader);
        }
        let rows = self.read_u64()?;
        let cols = self.read_u64()?;
        let n = rows.saturating_mul(cols);
        if n.saturating_mul(8) > self.remaining() as u64 {
            return Err(CodecError::BadLength(n));
        }
        let want = self.read_u64()?;
        let payload = self.take(n as usize * 8)?;
        if fnv1a(payload) != want {
            return Err(CodecError::BadHeader);
        }
        let data: Vec<f64> = payload
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Ok(Matrix::from_vec(rows as usize, cols as usize, data))
    }

    pub fn read_matrices_fixed(&mut self) -> Result<Vec<Matrix>, CodecError> {
        let len = self.read_usize()?;
        if len > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        (0..len).map(|_| self.read_matrix_fixed()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.write_u8(7);
        w.write_u64(u64::MAX - 3);
        w.write_f64(-1.5e300);
        w.write_str("hello fexiot");
        w.write_f64_slice(&[1.0, 2.0, 3.5]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.read_f64().unwrap(), -1.5e300);
        assert_eq!(r.read_str().unwrap(), "hello fexiot");
        assert_eq!(r.read_f64_vec().unwrap(), vec![1.0, 2.0, 3.5]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn matrices_roundtrip() {
        let mut rng = Rng::seed_from_u64(1);
        let ms = vec![
            Matrix::random_normal(3, 4, 0.0, 1.0, &mut rng),
            Matrix::zeros(1, 7),
            Matrix::eye(5),
        ];
        let mut w = ByteWriter::new();
        w.write_matrices(&ms);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = r.read_matrices().unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in ms.iter().zip(&back) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut w = ByteWriter::new();
        w.write_matrix(&Matrix::ones(4, 4));
        let bytes = w.into_bytes();
        for cut in [0, 1, 8, 17, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.read_matrix().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = ByteWriter::new();
        w.write_u64(u64::MAX / 2); // absurd rows
        w.write_u64(u64::MAX / 2); // absurd cols
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.read_matrix(),
            Err(CodecError::BadLength(_)) | Err(CodecError::UnexpectedEof)
        ));
    }
}
