//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the workspace is reproducible from a single `u64` seed,
//! so we ship a first-party xoshiro256** generator (public-domain algorithm by
//! Blackman & Vigna) instead of depending on a `rand` version whose stream
//! might change across releases.

/// xoshiro256** PRNG with SplitMix64 seeding.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator deterministically from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    /// Derives an independent child generator; used to give each federated
    /// client / worker its own stream.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::seed_from_u64(self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Snapshot of the internal state, for checkpointing mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`Rng::state`] snapshot, continuing the
    /// stream exactly where the snapshot was taken.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "usize(0) is empty");
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "range: empty interval {lo}..{hi}");
        lo + self.usize(hi - lo)
    }

    /// Bernoulli draw with success probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Gamma(shape, scale=1) via Marsaglia & Tsang (2000); handles shape < 1 by boosting.
    pub fn gamma(&mut self, shape: f64) -> f64 {
        assert!(shape > 0.0, "gamma: shape must be positive");
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
            let g = self.gamma(shape + 1.0);
            let u = self.f64().max(f64::MIN_POSITIVE);
            return g * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.f64();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }

    /// Sample from a symmetric Dirichlet / general Dirichlet with the given
    /// concentration parameters. The result sums to 1.
    pub fn dirichlet(&mut self, alphas: &[f64]) -> Vec<f64> {
        assert!(!alphas.is_empty(), "dirichlet: empty alphas");
        let mut draws: Vec<f64> = alphas.iter().map(|&a| self.gamma(a)).collect();
        let total: f64 = draws.iter().sum();
        if total <= 0.0 {
            // Degenerate (all gamma draws underflowed): fall back to uniform.
            let u = 1.0 / alphas.len() as f64;
            return vec![u; alphas.len()];
        }
        for d in &mut draws {
            *d /= total;
        }
        draws
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chooses one element by reference.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.usize(items.len())]
    }

    /// Samples `k` distinct indices from `0..n` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: only the first k positions need randomizing.
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Samples an index according to unnormalized non-negative weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: non-positive total weight");
        let mut t = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = Rng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = Rng::seed_from_u64(13);
        for &shape in &[0.5, 1.0, 2.5, 10.0] {
            let n = 20_000;
            let m = (0..n).map(|_| r.gamma(shape)).sum::<f64>() / n as f64;
            assert!(
                (m - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} mean {m}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = Rng::seed_from_u64(17);
        for &alpha in &[0.1, 1.0, 10.0] {
            let d = r.dirichlet(&[alpha; 6]);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(d.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn dirichlet_low_alpha_is_sparse() {
        let mut r = Rng::seed_from_u64(19);
        // With alpha=0.05 the mass concentrates: max component should usually dominate.
        let mut dominated = 0;
        for _ in 0..100 {
            let d = r.dirichlet(&[0.05; 10]);
            if d.iter().cloned().fold(0.0, f64::max) > 0.5 {
                dominated += 1;
            }
        }
        assert!(dominated > 60, "only {dominated} draws dominated");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(23);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from_u64(29);
        let s = r.sample_indices(100, 30);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng::seed_from_u64(31);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }
}
