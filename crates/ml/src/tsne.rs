//! Exact t-SNE (van der Maaten & Hinton, 2008) for 2-D visualization of
//! graph representations (paper Fig. 6). O(n²) per iteration — fine for the
//! 1,500-sample visualizations the paper draws.

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;
use fexiot_tensor::stats::euclidean;

/// t-SNE hyperparameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    pub perplexity: f64,
    pub iterations: usize,
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of iterations.
    pub exaggeration: f64,
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 300,
            learning_rate: 100.0,
            exaggeration: 4.0,
            seed: 0,
        }
    }
}

/// Embeds the rows of `x` into 2-D.
pub fn tsne(x: &Matrix, config: &TsneConfig) -> Matrix {
    let n = x.rows();
    assert!(n >= 2, "tsne: need at least 2 points");
    let p = joint_probabilities(x, config.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0));

    let mut rng = Rng::seed_from_u64(config.seed);
    let mut y = Matrix::random_normal(n, 2, 0.0, 1e-2, &mut rng);
    let mut velocity = Matrix::zeros(n, 2);
    let exaggeration_end = config.iterations / 4;

    for iter in 0..config.iterations {
        let exag = if iter < exaggeration_end {
            config.exaggeration
        } else {
            1.0
        };
        // Student-t affinities in embedding space.
        let mut q_num = vec![0.0; n * n];
        let mut q_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d2 = euclidean(y.row(i), y.row(j)).powi(2);
                let v = 1.0 / (1.0 + d2);
                q_num[i * n + j] = v;
                q_num[j * n + i] = v;
                q_sum += 2.0 * v;
            }
        }
        let q_sum = q_sum.max(1e-12);

        // Gradient: 4 * sum_j (exag*p_ij - q_ij) * (y_i - y_j) * (1 + |y_i - y_j|^2)^-1.
        let mut grad = Matrix::zeros(n, 2);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let num = q_num[i * n + j];
                let q = (num / q_sum).max(1e-12);
                let mult = (exag * p[i * n + j] - q) * num;
                for d in 0..2 {
                    grad[(i, d)] += 4.0 * mult * (y[(i, d)] - y[(j, d)]);
                }
            }
        }

        // Momentum update.
        let momentum = if iter < exaggeration_end { 0.5 } else { 0.8 };
        for i in 0..n {
            for d in 0..2 {
                velocity[(i, d)] =
                    momentum * velocity[(i, d)] - config.learning_rate * grad[(i, d)];
                y[(i, d)] += velocity[(i, d)];
            }
        }
        // Re-center.
        let mean = y.mean_rows();
        for i in 0..n {
            for d in 0..2 {
                y[(i, d)] -= mean[(0, d)];
            }
        }
    }
    y
}

/// Symmetric joint probabilities with per-point bandwidths found by binary
/// search to hit the requested perplexity.
fn joint_probabilities(x: &Matrix, perplexity: f64) -> Vec<f64> {
    let n = x.rows();
    let mut d2 = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = euclidean(x.row(i), x.row(j)).powi(2);
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    let target_entropy = perplexity.ln();
    let mut p_cond = vec![0.0; n * n];
    for i in 0..n {
        // Binary search beta = 1/(2 sigma^2).
        let mut beta = 1.0;
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        for _ in 0..50 {
            let mut sum = 0.0;
            let mut weighted = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let e = (-beta * d2[i * n + j]).exp();
                sum += e;
                weighted += beta * d2[i * n + j] * e;
            }
            let sum = sum.max(1e-300);
            let entropy = sum.ln() + weighted / sum;
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                lo = beta;
                beta = if hi.is_finite() {
                    0.5 * (beta + hi)
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = 0.5 * (beta + lo);
            }
        }
        let mut sum = 0.0;
        for j in 0..n {
            if j != i {
                let e = (-beta * d2[i * n + j]).exp();
                p_cond[i * n + j] = e;
                sum += e;
            }
        }
        let sum = sum.max(1e-300);
        for j in 0..n {
            p_cond[i * n + j] /= sum;
        }
    }
    // Symmetrize.
    let mut p = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            p[i * n + j] = ((p_cond[i * n + j] + p_cond[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters(per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..per {
                let base = c as f64 * 8.0;
                rows.push(vec![
                    base + rng.normal(0.0, 0.3),
                    base + rng.normal(0.0, 0.3),
                    rng.normal(0.0, 0.3),
                    rng.normal(0.0, 0.3),
                ]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn separated_clusters_stay_separated() {
        let (x, labels) = two_clusters(20, 1);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 150,
                ..Default::default()
            },
        );
        assert_eq!(y.shape(), (40, 2));
        assert!(y.is_finite());
        // Mean within-cluster distance must be well below between-cluster distance.
        let dist = |i: usize, j: usize| euclidean(y.row(i), y.row(j));
        let mut within = Vec::new();
        let mut between = Vec::new();
        for i in 0..40 {
            for j in (i + 1)..40 {
                if labels[i] == labels[j] {
                    within.push(dist(i, j));
                } else {
                    between.push(dist(i, j));
                }
            }
        }
        let mw = fexiot_tensor::stats::mean(&within);
        let mb = fexiot_tensor::stats::mean(&between);
        assert!(mb > 2.0 * mw, "within {mw}, between {mb}");
    }

    #[test]
    fn output_is_centered() {
        let (x, _) = two_clusters(10, 2);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 60,
                ..Default::default()
            },
        );
        let mean = y.mean_rows();
        assert!(mean[(0, 0)].abs() < 1e-6);
        assert!(mean[(0, 1)].abs() < 1e-6);
    }

    #[test]
    fn deterministic_for_seed() {
        let (x, _) = two_clusters(8, 3);
        let cfg = TsneConfig {
            iterations: 40,
            seed: 7,
            ..Default::default()
        };
        let a = tsne(&x, &cfg);
        let b = tsne(&x, &cfg);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }
}
