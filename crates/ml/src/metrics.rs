//! Classification metrics: accuracy, precision, recall, F1 — the four numbers
//! every figure and table in the paper's evaluation reports.

/// Binary-classification metrics (positive class = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub accuracy: f64,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Metrics {
    /// Computes metrics from aligned predictions and ground truth.
    ///
    /// Conventions for degenerate cases: precision/recall are 1 when there
    /// are no predicted/actual positives respectively and no errors, else 0;
    /// empty inputs yield all-zero metrics.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn from_predictions(pred: &[usize], truth: &[usize]) -> Self {
        assert_eq!(pred.len(), truth.len(), "metrics: length mismatch");
        if pred.is_empty() {
            return Self {
                accuracy: 0.0,
                precision: 0.0,
                recall: 0.0,
                f1: 0.0,
            };
        }
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut tn = 0usize;
        let mut fneg = 0usize;
        for (&p, &t) in pred.iter().zip(truth) {
            match (p != 0, t != 0) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, false) => tn += 1,
                (false, true) => fneg += 1,
            }
        }
        let accuracy = (tp + tn) as f64 / pred.len() as f64;
        let precision = if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else if fneg == 0 {
            1.0
        } else {
            0.0
        };
        let recall = if tp + fneg > 0 {
            tp as f64 / (tp + fneg) as f64
        } else if fp == 0 {
            1.0
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            accuracy,
            precision,
            recall,
            f1,
        }
    }

    /// Averages a set of metric rows (used for multi-client reporting).
    pub fn mean(rows: &[Metrics]) -> Metrics {
        if rows.is_empty() {
            return Metrics {
                accuracy: 0.0,
                precision: 0.0,
                recall: 0.0,
                f1: 0.0,
            };
        }
        let n = rows.len() as f64;
        Metrics {
            accuracy: rows.iter().map(|m| m.accuracy).sum::<f64>() / n,
            precision: rows.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: rows.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: rows.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc {:.3}  prec {:.3}  rec {:.3}  f1 {:.3}",
            self.accuracy, self.precision, self.recall, self.f1
        )
    }
}

/// Multiclass confusion matrix (row = truth, column = prediction).
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    pub classes: usize,
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    pub fn from_predictions(pred: &[usize], truth: &[usize], classes: usize) -> Self {
        assert_eq!(pred.len(), truth.len(), "confusion: length mismatch");
        let mut counts = vec![vec![0usize; classes]; classes];
        for (&p, &t) in pred.iter().zip(truth) {
            counts[t.min(classes - 1)][p.min(classes - 1)] += 1;
        }
        Self { classes, counts }
    }

    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = Metrics::from_predictions(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn known_confusion_values() {
        // tp=2, fp=1, tn=1, fn=1.
        let m = Metrics::from_predictions(&[1, 1, 1, 0, 0], &[1, 1, 0, 0, 1]);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_no_positives() {
        let m = Metrics::from_predictions(&[0, 0], &[0, 0]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn degenerate_all_missed() {
        let m = Metrics::from_predictions(&[0, 0], &[1, 1]);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn mean_of_rows() {
        let a = Metrics {
            accuracy: 1.0,
            precision: 1.0,
            recall: 0.0,
            f1: 0.0,
        };
        let b = Metrics {
            accuracy: 0.0,
            precision: 0.0,
            recall: 1.0,
            f1: 1.0,
        };
        let m = Metrics::mean(&[a, b]);
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.f1, 0.5);
    }

    #[test]
    fn confusion_matrix_diagonal() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 2, 2], &[0, 1, 2, 1], 3);
        assert_eq!(cm.counts[1][1], 1);
        assert_eq!(cm.counts[1][2], 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
    }
}
