//! k-nearest-neighbors classifier (the Scikit-learn `KNeighborsClassifier`
//! stand-in, paper Fig. 3).

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::stats::euclidean;

/// A fitted (memorized) KNN classifier.
pub struct Knn {
    x: Matrix,
    y: Vec<usize>,
    k: usize,
    classes: usize,
}

impl Knn {
    /// Stores the training set. `k` is clamped to the training size.
    pub fn fit(x: &Matrix, y: &[usize], classes: usize, k: usize) -> Self {
        assert!(x.rows() > 0, "knn: empty training set");
        assert_eq!(x.rows(), y.len(), "knn: label count mismatch");
        Self {
            x: x.clone(),
            y: y.to_vec(),
            k: k.clamp(1, x.rows()),
            classes,
        }
    }

    /// Writes the normalized class votes for `row` into `votes` (one slot
    /// per class, already zeroed).
    fn vote(&self, row: &[f64], votes: &mut [f64]) {
        let mut dists: Vec<(f64, usize)> = (0..self.x.rows())
            .map(|i| (euclidean(self.x.row(i), row), self.y[i]))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for &(_, label) in dists.iter().take(self.k) {
            votes[label] += 1.0;
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in votes {
                *v /= total;
            }
        }
    }

    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.classes);
        for r in 0..x.rows() {
            self.vote(x.row(r), out.row_mut(r));
        }
        out
    }

    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x);
        (0..p.rows()).map(|r| p.argmax_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_tensor::rng::Rng;

    #[test]
    fn one_nn_memorizes_training_set() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 0.0]]);
        let y = vec![0, 1, 0];
        let knn = Knn::fit(&x, &y, 2, 1);
        assert_eq!(knn.predict(&x), y);
    }

    #[test]
    fn majority_vote_smooths_noise() {
        // One mislabeled point surrounded by correct ones: k=5 outvotes it.
        let mut rows = vec![vec![0.0, 0.0]];
        let mut y = vec![1]; // mislabeled
        for i in 0..8 {
            let a = (i as f64) * 0.05 + 0.01;
            rows.push(vec![a, -a]);
            y.push(0);
        }
        let x = Matrix::from_rows(&rows);
        let knn = Knn::fit(&x, &y, 2, 5);
        let pred = knn.predict(&Matrix::from_rows(&[vec![0.0, 0.0]]));
        assert_eq!(pred[0], 0);
    }

    #[test]
    fn blob_accuracy() {
        let mut rng = Rng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let c = i % 2;
            rows.push(vec![
                c as f64 * 3.0 + rng.normal(0.0, 0.5),
                rng.normal(0.0, 0.5),
            ]);
            y.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let knn = Knn::fit(&x, &y, 2, 7);
        let preds = knn.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.97, "knn accuracy {acc}");
    }

    #[test]
    fn k_clamped_to_dataset() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let knn = Knn::fit(&x, &[0, 1], 2, 100);
        // Must not panic, and with k=2 the vote ties; argmax picks class 0.
        assert_eq!(knn.predict(&Matrix::from_rows(&[vec![0.4]]))[0], 0);
    }
}
