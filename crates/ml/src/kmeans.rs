//! k-means clustering with k-means++ initialization (paper Fig. 6 clusters
//! graph representations; Algorithm 1 uses the binary variant to split client
//! weight vectors).

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;
use fexiot_tensor::stats::euclidean;

/// k-means result: assignments and centroids.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    pub assignments: Vec<usize>,
    pub centroids: Matrix,
    pub inertia: f64,
    pub iterations: usize,
}

/// Runs k-means++ on the rows of `x`.
///
/// # Panics
/// Panics if `k == 0` or `x` has no rows.
pub fn kmeans(x: &Matrix, k: usize, max_iters: usize, rng: &mut Rng) -> KMeansResult {
    assert!(k >= 1, "kmeans: k must be >= 1");
    assert!(x.rows() > 0, "kmeans: empty input");
    let n = x.rows();
    let k = k.min(n);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(x.row(rng.usize(n)).to_vec());
    while centroids.len() < k {
        let d2: Vec<f64> = (0..n)
            .map(|i| {
                centroids
                    .iter()
                    .map(|c| euclidean(x.row(i), c).powi(2))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total > 0.0 {
            rng.weighted_index(&d2)
        } else {
            rng.usize(n)
        };
        centroids.push(x.row(next).to_vec());
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // i indexes both x rows and assignments
        for i in 0..n {
            let best = (0..k)
                .min_by(|&a, &b| {
                    euclidean(x.row(i), &centroids[a])
                        .partial_cmp(&euclidean(x.row(i), &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; x.cols()]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assignments[i]] += 1;
            for (s, &v) in sums[assignments[i]].iter_mut().zip(x.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
            // Empty clusters keep their previous centroid.
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia: f64 = (0..n)
        .map(|i| euclidean(x.row(i), &centroids[assignments[i]]).powi(2))
        .sum();
    KMeansResult {
        assignments,
        centroids: Matrix::from_rows(&centroids),
        inertia,
        iterations,
    }
}

/// Binary split by cosine similarity: clusters vectors into two groups by
/// k-means on L2-normalized rows (equivalent to spherical 2-means). Used by
/// Algorithm 1's `BinaryClustering` over client layer weights.
pub fn binary_cosine_split(rows: &[Vec<f64>], rng: &mut Rng) -> (Vec<usize>, Vec<usize>) {
    assert!(rows.len() >= 2, "binary split needs at least 2 vectors");
    let normed: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            let n = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if n > 0.0 {
                r.iter().map(|v| v / n).collect()
            } else {
                r.clone()
            }
        })
        .collect();
    let x = Matrix::from_rows(&normed);
    let result = kmeans(&x, 2, 50, rng);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, &c) in result.assignments.iter().enumerate() {
        if c == 0 {
            a.push(i);
        } else {
            b.push(i);
        }
    }
    // Guarantee both sides non-empty (k-means can collapse on degenerate data).
    if a.is_empty() {
        a.push(b.pop().expect("at least two rows"));
    } else if b.is_empty() {
        b.push(a.pop().expect("at least two rows"));
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(k: usize, per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for c in 0..k {
            for _ in 0..per {
                rows.push(vec![
                    c as f64 * 10.0 + rng.normal(0.0, 0.5),
                    (c as f64 * 7.0) % 13.0 + rng.normal(0.0, 0.5),
                ]);
                truth.push(c);
            }
        }
        (Matrix::from_rows(&rows), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, truth) = blobs(3, 40, 1);
        let mut rng = Rng::seed_from_u64(2);
        let result = kmeans(&x, 3, 100, &mut rng);
        // Cluster labels are permuted; check purity instead.
        let mut purity = 0usize;
        for c in 0..3 {
            let mut counts = [0usize; 3];
            for (i, &a) in result.assignments.iter().enumerate() {
                if a == c {
                    counts[truth[i]] += 1;
                }
            }
            purity += counts.iter().max().unwrap();
        }
        assert_eq!(purity, truth.len(), "impure clustering");
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (x, _) = blobs(4, 30, 3);
        let mut rng = Rng::seed_from_u64(4);
        let i1 = kmeans(&x, 1, 50, &mut rng).inertia;
        let i4 = kmeans(&x, 4, 50, &mut rng).inertia;
        assert!(i4 < i1 * 0.2, "i1 {i1}, i4 {i4}");
    }

    #[test]
    fn k_clamped_to_n() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let mut rng = Rng::seed_from_u64(5);
        let result = kmeans(&x, 10, 10, &mut rng);
        assert_eq!(result.centroids.rows(), 2);
    }

    #[test]
    fn binary_split_separates_directions() {
        // Two bundles of vectors pointing in orthogonal directions.
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                if i < 5 {
                    vec![1.0 + 0.01 * i as f64, 0.0]
                } else {
                    vec![0.0, 1.0 + 0.01 * i as f64]
                }
            })
            .collect();
        let mut rng = Rng::seed_from_u64(6);
        let (a, b) = binary_cosine_split(&rows, &mut rng);
        assert_eq!(a.len() + b.len(), 10);
        let group_of = |i: usize| a.contains(&i);
        for i in 1..5 {
            assert_eq!(group_of(i), group_of(0), "first bundle split");
        }
        for i in 6..10 {
            assert_eq!(group_of(i), group_of(5), "second bundle split");
        }
        assert_ne!(group_of(0), group_of(5), "bundles not separated");
    }

    #[test]
    fn binary_split_never_empty() {
        let rows = vec![vec![1.0, 0.0]; 6];
        let mut rng = Rng::seed_from_u64(7);
        let (a, b) = binary_cosine_split(&rows, &mut rng);
        assert!(!a.is_empty() && !b.is_empty());
    }
}
