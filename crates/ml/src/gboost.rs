//! Gradient-boosted trees for binary classification: regression trees fit to
//! the negative gradient of the logistic loss (the Scikit-learn
//! `GradientBoostingClassifier` stand-in, paper Fig. 3).

use crate::tree::{DecisionTree, TreeConfig};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone)]
pub struct GBoostConfig {
    pub stages: usize,
    pub learning_rate: f64,
    pub max_depth: usize,
    /// Row subsample fraction per stage (stochastic gradient boosting).
    pub subsample: f64,
    pub seed: u64,
}

impl Default for GBoostConfig {
    fn default() -> Self {
        Self {
            stages: 80,
            learning_rate: 0.2,
            max_depth: 3,
            subsample: 0.9,
            seed: 0,
        }
    }
}

/// A trained gradient-boosting classifier (binary).
pub struct GradientBoost {
    init: f64,
    learning_rate: f64,
    stages: Vec<DecisionTree>,
}

impl GradientBoost {
    /// Fits on labels in `{0, 1}`.
    pub fn fit(x: &Matrix, y: &[usize], config: GBoostConfig) -> Self {
        assert!(x.rows() > 0, "gboost: empty training set");
        assert_eq!(x.rows(), y.len(), "gboost: label count mismatch");
        assert!(y.iter().all(|&v| v <= 1), "gboost: binary labels only");
        let mut rng = Rng::seed_from_u64(config.seed);
        let n = x.rows();

        // Initial raw score: log-odds of the positive class.
        let pos = y.iter().filter(|&&v| v == 1).count() as f64;
        let p0 = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let init = (p0 / (1.0 - p0)).ln();

        let mut raw = vec![init; n];
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: 4,
            max_features: 0,
        };
        let mut stages = Vec::with_capacity(config.stages);
        for _ in 0..config.stages {
            // Negative gradient of logistic loss: residual = y - sigmoid(raw).
            let residuals: Vec<f64> = raw
                .iter()
                .zip(y)
                .map(|(&r, &t)| t as f64 - 1.0 / (1.0 + (-r).exp()))
                .collect();
            // Stochastic row subsample.
            let take = ((n as f64 * config.subsample).round() as usize).clamp(1, n);
            let sample = rng.sample_indices(n, take);
            let xs = x.select_rows(&sample);
            let rs: Vec<f64> = sample.iter().map(|&i| residuals[i]).collect();
            let tree = DecisionTree::fit_regressor(&xs, &rs, tree_config, &mut rng);
            for (i, r) in raw.iter_mut().enumerate() {
                *r += config.learning_rate * tree.predict_value(x.row(i));
            }
            stages.push(tree);
        }
        Self {
            init,
            learning_rate: config.learning_rate,
            stages,
        }
    }

    /// Raw additive score for one row.
    fn raw_score(&self, row: &[f64]) -> f64 {
        self.init
            + self.learning_rate
                * self
                    .stages
                    .iter()
                    .map(|t| t.predict_value(row))
                    .sum::<f64>()
    }

    /// Positive-class probability per row.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows())
            .map(|r| 1.0 / (1.0 + (-self.raw_score(x.row(r))).exp()))
            .collect()
    }

    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x)
            .iter()
            .map(|&p| usize::from(p >= 0.5))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        // Inside-circle vs outside-ring: nonlinear boundary.
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x = rng.uniform(-2.0, 2.0);
            let y = rng.uniform(-2.0, 2.0);
            rows.push(vec![x, y]);
            labels.push(usize::from(x * x + y * y < 1.5));
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn learns_nonlinear_ring() {
        let (x, y) = ring_data(400, 1);
        let (xt, yt) = ring_data(150, 2);
        let model = GradientBoost::fit(&x, &y, GBoostConfig::default());
        let preds = model.predict(&xt);
        let acc = preds.iter().zip(&yt).filter(|(p, t)| p == t).count() as f64 / yt.len() as f64;
        assert!(acc > 0.88, "gboost accuracy {acc}");
    }

    #[test]
    fn more_stages_do_not_hurt_training_fit() {
        let (x, y) = ring_data(200, 3);
        let short = GradientBoost::fit(
            &x,
            &y,
            GBoostConfig {
                stages: 5,
                ..Default::default()
            },
        );
        let long = GradientBoost::fit(
            &x,
            &y,
            GBoostConfig {
                stages: 80,
                ..Default::default()
            },
        );
        let acc = |m: &GradientBoost| {
            m.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
        };
        assert!(acc(&long) >= acc(&short));
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = ring_data(100, 4);
        let model = GradientBoost::fit(
            &x,
            &y,
            GBoostConfig {
                stages: 20,
                ..Default::default()
            },
        );
        for p in model.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn skewed_prior_initializes_log_odds() {
        let x = Matrix::from_rows(&(0..10).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y = vec![1, 1, 1, 1, 1, 1, 1, 1, 1, 0];
        let model = GradientBoost::fit(
            &x,
            &y,
            GBoostConfig {
                stages: 0,
                ..Default::default()
            },
        );
        let p = model.predict_proba(&x)[0];
        assert!((p - 0.9).abs() < 1e-9, "prior {p}");
    }
}
