//! A single-layer LSTM sequence model over the autograd tape — the substrate
//! for the DeepLog baseline (paper Table II).

use fexiot_tensor::autograd::{Tape, Var};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::Adam;
use fexiot_tensor::rng::Rng;

/// LSTM with an output projection head for next-token prediction.
pub struct Lstm {
    pub input_dim: usize,
    pub hidden_dim: usize,
    pub output_dim: usize,
    /// Parameter order: `[Wxi, Whi, bi, Wxf, Whf, bf, Wxo, Who, bo, Wxg, Whg, bg, Wy, by]`.
    pub params: Vec<Matrix>,
}

/// Handle to the parameters registered on a tape for one forward pass.
struct TapeParams {
    vars: Vec<Var>,
}

impl Lstm {
    pub fn new(input_dim: usize, hidden_dim: usize, output_dim: usize, rng: &mut Rng) -> Self {
        let mut params = Vec::with_capacity(14);
        for _ in 0..4 {
            params.push(Matrix::glorot(input_dim, hidden_dim, rng));
            params.push(Matrix::glorot(hidden_dim, hidden_dim, rng));
            params.push(Matrix::zeros(1, hidden_dim));
        }
        params.push(Matrix::glorot(hidden_dim, output_dim, rng));
        params.push(Matrix::zeros(1, output_dim));
        Self {
            input_dim,
            hidden_dim,
            output_dim,
            params,
        }
    }

    fn register(&self, tape: &mut Tape) -> TapeParams {
        TapeParams {
            vars: self.params.iter().map(|p| tape.param(p.clone())).collect(),
        }
    }

    /// One LSTM step; returns `(h', c')`.
    fn step(&self, tape: &mut Tape, tp: &TapeParams, x: Var, h: Var, c: Var) -> (Var, Var) {
        let gate = |tape: &mut Tape, base: usize, x: Var, h: Var| -> Var {
            let xz = tape.matmul(x, tp.vars[base]);
            let hz = tape.matmul(h, tp.vars[base + 1]);
            let s = tape.add(xz, hz);
            tape.add_row_broadcast(s, tp.vars[base + 2])
        };
        let i_raw = gate(tape, 0, x, h);
        let i = tape.sigmoid(i_raw);
        let f_raw = gate(tape, 3, x, h);
        let f = tape.sigmoid(f_raw);
        let o_raw = gate(tape, 6, x, h);
        let o = tape.sigmoid(o_raw);
        let g_raw = gate(tape, 9, x, h);
        let g = tape.tanh(g_raw);
        let fc = tape.hadamard(f, c);
        let ig = tape.hadamard(i, g);
        let c_new = tape.add(fc, ig);
        let c_act = tape.tanh(c_new);
        let h_new = tape.hadamard(o, c_act);
        (h_new, c_new)
    }

    /// Runs the sequence of one-hot/feature rows and returns per-step logits
    /// (the prediction *after* consuming each input) plus the registered
    /// parameter vars (for training).
    fn forward(&self, tape: &mut Tape, inputs: &[Vec<f64>]) -> (Vec<Var>, TapeParams) {
        let tp = self.register(tape);
        let mut h = tape.constant(Matrix::zeros(1, self.hidden_dim));
        let mut c = tape.constant(Matrix::zeros(1, self.hidden_dim));
        let mut logits = Vec::with_capacity(inputs.len());
        let wy = tp.vars[12];
        let by = tp.vars[13];
        for row in inputs {
            let x = tape.constant(Matrix::row_vector(row));
            let (h2, c2) = self.step(tape, &tp, x, h, c);
            h = h2;
            c = c2;
            let y = tape.matmul(h, wy);
            let y = tape.add_row_broadcast(y, by);
            logits.push(y);
        }
        (logits, tp)
    }

    /// Trains next-step prediction on `sequences` of token rows with integer
    /// targets (`targets[s][t]` is the token that follows `inputs[s][t]`).
    /// Returns the mean loss of the final epoch.
    pub fn fit_next_step(
        &mut self,
        sequences: &[Vec<Vec<f64>>],
        targets: &[Vec<usize>],
        epochs: usize,
        lr: f64,
    ) -> f64 {
        assert_eq!(
            sequences.len(),
            targets.len(),
            "lstm: sequence/target mismatch"
        );
        let mut adam = Adam::new(lr, &self.params);
        let weights = vec![1.0; self.output_dim];
        let mut last_loss = 0.0;
        for _ in 0..epochs {
            let mut epoch_loss = 0.0;
            let mut count = 0usize;
            for (seq, tgt) in sequences.iter().zip(targets) {
                if seq.is_empty() {
                    continue;
                }
                assert_eq!(seq.len(), tgt.len(), "lstm: per-step target mismatch");
                let mut tape = Tape::new();
                let (logits, tp) = self.forward(&mut tape, seq);
                // Stack per-step losses by summing scalars.
                let mut total: Option<Var> = None;
                for (l, &t) in logits.iter().zip(tgt) {
                    let step_loss = tape.softmax_cross_entropy(*l, &[t], &weights);
                    total = Some(match total {
                        Some(acc) => tape.add(acc, step_loss),
                        None => step_loss,
                    });
                }
                let total = total.expect("non-empty sequence");
                let loss = tape.scale(total, 1.0 / seq.len() as f64);
                let grads = tape.backward(loss);
                let gs: Vec<Matrix> = tp
                    .vars
                    .iter()
                    .zip(&self.params)
                    .map(|(&v, p)| grads.get(v, p))
                    .collect();
                adam.step(&mut self.params, &gs);
                epoch_loss += tape.value(loss)[(0, 0)];
                count += 1;
            }
            last_loss = epoch_loss / count.max(1) as f64;
        }
        last_loss
    }

    /// Per-step next-token probability rows for a sequence.
    pub fn predict_next_probs(&self, seq: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if seq.is_empty() {
            return Vec::new();
        }
        let mut tape = Tape::new();
        let (logits, _) = self.forward(&mut tape, seq);
        logits
            .into_iter()
            .map(|l| {
                let s = tape.softmax_row(l);
                tape.value(s).row(0).to_vec()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(i: usize, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn learns_deterministic_cycle() {
        // Sequence 0 -> 1 -> 2 -> 0 -> ... is perfectly predictable.
        let vocab = 3;
        let mut rng = Rng::seed_from_u64(1);
        let mut lstm = Lstm::new(vocab, 12, vocab, &mut rng);
        let seq: Vec<usize> = (0..30).map(|i| i % vocab).collect();
        let inputs: Vec<Vec<f64>> = seq[..seq.len() - 1]
            .iter()
            .map(|&t| one_hot(t, vocab))
            .collect();
        let targets: Vec<usize> = seq[1..].to_vec();
        let loss = lstm.fit_next_step(
            std::slice::from_ref(&inputs),
            std::slice::from_ref(&targets),
            120,
            0.02,
        );
        assert!(loss < 0.2, "final loss {loss}");
        let probs = lstm.predict_next_probs(&inputs);
        let correct = probs
            .iter()
            .zip(&targets)
            .filter(|(p, &t)| {
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0
                    == t
            })
            .count();
        assert!(
            correct as f64 / targets.len() as f64 > 0.9,
            "{correct}/{}",
            targets.len()
        );
    }

    #[test]
    fn probability_rows_normalized() {
        let mut rng = Rng::seed_from_u64(2);
        let lstm = Lstm::new(4, 8, 4, &mut rng);
        let probs = lstm.predict_next_probs(&[one_hot(0, 4), one_hot(2, 4)]);
        assert_eq!(probs.len(), 2);
        for p in probs {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_sequence_yields_no_predictions() {
        let mut rng = Rng::seed_from_u64(3);
        let lstm = Lstm::new(4, 8, 4, &mut rng);
        assert!(lstm.predict_next_probs(&[]).is_empty());
    }
}
