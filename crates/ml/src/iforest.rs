//! Isolation Forest anomaly detection (Liu, Ting & Zhou, 2008) — the
//! density-based baseline of the paper's Table II system comparison.

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// Isolation-forest hyperparameters.
#[derive(Debug, Clone)]
pub struct IForestConfig {
    pub trees: usize,
    pub sample_size: usize,
    pub seed: u64,
}

impl Default for IForestConfig {
    fn default() -> Self {
        Self {
            trees: 100,
            sample_size: 256,
            seed: 0,
        }
    }
}

enum INode {
    Leaf {
        size: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

struct ITree {
    nodes: Vec<INode>,
    root: usize,
}

impl ITree {
    fn build(
        x: &Matrix,
        idx: &[usize],
        depth: usize,
        max_depth: usize,
        rng: &mut Rng,
    ) -> (Vec<INode>, usize) {
        let mut nodes = Vec::new();
        let root = Self::grow(x, idx, depth, max_depth, rng, &mut nodes);
        (nodes, root)
    }

    fn grow(
        x: &Matrix,
        idx: &[usize],
        depth: usize,
        max_depth: usize,
        rng: &mut Rng,
        nodes: &mut Vec<INode>,
    ) -> usize {
        if depth >= max_depth || idx.len() <= 1 {
            nodes.push(INode::Leaf { size: idx.len() });
            return nodes.len() - 1;
        }
        // Random feature with a non-degenerate range.
        let d = x.cols();
        let mut feature = None;
        for _ in 0..d.max(4) {
            let f = rng.usize(d);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in idx {
                lo = lo.min(x[(i, f)]);
                hi = hi.max(x[(i, f)]);
            }
            if hi - lo > 1e-12 {
                feature = Some((f, lo, hi));
                break;
            }
        }
        let Some((f, lo, hi)) = feature else {
            nodes.push(INode::Leaf { size: idx.len() });
            return nodes.len() - 1;
        };
        let threshold = rng.uniform(lo, hi);
        // Single-pass partition: both sides keep `idx` order and no RNG is
        // consumed, so the tree is identical to a two-pass filter.
        let mut left_idx = Vec::with_capacity(idx.len());
        let mut right_idx = Vec::with_capacity(idx.len());
        for &i in idx {
            if x[(i, f)] < threshold {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        if left_idx.is_empty() || right_idx.is_empty() {
            nodes.push(INode::Leaf { size: idx.len() });
            return nodes.len() - 1;
        }
        let left = Self::grow(x, &left_idx, depth + 1, max_depth, rng, nodes);
        let right = Self::grow(x, &right_idx, depth + 1, max_depth, rng, nodes);
        nodes.push(INode::Split {
            feature: f,
            threshold,
            left,
            right,
        });
        nodes.len() - 1
    }

    fn path_length(&self, row: &[f64]) -> f64 {
        let mut at = self.root;
        let mut depth = 0.0;
        loop {
            match &self.nodes[at] {
                INode::Leaf { size } => return depth + average_path_length(*size),
                INode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    depth += 1.0;
                    at = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Expected path length of an unsuccessful BST search over `n` points.
fn average_path_length(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_901_532_9) - 2.0 * (n - 1.0) / n
}

/// A trained isolation forest.
pub struct IsolationForest {
    trees: Vec<ITree>,
    sample_size: usize,
}

impl IsolationForest {
    pub fn fit(x: &Matrix, config: IForestConfig) -> Self {
        assert!(x.rows() > 0, "iforest: empty training set");
        let mut rng = Rng::seed_from_u64(config.seed);
        let n = x.rows();
        let sample_size = config.sample_size.clamp(2, n);
        let max_depth = (sample_size as f64).log2().ceil() as usize;
        let trees = (0..config.trees)
            .map(|_| {
                let idx = rng.sample_indices(n, sample_size);
                let (nodes, root) = ITree::build(x, &idx, 0, max_depth, &mut rng);
                ITree { nodes, root }
            })
            .collect();
        Self { trees, sample_size }
    }

    /// Anomaly score in `(0, 1)`: higher = more anomalous (≈0.5 is normal).
    pub fn score_row(&self, row: &[f64]) -> f64 {
        let mean_path: f64 =
            self.trees.iter().map(|t| t.path_length(row)).sum::<f64>() / self.trees.len() as f64;
        let c = average_path_length(self.sample_size).max(1e-12);
        2f64.powf(-mean_path / c)
    }

    pub fn scores(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.score_row(x.row(r))).collect()
    }

    /// Binary predictions with a score threshold (1 = anomaly).
    pub fn predict(&self, x: &Matrix, threshold: f64) -> Vec<usize> {
        self.scores(x)
            .iter()
            .map(|&s| usize::from(s > threshold))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let mut rng = Rng::seed_from_u64(1);
        let mut rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
            .collect();
        rows.push(vec![8.0, -8.0]); // clear outlier
        let x = Matrix::from_rows(&rows);
        let forest = IsolationForest::fit(
            &x,
            IForestConfig {
                trees: 50,
                ..Default::default()
            },
        );
        let scores = forest.scores(&x);
        let outlier = scores[200];
        let inlier_mean = fexiot_tensor::stats::mean(&scores[..200]);
        assert!(
            outlier > inlier_mean + 0.1,
            "outlier {outlier}, inliers {inlier_mean}"
        );
    }

    #[test]
    fn scores_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(2);
        let x = Matrix::random_normal(100, 3, 0.0, 1.0, &mut rng);
        let forest = IsolationForest::fit(
            &x,
            IForestConfig {
                trees: 20,
                ..Default::default()
            },
        );
        for s in forest.scores(&x) {
            assert!(s > 0.0 && s < 1.0, "score {s}");
        }
    }

    #[test]
    fn average_path_length_monotonic() {
        assert_eq!(average_path_length(1), 0.0);
        assert!(average_path_length(10) < average_path_length(100));
    }

    #[test]
    fn constant_data_does_not_panic() {
        let x = Matrix::full(50, 2, 3.0);
        let forest = IsolationForest::fit(
            &x,
            IForestConfig {
                trees: 10,
                ..Default::default()
            },
        );
        let s = forest.score_row(&[3.0, 3.0]);
        assert!(s.is_finite());
    }
}
