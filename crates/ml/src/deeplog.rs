//! DeepLog (Du et al., CCS 2017) baseline: event logs as a language, an LSTM
//! trained on normal sequences, and anomaly flags when the observed next
//! event is not among the model's top-k predictions (paper Table II).

use crate::lstm::Lstm;
use fexiot_tensor::rng::Rng;
use std::collections::HashMap;

/// DeepLog hyperparameters.
#[derive(Debug, Clone)]
pub struct DeepLogConfig {
    pub hidden_dim: usize,
    pub top_k: usize,
    pub epochs: usize,
    pub lr: f64,
    /// A sequence is anomalous if more than this fraction of its events miss
    /// the top-k prediction set.
    pub anomaly_fraction: f64,
    pub seed: u64,
}

impl Default for DeepLogConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 24,
            top_k: 3,
            epochs: 30,
            lr: 0.02,
            anomaly_fraction: 0.25,
            seed: 0,
        }
    }
}

/// Trained DeepLog detector over string event templates.
pub struct DeepLog {
    vocab: HashMap<String, usize>,
    model: Lstm,
    config: DeepLogConfig,
}

impl DeepLog {
    /// Trains on *normal* template sequences (unsupervised w.r.t. anomalies).
    pub fn fit(normal_sequences: &[Vec<String>], config: DeepLogConfig) -> Self {
        // Build the template vocabulary (+1 slot for unseen templates).
        let mut vocab: HashMap<String, usize> = HashMap::new();
        for seq in normal_sequences {
            for tpl in seq {
                let next = vocab.len();
                vocab.entry(tpl.clone()).or_insert(next);
            }
        }
        let unk = vocab.len();
        let vocab_size = vocab.len() + 1;

        let mut rng = Rng::seed_from_u64(config.seed);
        let mut model = Lstm::new(vocab_size, config.hidden_dim, vocab_size, &mut rng);

        let encode = |tpl: &String| *vocab.get(tpl).unwrap_or(&unk);
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for seq in normal_sequences {
            if seq.len() < 2 {
                continue;
            }
            let ids: Vec<usize> = seq.iter().map(encode).collect();
            inputs.push(
                ids[..ids.len() - 1]
                    .iter()
                    .map(|&t| one_hot(t, vocab_size))
                    .collect(),
            );
            targets.push(ids[1..].to_vec());
        }
        if !inputs.is_empty() {
            model.fit_next_step(&inputs, &targets, config.epochs, config.lr);
        }
        Self {
            vocab,
            model,
            config,
        }
    }

    fn encode(&self, tpl: &str) -> usize {
        self.vocab.get(tpl).copied().unwrap_or(self.vocab.len())
    }

    /// Fraction of events whose observed template missed the top-k predictions.
    pub fn miss_rate(&self, seq: &[String]) -> f64 {
        if seq.len() < 2 {
            return 0.0;
        }
        let vocab_size = self.vocab.len() + 1;
        let ids: Vec<usize> = seq.iter().map(|t| self.encode(t)).collect();
        let inputs: Vec<Vec<f64>> = ids[..ids.len() - 1]
            .iter()
            .map(|&t| one_hot(t, vocab_size))
            .collect();
        let probs = self.model.predict_next_probs(&inputs);
        let mut misses = 0usize;
        for (p, &actual) in probs.iter().zip(&ids[1..]) {
            let mut ranked: Vec<usize> = (0..p.len()).collect();
            ranked.sort_by(|&a, &b| p[b].partial_cmp(&p[a]).unwrap_or(std::cmp::Ordering::Equal));
            // top-k must stay below the vocabulary size or nothing can miss.
            let k = self.config.top_k.min(ranked.len().saturating_sub(1)).max(1);
            if !ranked[..k].contains(&actual) {
                misses += 1;
            }
        }
        misses as f64 / (ids.len() - 1) as f64
    }

    /// Flags a sequence as anomalous (1) or normal (0).
    pub fn predict(&self, seq: &[String]) -> usize {
        usize::from(self.miss_rate(seq) > self.config.anomaly_fraction)
    }
}

fn one_hot(i: usize, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[i.min(n - 1)] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic(templates: &[&str], len: usize) -> Vec<String> {
        (0..len)
            .map(|i| templates[i % templates.len()].to_string())
            .collect()
    }

    #[test]
    fn normal_pattern_accepted_broken_pattern_flagged() {
        let normal: Vec<Vec<String>> = (0..4)
            .map(|_| cyclic(&["motion on", "light on", "motion off", "light off"], 24))
            .collect();
        let detector = DeepLog::fit(
            &normal,
            DeepLogConfig {
                epochs: 60,
                ..Default::default()
            },
        );

        let good = cyclic(&["motion on", "light on", "motion off", "light off"], 16);
        assert_eq!(
            detector.predict(&good),
            0,
            "miss rate {}",
            detector.miss_rate(&good)
        );

        // Shuffle order and inject unknown templates: pattern broken.
        let bad = cyclic(&["light off", "door open", "motion on", "valve open"], 16);
        assert_eq!(
            detector.predict(&bad),
            1,
            "miss rate {}",
            detector.miss_rate(&bad)
        );
    }

    #[test]
    fn unknown_templates_count_as_misses() {
        let normal = vec![cyclic(&["a", "b"], 12)];
        let detector = DeepLog::fit(
            &normal,
            DeepLogConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        let unknowns = cyclic(&["x", "y", "z"], 9);
        assert!(detector.miss_rate(&unknowns) > 0.4);
    }

    #[test]
    fn short_sequences_are_normal_by_default() {
        let normal = vec![cyclic(&["a", "b"], 12)];
        let detector = DeepLog::fit(
            &normal,
            DeepLogConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        assert_eq!(detector.predict(&["a".to_string()]), 0);
        assert_eq!(detector.predict(&[]), 0);
    }
}
