//! Drifting-pattern detection via median absolute deviation (paper §III-B3):
//! per-class centroids in the learned latent space, per-class MAD of
//! centroid distances, and the `A^k = min_i |d_i - median_i| / MAD_i > T_M`
//! outlier rule with the paper's empirical threshold `T_M = 3`.

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::stats::{euclidean, mad, median};

/// The paper's empirical drift threshold.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 3.0;

/// Per-class latent statistics for drift scoring.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    /// One row per class.
    centroids: Matrix,
    /// Median of within-class centroid distances, per class.
    medians: Vec<f64>,
    /// MAD of within-class centroid distances, per class.
    mads: Vec<f64>,
    pub threshold: f64,
}

impl DriftDetector {
    /// Fits from latent embeddings (rows) and class labels.
    ///
    /// # Panics
    /// Panics if `embeddings` is empty or a class has no members.
    pub fn fit(embeddings: &Matrix, labels: &[usize], threshold: f64) -> Self {
        assert!(embeddings.rows() > 0, "drift: empty embeddings");
        assert_eq!(
            embeddings.rows(),
            labels.len(),
            "drift: label count mismatch"
        );
        let classes = labels.iter().copied().max().map_or(1, |m| m + 1);

        let mut centroids = Matrix::zeros(classes, embeddings.cols());
        let mut counts = vec![0usize; classes];
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1;
            for (c, &v) in embeddings.row(i).iter().enumerate() {
                centroids[(l, c)] += v;
            }
        }
        for l in 0..classes {
            assert!(counts[l] > 0, "drift: class {l} has no members");
            for c in 0..embeddings.cols() {
                centroids[(l, c)] /= counts[l] as f64;
            }
        }

        let mut medians = vec![0.0; classes];
        let mut mads = vec![0.0; classes];
        for l in 0..classes {
            let dists: Vec<f64> = labels
                .iter()
                .enumerate()
                .filter(|(_, &x)| x == l)
                .map(|(i, _)| euclidean(embeddings.row(i), centroids.row(l)))
                .collect();
            medians[l] = median(&dists);
            mads[l] = mad(&dists);
        }
        Self {
            centroids,
            medians,
            mads,
            threshold,
        }
    }

    /// The normalized deviation `A^k` for one sample: the *minimum* over
    /// classes of `|d_i - median_i| / MAD_i` (a sample close to any known
    /// class is not drifting).
    pub fn score(&self, embedding: &[f64]) -> f64 {
        let mut best = f64::INFINITY;
        for l in 0..self.centroids.rows() {
            let d = euclidean(embedding, self.centroids.row(l));
            // Degenerate class (MAD = 0): any deviation is infinitely
            // surprising, but cap via a small epsilon to stay finite.
            let m = self.mads[l].max(1e-9);
            best = best.min((d - self.medians[l]).abs() / m);
        }
        best
    }

    /// True if the sample is a potential drifting sample.
    pub fn is_drifting(&self, embedding: &[f64]) -> bool {
        self.score(embedding) > self.threshold
    }

    /// Serializes the detector (centroids + per-class statistics + threshold).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = fexiot_tensor::codec::ByteWriter::new();
        w.write_matrix(&self.centroids);
        w.write_f64_slice(&self.medians);
        w.write_f64_slice(&self.mads);
        w.write_f64(self.threshold);
        w.into_bytes()
    }

    /// Restores a detector from [`DriftDetector::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, fexiot_tensor::codec::CodecError> {
        let mut r = fexiot_tensor::codec::ByteReader::new(bytes);
        Ok(Self {
            centroids: r.read_matrix()?,
            medians: r.read_f64_vec()?,
            mads: r.read_f64_vec()?,
            threshold: r.read_f64()?,
        })
    }

    /// Flags every row; returns indices of drifting samples.
    pub fn filter_drifting(&self, embeddings: &Matrix) -> Vec<usize> {
        (0..embeddings.rows())
            .filter(|&r| self.is_drifting(embeddings.row(r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_tensor::rng::Rng;

    fn training_data(seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..60 {
                rows.push(vec![
                    c as f64 * 6.0 + rng.normal(0.0, 0.8),
                    c as f64 * -6.0 + rng.normal(0.0, 0.8),
                ]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn in_distribution_samples_not_drifting() {
        let (x, y) = training_data(1);
        let det = DriftDetector::fit(&x, &y, DEFAULT_DRIFT_THRESHOLD);
        let mut rng = Rng::seed_from_u64(2);
        let mut flagged = 0;
        for _ in 0..50 {
            let c = rng.usize(2);
            let sample = [
                c as f64 * 6.0 + rng.normal(0.0, 0.8),
                c as f64 * -6.0 + rng.normal(0.0, 0.8),
            ];
            if det.is_drifting(&sample) {
                flagged += 1;
            }
        }
        assert!(flagged <= 5, "{flagged}/50 in-distribution flagged");
    }

    #[test]
    fn far_samples_are_drifting() {
        let (x, y) = training_data(3);
        let det = DriftDetector::fit(&x, &y, DEFAULT_DRIFT_THRESHOLD);
        assert!(det.is_drifting(&[40.0, 40.0]));
        assert!(det.is_drifting(&[-30.0, 5.0]));
    }

    #[test]
    fn score_is_min_over_classes() {
        let (x, y) = training_data(4);
        let det = DriftDetector::fit(&x, &y, DEFAULT_DRIFT_THRESHOLD);
        // A point at class-1 centroid: near class 1 even though far from class 0.
        let s = det.score(&[6.0, -6.0]);
        assert!(s < 3.0, "score {s}");
    }

    #[test]
    fn filter_returns_drifting_indices() {
        let (x, y) = training_data(5);
        let det = DriftDetector::fit(&x, &y, DEFAULT_DRIFT_THRESHOLD);
        let test = Matrix::from_rows(&[
            vec![0.0, 0.0],   // class 0 region
            vec![50.0, 50.0], // drift
            vec![6.0, -6.0],  // class 1 region
        ]);
        assert_eq!(det.filter_drifting(&test), vec![1]);
    }

    #[test]
    fn serialization_roundtrip_preserves_decisions() {
        let (x, y) = training_data(6);
        let det = DriftDetector::fit(&x, &y, DEFAULT_DRIFT_THRESHOLD);
        let back = DriftDetector::from_bytes(&det.to_bytes()).unwrap();
        for probe in [[0.0, 0.0], [50.0, 50.0], [6.0, -6.0]] {
            assert_eq!(det.score(&probe), back.score(&probe));
            assert_eq!(det.is_drifting(&probe), back.is_drifting(&probe));
        }
    }

    #[test]
    fn degenerate_class_stays_finite() {
        // All class-0 points identical: MAD = 0.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![5.0], vec![6.0]]);
        let y = vec![0, 0, 1, 1];
        let det = DriftDetector::fit(&x, &y, DEFAULT_DRIFT_THRESHOLD);
        let s = det.score(&[1.1]);
        assert!(s.is_finite());
    }
}
