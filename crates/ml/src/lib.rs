//! # fexiot-ml
//!
//! Classic machine-learning substrate for the FexIoT reproduction: the
//! correlation-discovery classifiers of Fig. 3 (MLP, RandomForest, KNN,
//! GradientBoost), the per-client SGDClassifier head, k-means and t-SNE for
//! the representation analysis of Fig. 6, the Table II comparison baselines
//! (DeepLog LSTM, HAWatcher templates, IsolationForest), and the MAD-based
//! drifting-pattern detector of §III-B3.

pub mod deeplog;
pub mod drift;
pub mod forest;
pub mod gboost;
pub mod hawatcher;
pub mod iforest;
pub mod kmeans;
pub mod knn;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod sgd;
pub mod tree;
pub mod tsne;

pub use deeplog::{DeepLog, DeepLogConfig};
pub use drift::{DriftDetector, DEFAULT_DRIFT_THRESHOLD};
pub use forest::{ForestConfig, RandomForest};
pub use gboost::{GBoostConfig, GradientBoost};
pub use hawatcher::{HaWatcher, HaWatcherConfig};
pub use iforest::{IForestConfig, IsolationForest};
pub use kmeans::{binary_cosine_split, kmeans, KMeansResult};
pub use knn::Knn;
pub use lstm::Lstm;
pub use metrics::{ConfusionMatrix, Metrics};
pub use mlp::{Mlp, MlpConfig};
pub use sgd::{SgdClassifier, SgdConfig};
pub use tsne::{tsne, TsneConfig};
