//! CART decision trees (gini impurity), shared by the RandomForest and the
//! GradientBoost (regression variant) classifiers.

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// Tree growth limits.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Number of candidate features per split; `0` = all features.
    pub max_features: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            max_features: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
        class_counts: Vec<usize>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A CART tree used either as a classifier (gini, majority leaves) or as a
/// regressor (variance reduction, mean leaves).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    classes: usize,
}

impl DecisionTree {
    /// Fits a classification tree on rows `x` with integer labels `y`.
    pub fn fit_classifier(
        x: &Matrix,
        y: &[usize],
        classes: usize,
        config: TreeConfig,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(x.rows(), y.len(), "tree: label count mismatch");
        assert!(x.rows() > 0, "tree: empty training set");
        let targets: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut tree = Self {
            nodes: Vec::new(),
            classes,
        };
        tree.grow(x, &targets, Some(y), &idx, config, 0, rng);
        tree
    }

    /// Fits a regression tree on rows `x` with real targets `y` (for boosting).
    pub fn fit_regressor(x: &Matrix, y: &[f64], config: TreeConfig, rng: &mut Rng) -> Self {
        assert_eq!(x.rows(), y.len(), "tree: target count mismatch");
        assert!(x.rows() > 0, "tree: empty training set");
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut tree = Self {
            nodes: Vec::new(),
            classes: 0,
        };
        tree.grow(x, y, None, &idx, config, 0, rng);
        tree
    }

    /// Recursively grows the tree; returns the created node index.
    #[allow(clippy::too_many_arguments)] // internal recursion carries the full split context
    fn grow(
        &mut self,
        x: &Matrix,
        y: &[f64],
        labels: Option<&[usize]>,
        idx: &[usize],
        config: TreeConfig,
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let make_leaf = |tree: &mut Self, idx: &[usize]| {
            let (value, class_counts) = match labels {
                Some(labels) => {
                    let mut counts = vec![0usize; tree.classes];
                    for &i in idx {
                        counts[labels[i]] += 1;
                    }
                    let majority = counts
                        .iter()
                        .enumerate()
                        .max_by_key(|&(_, c)| *c)
                        .map(|(c, _)| c)
                        .unwrap_or(0);
                    (majority as f64, counts)
                }
                None => {
                    let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len().max(1) as f64;
                    (mean, Vec::new())
                }
            };
            tree.nodes.push(Node::Leaf {
                value,
                class_counts,
            });
            tree.nodes.len() - 1
        };

        let impurity = |idx: &[usize]| -> f64 {
            match labels {
                Some(labels) => {
                    // Gini impurity.
                    let mut counts = vec![0usize; self.classes];
                    for &i in idx {
                        counts[labels[i]] += 1;
                    }
                    let n = idx.len() as f64;
                    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
                }
                None => {
                    // Variance.
                    let n = idx.len() as f64;
                    let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / n;
                    idx.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>() / n
                }
            }
        };

        let parent_impurity = impurity(idx);
        if depth >= config.max_depth
            || idx.len() < config.min_samples_split
            || parent_impurity < 1e-12
        {
            return make_leaf(self, idx);
        }

        // Candidate features (random subspace when max_features > 0).
        let d = x.cols();
        let features: Vec<usize> = if config.max_features > 0 && config.max_features < d {
            rng.sample_indices(d, config.max_features)
        } else {
            (0..d).collect()
        };

        let mut best: Option<(f64, usize, f64)> = None; // (weighted impurity, feature, threshold)
        for &f in &features {
            // Sort indices by feature value; evaluate midpoints between
            // distinct consecutive values.
            let mut sorted: Vec<usize> = idx.to_vec();
            sorted.sort_by(|&a, &b| {
                x[(a, f)]
                    .partial_cmp(&x[(b, f)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for w in 1..sorted.len() {
                let lo = x[(sorted[w - 1], f)];
                let hi = x[(sorted[w], f)];
                if hi - lo < 1e-12 {
                    continue;
                }
                let threshold = 0.5 * (lo + hi);
                let (left, right) = (&sorted[..w], &sorted[w..]);
                let n = idx.len() as f64;
                let score = left.len() as f64 / n * impurity(left)
                    + right.len() as f64 / n * impurity(right);
                if best.is_none_or(|(b, _, _)| score < b) {
                    best = Some((score, f, threshold));
                }
            }
        }

        // Zero-improvement splits are allowed (they are what lets greedy CART
        // work through XOR-like structure); recursion still terminates because
        // both children are strictly smaller.
        let Some((_score, feature, threshold)) = best else {
            return make_leaf(self, idx);
        };

        let left_idx: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| x[(i, feature)] <= threshold)
            .collect();
        let right_idx: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| x[(i, feature)] > threshold)
            .collect();
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf(self, idx);
        }

        // Reserve this node's slot, then grow children.
        self.nodes.push(Node::Leaf {
            value: 0.0,
            class_counts: Vec::new(),
        });
        let me = self.nodes.len() - 1;
        let left = self.grow(x, y, labels, &left_idx, config, depth + 1, rng);
        let right = self.grow(x, y, labels, &right_idx, config, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    fn leaf_for(&self, row: &[f64]) -> &Node {
        // Root is the first node pushed *after* recursion bottoms out, so we
        // track it explicitly: the last remaining index is the entry point.
        let mut at = self.root();
        loop {
            match &self.nodes[at] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                leaf => return leaf,
            }
        }
    }

    fn root(&self) -> usize {
        // `grow` pushes children before finalizing the parent, so the root is
        // the node not referenced by any split.
        // For a single-leaf tree it is node 0.
        if self.nodes.len() == 1 {
            return 0;
        }
        let mut referenced = vec![false; self.nodes.len()];
        for n in &self.nodes {
            if let Node::Split { left, right, .. } = n {
                referenced[*left] = true;
                referenced[*right] = true;
            }
        }
        referenced
            .iter()
            .position(|&r| !r)
            .expect("tree has a root")
    }

    /// Predicted class for one feature row (classification trees).
    pub fn predict_row(&self, row: &[f64]) -> usize {
        match self.leaf_for(row) {
            Node::Leaf { value, .. } => *value as usize,
            Node::Split { .. } => unreachable!("leaf_for returns leaves"),
        }
    }

    /// Predicted value for one row (regression trees).
    pub fn predict_value(&self, row: &[f64]) -> f64 {
        match self.leaf_for(row) {
            Node::Leaf { value, .. } => *value,
            Node::Split { .. } => unreachable!("leaf_for returns leaves"),
        }
    }

    /// Per-class vote distribution at the reached leaf (classification trees).
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        match self.leaf_for(row) {
            Node::Leaf { class_counts, .. } => {
                let total: usize = class_counts.iter().sum();
                if total == 0 {
                    vec![0.0; self.classes]
                } else {
                    class_counts
                        .iter()
                        .map(|&c| c as f64 / total as f64)
                        .collect()
                }
            }
            Node::Split { .. } => unreachable!("leaf_for returns leaves"),
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..10 {
                rows.push(vec![a, b]);
                labels.push((a as usize) ^ (b as usize));
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn solves_xor() {
        let (x, y) = xor_data();
        let mut rng = Rng::seed_from_u64(1);
        let tree = DecisionTree::fit_classifier(&x, &y, 2, TreeConfig::default(), &mut rng);
        for (i, &label) in y.iter().enumerate() {
            assert_eq!(tree.predict_row(x.row(i)), label);
        }
    }

    #[test]
    fn pure_node_stays_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1, 1, 1];
        let mut rng = Rng::seed_from_u64(2);
        let tree = DecisionTree::fit_classifier(&x, &y, 2, TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_row(&[10.0]), 1);
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor_data();
        let mut rng = Rng::seed_from_u64(3);
        let tree = DecisionTree::fit_classifier(
            &x,
            &y,
            2,
            TreeConfig {
                max_depth: 0,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x = Matrix::from_rows(&(0..20).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { -1.0 } else { 2.0 }).collect();
        let mut rng = Rng::seed_from_u64(4);
        let tree = DecisionTree::fit_regressor(&x, &y, TreeConfig::default(), &mut rng);
        assert!((tree.predict_value(&[3.0]) + 1.0).abs() < 1e-9);
        assert!((tree.predict_value(&[15.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn proba_reflects_leaf_composition() {
        // One ambiguous region: leaf votes should not be one-hot.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![1.0]]);
        let y = vec![0, 0, 1, 1];
        let mut rng = Rng::seed_from_u64(5);
        let tree = DecisionTree::fit_classifier(
            &x,
            &y,
            2,
            TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
            &mut rng,
        );
        let p = tree.predict_proba_row(&[0.0]);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-9, "{p:?}");
    }
}
