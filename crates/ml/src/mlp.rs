//! Multi-layer perceptron classifier (the Scikit-learn `MLPClassifier`
//! stand-in used for correlation discovery, paper Fig. 3).

use crate::metrics::Metrics;
use fexiot_tensor::autograd::Tape;
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::optim::Adam;
use fexiot_tensor::rng::Rng;

/// MLP hyperparameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    pub hidden: Vec<usize>,
    pub classes: usize,
    pub lr: f64,
    pub epochs: usize,
    pub batch_size: usize,
    /// Per-class loss weights (uniform if empty).
    pub class_weights: Vec<f64>,
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 16],
            classes: 2,
            lr: 5e-3,
            epochs: 60,
            batch_size: 32,
            class_weights: Vec::new(),
            seed: 0,
        }
    }
}

/// A trained multi-layer perceptron.
pub struct Mlp {
    config: MlpConfig,
    /// Interleaved weights and biases: `[w0, b0, w1, b1, ...]`.
    params: Vec<Matrix>,
}

impl Mlp {
    /// Fits the MLP to feature rows `x` and integer labels `y`.
    ///
    /// # Panics
    /// Panics if `x` is empty or labels exceed `config.classes`.
    pub fn fit(x: &Matrix, y: &[usize], config: MlpConfig) -> Self {
        assert!(x.rows() > 0, "mlp: empty training set");
        assert_eq!(x.rows(), y.len(), "mlp: label count mismatch");
        assert!(
            y.iter().all(|&l| l < config.classes),
            "mlp: label out of range"
        );
        let mut rng = Rng::seed_from_u64(config.seed);

        let mut dims = vec![x.cols()];
        dims.extend(&config.hidden);
        dims.push(config.classes);
        let mut params = Vec::new();
        for w in dims.windows(2) {
            params.push(Matrix::glorot(w[0], w[1], &mut rng));
            params.push(Matrix::zeros(1, w[1]));
        }

        let weights = if config.class_weights.len() == config.classes {
            config.class_weights.clone()
        } else {
            vec![1.0; config.classes]
        };

        let mut model = Self { config, params };
        let mut adam = Adam::new(model.config.lr, &model.params);
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..model.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(model.config.batch_size.max(1)) {
                let xb = x.select_rows(chunk);
                let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                let mut tape = Tape::new();
                let (logits, vars) = model.forward(&mut tape, xb);
                let loss = tape.softmax_cross_entropy(logits, &yb, &weights);
                let grads = tape.backward(loss);
                let gs: Vec<Matrix> = vars
                    .iter()
                    .zip(&model.params)
                    .map(|(&v, p)| grads.get(v, p))
                    .collect();
                adam.step(&mut model.params, &gs);
            }
        }
        model
    }

    fn forward(
        &self,
        tape: &mut Tape,
        x: Matrix,
    ) -> (
        fexiot_tensor::autograd::Var,
        Vec<fexiot_tensor::autograd::Var>,
    ) {
        let mut vars = Vec::with_capacity(self.params.len());
        let mut h = tape.constant(x);
        let layer_count = self.params.len() / 2;
        for l in 0..layer_count {
            let w = tape.param(self.params[2 * l].clone());
            let b = tape.param(self.params[2 * l + 1].clone());
            vars.push(w);
            vars.push(b);
            let z = tape.matmul(h, w);
            let z = tape.add_row_broadcast(z, b);
            h = if l + 1 < layer_count { tape.relu(z) } else { z };
        }
        (h, vars)
    }

    /// Class-probability rows for `x`.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut tape = Tape::new();
        let (logits, _) = self.forward(&mut tape, x.clone());
        let probs = tape.softmax_row(logits);
        tape.value(probs).clone()
    }

    /// Hard class predictions for `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x);
        (0..p.rows()).map(|r| p.argmax_row(r)).collect()
    }

    /// Convenience: fit on train, evaluate binary metrics on test.
    pub fn evaluate(&self, x: &Matrix, y: &[usize]) -> Metrics {
        Metrics::from_predictions(&self.predict(x), y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two interleaving half-moons are linearly inseparable; an MLP must
    /// solve them while a linear model cannot.
    fn moons(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let t = rng.uniform(0.0, std::f64::consts::PI);
            let (x, y, label) = if i % 2 == 0 {
                (t.cos(), t.sin(), 0)
            } else {
                (1.0 - t.cos(), 0.5 - t.sin(), 1)
            };
            rows.push(vec![x + rng.normal(0.0, 0.05), y + rng.normal(0.0, 0.05)]);
            labels.push(label);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = moons(300, 1);
        let (xt, yt) = moons(100, 2);
        let model = Mlp::fit(
            &x,
            &y,
            MlpConfig {
                epochs: 80,
                ..Default::default()
            },
        );
        let m = model.evaluate(&xt, &yt);
        assert!(m.accuracy > 0.9, "moons accuracy {}", m.accuracy);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = moons(100, 3);
        let model = Mlp::fit(
            &x,
            &y,
            MlpConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        let p = model.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn class_weights_shift_decisions() {
        // Heavily weight class 1: an ambiguous point should tip toward it.
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![0.5]]);
        let y = vec![0usize, 1, 0];
        let heavy = Mlp::fit(
            &x,
            &y,
            MlpConfig {
                hidden: vec![4],
                class_weights: vec![0.1, 10.0],
                epochs: 200,
                seed: 4,
                ..Default::default()
            },
        );
        let preds = heavy.predict(&Matrix::from_rows(&[vec![0.5]]));
        assert_eq!(
            preds[0], 1,
            "heavy class-1 weighting should claim the boundary point"
        );
    }

    #[test]
    fn multiclass_support() {
        let mut rng = Rng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..50 {
                rows.push(vec![
                    c as f64 * 2.0 + rng.normal(0.0, 0.2),
                    -(c as f64) + rng.normal(0.0, 0.2),
                ]);
                labels.push(c);
            }
        }
        let x = Matrix::from_rows(&rows);
        let model = Mlp::fit(
            &x,
            &labels,
            MlpConfig {
                classes: 3,
                epochs: 60,
                ..Default::default()
            },
        );
        let preds = model.predict(&x);
        let correct = preds.iter().zip(&labels).filter(|(p, t)| p == t).count();
        assert!(correct as f64 / labels.len() as f64 > 0.95);
    }
}
