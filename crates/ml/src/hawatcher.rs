//! HAWatcher-style baseline (Fu et al., USENIX Security 2021): mines binary
//! correlation templates ("event A is followed by event B") from normal
//! event logs and flags runtime violations (paper Table II).
//!
//! As the paper notes, HAWatcher "only extracts binary rule templates, which
//! can hardly cover long-term complex correlations" — this implementation
//! deliberately preserves that limitation.

use std::collections::{HashMap, HashSet};

/// HAWatcher hyperparameters.
#[derive(Debug, Clone)]
pub struct HaWatcherConfig {
    /// Events after an occurrence of A in which B must appear.
    pub window: usize,
    /// Minimum occurrences of A for a template to be considered.
    pub min_support: usize,
    /// Minimum P(B within window | A) to accept the template.
    pub min_confidence: f64,
    /// A sequence is anomalous if more than this fraction of template checks
    /// fail (or unseen events appear beyond this fraction).
    pub violation_fraction: f64,
}

impl Default for HaWatcherConfig {
    fn default() -> Self {
        Self {
            window: 4,
            min_support: 3,
            min_confidence: 0.8,
            violation_fraction: 0.25,
        }
    }
}

/// Mined correlation templates plus the normal event vocabulary.
pub struct HaWatcher {
    /// Templates `a -> must see b within window`.
    templates: Vec<(String, String)>,
    vocabulary: HashSet<String>,
    config: HaWatcherConfig,
}

impl HaWatcher {
    /// Mines templates from normal event-template sequences.
    pub fn fit(normal_sequences: &[Vec<String>], config: HaWatcherConfig) -> Self {
        let mut vocabulary = HashSet::new();
        let mut support: HashMap<String, usize> = HashMap::new();
        let mut follows: HashMap<(String, String), usize> = HashMap::new();

        for seq in normal_sequences {
            for (i, a) in seq.iter().enumerate() {
                vocabulary.insert(a.clone());
                *support.entry(a.clone()).or_insert(0) += 1;
                let window_end = (i + 1 + config.window).min(seq.len());
                let mut seen: HashSet<&String> = HashSet::new();
                for b in &seq[i + 1..window_end] {
                    if b != a && seen.insert(b) {
                        *follows.entry((a.clone(), b.clone())).or_insert(0) += 1;
                    }
                }
            }
        }

        let mut templates = Vec::new();
        for ((a, b), &n_follow) in &follows {
            let n_a = support.get(a).copied().unwrap_or(0);
            if n_a >= config.min_support && n_follow as f64 / n_a as f64 >= config.min_confidence {
                templates.push((a.clone(), b.clone()));
            }
        }
        templates.sort();
        Self {
            templates,
            vocabulary,
            config,
        }
    }

    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Fraction of failed checks over a test sequence: template violations
    /// plus out-of-vocabulary events.
    pub fn violation_rate(&self, seq: &[String]) -> f64 {
        if seq.is_empty() {
            return 0.0;
        }
        let mut checks = 0usize;
        let mut violations = 0usize;
        // Out-of-vocabulary events.
        for e in seq {
            checks += 1;
            if !self.vocabulary.contains(e) {
                violations += 1;
            }
        }
        // Template checks.
        for (i, e) in seq.iter().enumerate() {
            for (a, b) in &self.templates {
                if e == a {
                    checks += 1;
                    let window_end = (i + 1 + self.config.window).min(seq.len());
                    if !seq[i + 1..window_end].contains(b) {
                        violations += 1;
                    }
                }
            }
        }
        violations as f64 / checks.max(1) as f64
    }

    /// Flags a sequence as anomalous (1) or normal (0).
    pub fn predict(&self, seq: &[String]) -> usize {
        usize::from(self.violation_rate(seq) > self.config.violation_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn mines_consistent_followers() {
        // "motion on" is always followed by "light on".
        let normal = vec![
            s(&["motion on", "light on", "motion off", "light off"]),
            s(&[
                "motion on",
                "light on",
                "door open",
                "motion off",
                "light off",
            ]),
            s(&["motion on", "light on", "motion off", "light off"]),
        ];
        let hw = HaWatcher::fit(&normal, HaWatcherConfig::default());
        assert!(hw
            .templates
            .iter()
            .any(|(a, b)| a == "motion on" && b == "light on"));
    }

    #[test]
    fn violation_detected_when_follower_missing() {
        let normal = vec![
            s(&["motion on", "light on", "motion off", "light off"]),
            s(&["motion on", "light on", "motion off", "light off"]),
        ];
        let hw = HaWatcher::fit(&normal, HaWatcherConfig::default());
        // Light never turns on after motion: attack suppressed the command.
        let attacked = s(&[
            "motion on",
            "door open",
            "motion off",
            "motion on",
            "door open",
        ]);
        assert_eq!(
            hw.predict(&attacked),
            1,
            "rate {}",
            hw.violation_rate(&attacked)
        );
        let clean = s(&["motion on", "light on", "motion off", "light off"]);
        assert_eq!(hw.predict(&clean), 0, "rate {}", hw.violation_rate(&clean));
    }

    #[test]
    fn unseen_events_raise_violations() {
        let normal = vec![s(&["a", "b", "a", "b", "a", "b"])];
        let hw = HaWatcher::fit(&normal, HaWatcherConfig::default());
        let weird = s(&["x", "y", "z"]);
        assert!(hw.violation_rate(&weird) > 0.9);
    }

    #[test]
    fn empty_sequence_is_normal() {
        let normal = vec![s(&["a", "b"])];
        let hw = HaWatcher::fit(&normal, HaWatcherConfig::default());
        assert_eq!(hw.predict(&[]), 0);
    }

    #[test]
    fn low_confidence_pairs_not_mined() {
        // "a" is followed by "b" only half the time.
        let normal = vec![s(&["a", "b", "a", "c", "a", "b", "a", "c"])];
        let hw = HaWatcher::fit(&normal, HaWatcherConfig::default());
        assert!(!hw.templates.iter().any(|(x, y)| x == "a" && y == "b"));
    }
}
