//! Linear classifier trained by SGD on logistic loss — the `SGDClassifier`
//! each FexIoT client runs on top of the learned graph representations
//! (paper §III-B1). Also provides the linear form `h(x) = w·x + b` that the
//! kernel-SHAP explainer regresses against (paper §III-C).

use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// SGDClassifier hyperparameters.
#[derive(Debug, Clone)]
pub struct SgdConfig {
    pub lr: f64,
    pub epochs: usize,
    pub l2: f64,
    /// Per-class loss weights `[w_neg, w_pos]`; uniform if empty.
    pub class_weights: Vec<f64>,
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            epochs: 60,
            l2: 1e-4,
            class_weights: Vec::new(),
            seed: 0,
        }
    }
}

/// A binary logistic-regression model trained with SGD.
#[derive(Debug, Clone)]
pub struct SgdClassifier {
    pub weights: Vec<f64>,
    pub bias: f64,
}

impl SgdClassifier {
    /// Fits on labels in `{0, 1}`.
    pub fn fit(x: &Matrix, y: &[usize], config: SgdConfig) -> Self {
        assert!(x.rows() > 0, "sgd: empty training set");
        assert_eq!(x.rows(), y.len(), "sgd: label count mismatch");
        assert!(y.iter().all(|&v| v <= 1), "sgd: binary labels only");
        let mut rng = Rng::seed_from_u64(config.seed);
        let d = x.cols();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let (w_neg, w_pos) = match config.class_weights.as_slice() {
            [n, p] => (*n, *p),
            _ => (1.0, 1.0),
        };
        let mut order: Vec<usize> = (0..x.rows()).collect();
        for epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            // 1/t learning-rate decay.
            let lr = config.lr / (1.0 + 0.05 * epoch as f64);
            for &i in &order {
                let row = x.row(i);
                let z: f64 = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let target = y[i] as f64;
                let cw = if y[i] == 1 { w_pos } else { w_neg };
                let g = cw * (p - target);
                for (wi, &xi) in w.iter_mut().zip(row) {
                    *wi -= lr * (g * xi + config.l2 * *wi);
                }
                b -= lr * g;
            }
        }
        Self {
            weights: w,
            bias: b,
        }
    }

    /// Raw decision value `w·x + b` for one row.
    pub fn decision(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "sgd: feature dim mismatch");
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    /// Positive-class probability for one row.
    pub fn proba(&self, row: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.decision(row)).exp())
    }

    pub fn predict_row(&self, row: &[f64]) -> usize {
        usize::from(self.decision(row) >= 0.0)
    }

    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Serializes the model (weights + bias).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = fexiot_tensor::codec::ByteWriter::new();
        w.write_f64_slice(&self.weights);
        w.write_f64(self.bias);
        w.into_bytes()
    }

    /// Restores a model from [`SgdClassifier::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, fexiot_tensor::codec::CodecError> {
        let mut r = fexiot_tensor::codec::ByteReader::new(bytes);
        let weights = r.read_f64_vec()?;
        let bias = r.read_f64()?;
        Ok(Self { weights, bias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(-2.0, 2.0);
            let b = rng.uniform(-2.0, 2.0);
            rows.push(vec![a, b]);
            y.push(usize::from(a + 2.0 * b > 0.3));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separates_linear_data() {
        let (x, y) = linear_data(400, 1);
        let (xt, yt) = linear_data(150, 2);
        let model = SgdClassifier::fit(&x, &y, SgdConfig::default());
        let preds = model.predict(&xt);
        let acc = preds.iter().zip(&yt).filter(|(p, t)| p == t).count() as f64 / yt.len() as f64;
        assert!(acc > 0.93, "sgd accuracy {acc}");
    }

    #[test]
    fn decision_is_linear_in_features() {
        let (x, y) = linear_data(100, 3);
        let model = SgdClassifier::fit(
            &x,
            &y,
            SgdConfig {
                epochs: 10,
                ..Default::default()
            },
        );
        // decision(a + b) - decision(0) == (decision(a) - decision(0)) + (decision(b) - decision(0))
        let d0 = model.decision(&[0.0, 0.0]);
        let da = model.decision(&[1.0, 0.0]) - d0;
        let db = model.decision(&[0.0, 1.0]) - d0;
        let dab = model.decision(&[1.0, 1.0]) - d0;
        assert!((dab - (da + db)).abs() < 1e-12);
    }

    #[test]
    fn class_weights_shift_boundary() {
        // Imbalanced data; upweighting the minority class must raise recall.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = Rng::seed_from_u64(4);
        for i in 0..200 {
            let c = usize::from(i % 10 == 0); // 10% positive
            rows.push(vec![c as f64 + rng.normal(0.0, 0.8)]);
            y.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let plain = SgdClassifier::fit(&x, &y, SgdConfig::default());
        let weighted = SgdClassifier::fit(
            &x,
            &y,
            SgdConfig {
                class_weights: vec![1.0, 9.0],
                ..Default::default()
            },
        );
        let recall = |m: &SgdClassifier| {
            let preds = m.predict(&x);
            let tp = preds
                .iter()
                .zip(&y)
                .filter(|(&p, &t)| p == 1 && t == 1)
                .count();
            let pos = y.iter().filter(|&&t| t == 1).count();
            tp as f64 / pos as f64
        };
        assert!(recall(&weighted) >= recall(&plain));
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = linear_data(200, 5);
        let small = SgdClassifier::fit(
            &x,
            &y,
            SgdConfig {
                l2: 0.0,
                ..Default::default()
            },
        );
        let large = SgdClassifier::fit(
            &x,
            &y,
            SgdConfig {
                l2: 0.5,
                ..Default::default()
            },
        );
        let norm = |m: &SgdClassifier| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&large) < norm(&small));
    }
}
