//! Random forest classifier: bootstrap bagging + random feature subspaces
//! over CART trees (the Scikit-learn `RandomForestClassifier` stand-in,
//! paper Fig. 3).

use crate::tree::{DecisionTree, TreeConfig};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// Random-forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    pub trees: usize,
    pub max_depth: usize,
    /// Features sampled per split; `0` = sqrt(d).
    pub max_features: usize,
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            trees: 50,
            max_depth: 12,
            max_features: 0,
            seed: 0,
        }
    }
}

/// A trained random forest.
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    classes: usize,
}

impl RandomForest {
    pub fn fit(x: &Matrix, y: &[usize], classes: usize, config: ForestConfig) -> Self {
        assert!(x.rows() > 0, "forest: empty training set");
        assert_eq!(x.rows(), y.len(), "forest: label count mismatch");
        let mut rng = Rng::seed_from_u64(config.seed);
        let max_features = if config.max_features == 0 {
            (x.cols() as f64).sqrt().ceil() as usize
        } else {
            config.max_features
        };
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: 2,
            max_features,
        };
        let n = x.rows();
        let trees = (0..config.trees)
            .map(|_| {
                // Bootstrap sample (with replacement).
                let idx: Vec<usize> = (0..n).map(|_| rng.usize(n)).collect();
                let xb = x.select_rows(&idx);
                let yb: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
                DecisionTree::fit_classifier(&xb, &yb, classes, tree_config, &mut rng)
            })
            .collect();
        Self { trees, classes }
    }

    /// Soft voting: mean of per-tree leaf distributions.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.classes);
        for tree in &self.trees {
            for r in 0..x.rows() {
                let p = tree.predict_proba_row(x.row(r));
                for (c, &v) in p.iter().enumerate() {
                    out[(r, c)] += v;
                }
            }
        }
        out.scale(1.0 / self.trees.len().max(1) as f64)
    }

    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x);
        (0..p.rows()).map(|r| p.argmax_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            rows.push(vec![
                c as f64 * 2.0 + rng.normal(0.0, 0.6),
                c as f64 * -1.5 + rng.normal(0.0, 0.6),
                rng.normal(0.0, 1.0), // pure-noise feature
            ]);
            labels.push(c);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn classifies_blobs_with_noise_feature() {
        let (x, y) = noisy_blobs(300, 1);
        let (xt, yt) = noisy_blobs(100, 2);
        let f = RandomForest::fit(
            &x,
            &y,
            2,
            ForestConfig {
                trees: 30,
                ..Default::default()
            },
        );
        let preds = f.predict(&xt);
        let acc = preds.iter().zip(&yt).filter(|(p, t)| p == t).count() as f64 / yt.len() as f64;
        assert!(acc > 0.9, "forest accuracy {acc}");
    }

    #[test]
    fn proba_rows_are_distributions() {
        let (x, y) = noisy_blobs(100, 3);
        let f = RandomForest::fit(
            &x,
            &y,
            2,
            ForestConfig {
                trees: 10,
                ..Default::default()
            },
        );
        let p = f.predict_proba(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_blobs(80, 4);
        let cfg = ForestConfig {
            trees: 5,
            seed: 9,
            ..Default::default()
        };
        let a = RandomForest::fit(&x, &y, 2, cfg.clone()).predict(&x);
        let b = RandomForest::fit(&x, &y, 2, cfg).predict(&x);
        assert_eq!(a, b);
    }
}
