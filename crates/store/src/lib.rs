//! # fexiot-store
//!
//! Versioned, seed-keyed on-disk artifact store and model registry.
//!
//! Layout under the store directory:
//!
//! ```text
//! <dir>/manifest.json        # fexiot-store/v1: entries keyed by kind + identity
//! <dir>/blobs/<fnv16>.bin    # content-addressed payloads (FNV-1a 64 of bytes)
//! ```
//!
//! The manifest maps an *identity tuple* — `(seed, scale, encoder, feature
//! dims, schema version, extra)` per [`ArtifactKind`] — to a content-addressed
//! blob. Identity keys are a pure function of configuration, never of thread
//! width or wall clock, so a warm run at `--threads 7` hits the blobs a
//! `--threads 1` run wrote. Every read re-hashes the blob against both the
//! manifest's recorded hash and the filename, so truncation and bit flips
//! surface as a clean [`StoreError::Corrupt`] naming the artifact — the caller
//! falls back to a cold rebuild, never a silently-wrong warm load.
//!
//! All store traffic is counted on the global obs registry (`store.hits`,
//! `store.misses`, `store.corrupt`, `store.bytes_written`, `store.bytes_read`)
//! plus a wall-clock advisory `store.load_us` histogram.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use fexiot_obs::Json;
use fexiot_tensor::codec::fnv1a;

/// Manifest schema identifier; bump when the on-disk layout changes.
pub const MANIFEST_SCHEMA: &str = "fexiot-store/v1";

/// Artifact schema version folded into every identity key, so a codec bump
/// (e.g. the fixed-layout matrix frame) invalidates stale blobs instead of
/// mis-reading them.
pub const SCHEMA_VERSION: u32 = 2;

/// What kind of artifact an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// A trained end-to-end model (`FexIot::save_to_bytes`).
    Model,
    /// A featurized dataset (`GraphDataset` via `fexiot_graph::serialize`).
    Dataset,
    /// A corpus rule index (`CorpusIndex`).
    CorpusIndex,
    /// A federation simulator checkpoint (codec v2 bytes, one per round).
    Checkpoint,
}

impl ArtifactKind {
    pub const ALL: [ArtifactKind; 4] = [
        ArtifactKind::Model,
        ArtifactKind::Dataset,
        ArtifactKind::CorpusIndex,
        ArtifactKind::Checkpoint,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::Model => "model",
            ArtifactKind::Dataset => "dataset",
            ArtifactKind::CorpusIndex => "corpus_index",
            ArtifactKind::Checkpoint => "checkpoint",
        }
    }

    pub fn parse(s: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The identity tuple a manifest entry is keyed by. Every field is
/// configuration — nothing here may depend on thread width, wall clock, or
/// iteration order, or warm runs would miss blobs cold runs wrote.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Identity {
    /// Deterministic RNG seed of the producing run.
    pub seed: u64,
    /// Workload scale (graph count, client count — whatever sizes the run).
    pub scale: u64,
    /// Encoder family (`gin` / `gcn` / `magnn`), or a logical tag for
    /// non-model artifacts (`ifttt` / `hetero` corpora).
    pub encoder: String,
    /// Word-embedding dimension of the feature config.
    pub word_dim: u32,
    /// Sentence-embedding dimension of the feature config.
    pub sentence_dim: u32,
    /// Free-form discriminator for anything else identity-relevant
    /// (epochs, fault-plan digest, …). Empty when unused.
    pub extra: String,
}

impl Identity {
    pub fn new(seed: u64, scale: u64, encoder: &str, word_dim: u32, sentence_dim: u32) -> Self {
        Identity {
            seed,
            scale,
            encoder: encoder.to_string(),
            word_dim,
            sentence_dim,
            extra: String::new(),
        }
    }

    pub fn with_extra(mut self, extra: &str) -> Self {
        self.extra = extra.to_string();
        self
    }

    /// Canonical key string — the manifest key and the display name in
    /// errors/`store list`. Field order is fixed; changing it is a schema
    /// break (bump [`SCHEMA_VERSION`]).
    pub fn key(&self, kind: ArtifactKind) -> String {
        format!(
            "{}|v{}|seed={}|scale={}|enc={}|wd={}|sd={}|extra={}",
            kind.as_str(),
            SCHEMA_VERSION,
            self.seed,
            self.scale,
            self.encoder,
            self.word_dim,
            self.sentence_dim,
            self.extra
        )
    }
}

/// One manifest row.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub kind: ArtifactKind,
    pub identity: Identity,
    /// Federation round for [`ArtifactKind::Checkpoint`] entries; `None`
    /// for every other kind.
    pub round: Option<u64>,
    /// FNV-1a 64 of the blob bytes — the content address.
    pub blob: u64,
    /// Blob length in bytes.
    pub len: u64,
}

impl Entry {
    /// The artifact's display name in errors and `store list`.
    pub fn name(&self) -> String {
        let base = self.identity.key(self.kind);
        match self.round {
            Some(r) => format!("{base}|round={r}"),
            None => base,
        }
    }

    fn manifest_key(&self) -> String {
        self.name()
    }
}

/// Errors from store operations. `Corrupt` and `Missing` always name the
/// artifact so a CLI user can see exactly what failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    Io { artifact: String, detail: String },
    Corrupt { artifact: String, detail: String },
    Missing { artifact: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { artifact, detail } => {
                write!(f, "store i/o error for {artifact}: {detail}")
            }
            StoreError::Corrupt { artifact, detail } => {
                write!(f, "corrupt artifact {artifact}: {detail}")
            }
            StoreError::Missing { artifact } => write!(f, "artifact not in store: {artifact}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An open artifact store rooted at a directory.
pub struct Store {
    dir: PathBuf,
    /// Manifest rows keyed by the canonical entry name (BTreeMap so the
    /// serialized manifest and `list()` are deterministically ordered).
    entries: BTreeMap<String, Entry>,
    /// Set when `open` found a manifest it could not parse — surfaced as a
    /// warning by callers; the store behaves as empty and rewrites cleanly.
    pub recovered: Option<String>,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`. A corrupt manifest is
    /// *recovered from*, not fatal: the store opens empty with
    /// [`Store::recovered`] set, so a cold rebuild can proceed and the next
    /// `put` rewrites a valid manifest.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir.join("blobs")).map_err(|e| StoreError::Io {
            artifact: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        let manifest = dir.join("manifest.json");
        let mut store = Store {
            dir: dir.to_path_buf(),
            entries: BTreeMap::new(),
            recovered: None,
        };
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| StoreError::Io {
                artifact: manifest.display().to_string(),
                detail: e.to_string(),
            })?;
            match parse_manifest(&text) {
                Ok(entries) => store.entries = entries,
                Err(detail) => {
                    fexiot_obs::counter_add("store.corrupt", 1);
                    store.recovered = Some(format!(
                        "corrupt manifest {}: {detail}; treating store as empty",
                        manifest.display()
                    ));
                }
            }
        }
        Ok(store)
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn blob_path(&self, blob: u64) -> PathBuf {
        self.dir.join("blobs").join(format!("{blob:016x}.bin"))
    }

    /// Stores `bytes` under `(kind, identity)`, replacing any previous entry
    /// with the same key. Blob and manifest writes go through a tmp-file +
    /// rename so a crash mid-write never leaves a half-written artifact
    /// behind a valid name.
    pub fn put(&mut self, kind: ArtifactKind, id: &Identity, bytes: &[u8]) -> Result<u64, StoreError> {
        self.put_entry(kind, id, None, bytes)
    }

    /// Stores a federation checkpoint for `round`. Rounds are separate
    /// manifest rows under one identity, so `latest_round` can resume from
    /// the newest without scanning the filesystem.
    pub fn put_round(
        &mut self,
        id: &Identity,
        round: u64,
        bytes: &[u8],
    ) -> Result<u64, StoreError> {
        self.put_entry(ArtifactKind::Checkpoint, id, Some(round), bytes)
    }

    fn put_entry(
        &mut self,
        kind: ArtifactKind,
        id: &Identity,
        round: Option<u64>,
        bytes: &[u8],
    ) -> Result<u64, StoreError> {
        let blob = fnv1a(bytes);
        let entry = Entry {
            kind,
            identity: id.clone(),
            round,
            blob,
            len: bytes.len() as u64,
        };
        let name = entry.name();
        let path = self.blob_path(blob);
        // Always rewrite, even when the content-addressed path exists: a
        // re-put after a verify-on-read failure must replace the corrupted
        // bytes, and the atomic tmp+rename makes the overwrite safe.
        write_atomic(&path, bytes).map_err(|e| StoreError::Io {
            artifact: name.clone(),
            detail: e.to_string(),
        })?;
        fexiot_obs::counter_add("store.bytes_written", bytes.len() as u64);
        self.entries.insert(entry.manifest_key(), entry);
        self.write_manifest()?;
        Ok(blob)
    }

    /// Loads the artifact stored under `(kind, identity)`, verifying the
    /// blob hash on the way in. Counts a hit, a miss, or a corruption on the
    /// global registry.
    pub fn get(&self, kind: ArtifactKind, id: &Identity) -> Result<Vec<u8>, StoreError> {
        self.read_entry_named(&id.key(kind))
    }

    /// Loads the checkpoint blob for a specific round.
    pub fn get_round(&self, id: &Identity, round: u64) -> Result<Vec<u8>, StoreError> {
        let name = format!("{}|round={round}", id.key(ArtifactKind::Checkpoint));
        self.read_entry_named(&name)
    }

    /// Highest checkpoint round recorded for this identity, if any.
    pub fn latest_round(&self, id: &Identity) -> Option<u64> {
        let prefix = id.key(ArtifactKind::Checkpoint);
        self.entries
            .values()
            .filter(|e| e.kind == ArtifactKind::Checkpoint && e.identity == *id)
            .filter(|e| e.identity.key(ArtifactKind::Checkpoint) == prefix)
            .filter_map(|e| e.round)
            .max()
    }

    fn read_entry_named(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let Some(entry) = self.entries.get(name) else {
            fexiot_obs::counter_add("store.misses", 1);
            return Err(StoreError::Missing {
                artifact: name.to_string(),
            });
        };
        let start = Instant::now();
        let path = self.blob_path(entry.blob);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                fexiot_obs::counter_add("store.corrupt", 1);
                return Err(StoreError::Corrupt {
                    artifact: name.to_string(),
                    detail: format!("blob {} unreadable: {e}", path.display()),
                });
            }
        };
        if bytes.len() as u64 != entry.len || fnv1a(&bytes) != entry.blob {
            fexiot_obs::counter_add("store.corrupt", 1);
            return Err(StoreError::Corrupt {
                artifact: name.to_string(),
                detail: format!(
                    "blob {} fails hash/length verification ({} bytes on disk, {} expected)",
                    path.display(),
                    bytes.len(),
                    entry.len
                ),
            });
        }
        fexiot_obs::counter_add("store.hits", 1);
        fexiot_obs::counter_add("store.bytes_read", bytes.len() as u64);
        fexiot_obs::hist_record(
            "store.load_us",
            fexiot_obs::buckets::TIME_US,
            start.elapsed().as_micros() as f64,
        );
        Ok(bytes)
    }

    /// All manifest rows in deterministic (name) order.
    pub fn list(&self) -> Vec<&Entry> {
        self.entries.values().collect()
    }

    /// Drops manifest rows whose blob is missing or fails verification, and
    /// deletes blob files no surviving row references. Returns
    /// `(entries_dropped, blobs_deleted)`.
    pub fn gc(&mut self) -> Result<(usize, usize), StoreError> {
        let mut dropped = 0usize;
        self.entries.retain(|_, e| {
            let ok = std::fs::read(self.dir.join("blobs").join(format!("{:016x}.bin", e.blob)))
                .map(|b| b.len() as u64 == e.len && fnv1a(&b) == e.blob)
                .unwrap_or(false);
            if !ok {
                dropped += 1;
            }
            ok
        });
        let live: std::collections::BTreeSet<String> = self
            .entries
            .values()
            .map(|e| format!("{:016x}.bin", e.blob))
            .collect();
        let mut deleted = 0usize;
        let blobs = self.dir.join("blobs");
        if let Ok(rd) = std::fs::read_dir(&blobs) {
            for f in rd.flatten() {
                let fname = f.file_name().to_string_lossy().into_owned();
                if fname.ends_with(".bin")
                    && !live.contains(&fname)
                    && std::fs::remove_file(f.path()).is_ok()
                {
                    deleted += 1;
                }
            }
        }
        self.write_manifest()?;
        Ok((dropped, deleted))
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let rows: Vec<Json> = self
            .entries
            .values()
            .map(|e| {
                let mut obj = vec![
                    ("kind".to_string(), Json::Str(e.kind.as_str().to_string())),
                    ("key".to_string(), Json::Str(e.name())),
                    ("seed".to_string(), Json::UInt(e.identity.seed)),
                    ("scale".to_string(), Json::UInt(e.identity.scale)),
                    ("encoder".to_string(), Json::Str(e.identity.encoder.clone())),
                    ("word_dim".to_string(), Json::UInt(u64::from(e.identity.word_dim))),
                    (
                        "sentence_dim".to_string(),
                        Json::UInt(u64::from(e.identity.sentence_dim)),
                    ),
                    ("extra".to_string(), Json::Str(e.identity.extra.clone())),
                    ("blob".to_string(), Json::Str(format!("{:016x}", e.blob))),
                    ("len".to_string(), Json::UInt(e.len)),
                ];
                if let Some(r) = e.round {
                    obj.push(("round".to_string(), Json::UInt(r)));
                }
                Json::Obj(obj)
            })
            .collect();
        let doc = Json::Obj(vec![
            ("schema".to_string(), Json::Str(MANIFEST_SCHEMA.to_string())),
            ("version".to_string(), Json::UInt(u64::from(SCHEMA_VERSION))),
            ("entries".to_string(), Json::Arr(rows)),
        ]);
        let path = self.dir.join("manifest.json");
        write_atomic(&path, doc.to_string().as_bytes()).map_err(|e| StoreError::Io {
            artifact: path.display().to_string(),
            detail: e.to_string(),
        })
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn parse_manifest(text: &str) -> Result<BTreeMap<String, Entry>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some(MANIFEST_SCHEMA) {
        return Err(format!("schema is not {MANIFEST_SCHEMA}"));
    }
    let rows = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries array")?;
    let mut out = BTreeMap::new();
    for row in rows {
        let kind = row
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ArtifactKind::parse)
            .ok_or("entry with bad kind")?;
        let need_u64 = |k: &str| row.get(k).and_then(Json::as_u64).ok_or(format!("entry missing {k}"));
        let need_str = |k: &str| {
            row.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("entry missing {k}"))
        };
        let blob_hex = need_str("blob")?;
        let blob = u64::from_str_radix(&blob_hex, 16).map_err(|_| "bad blob hash".to_string())?;
        let entry = Entry {
            kind,
            identity: Identity {
                seed: need_u64("seed")?,
                scale: need_u64("scale")?,
                encoder: need_str("encoder")?,
                word_dim: need_u64("word_dim")? as u32,
                sentence_dim: need_u64("sentence_dim")? as u32,
                extra: need_str("extra")?,
            },
            round: row.get("round").and_then(Json::as_u64),
            blob,
            len: need_u64("len")?,
        };
        out.insert(entry.manifest_key(), entry);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fexiot-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn identity_key_is_pure_configuration() {
        let a = Identity::new(42, 300, "gin", 32, 48).key(ArtifactKind::Model);
        let b = Identity::new(42, 300, "gin", 32, 48).key(ArtifactKind::Model);
        assert_eq!(a, b);
        assert!(a.contains("seed=42"));
        let c = Identity::new(43, 300, "gin", 32, 48).key(ArtifactKind::Model);
        assert_ne!(a, c);
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let id = Identity::new(7, 120, "gin", 32, 48);
        let payload = vec![1u8, 2, 3, 250, 0, 9];
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(ArtifactKind::Model, &id, &payload).unwrap();
            assert_eq!(s.get(ArtifactKind::Model, &id).unwrap(), payload);
        }
        let s = Store::open(&dir).unwrap();
        assert!(s.recovered.is_none());
        assert_eq!(s.get(ArtifactKind::Model, &id).unwrap(), payload);
        assert_eq!(s.list().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifact_is_a_named_miss() {
        let dir = tmpdir("miss");
        let s = Store::open(&dir).unwrap();
        let id = Identity::new(1, 2, "gcn", 32, 48);
        let err = s.get(ArtifactKind::Dataset, &id).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("dataset"), "{msg}");
        assert!(msg.contains("seed=1"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_and_named() {
        let dir = tmpdir("bitflip");
        let id = Identity::new(9, 60, "magnn", 300, 512);
        let mut s = Store::open(&dir).unwrap();
        let blob = s.put(ArtifactKind::Model, &id, b"weights-go-here").unwrap();
        let path = dir.join("blobs").join(format!("{blob:016x}.bin"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match s.get(ArtifactKind::Model, &id) {
            Err(StoreError::Corrupt { artifact, .. }) => {
                assert!(artifact.contains("model"), "{artifact}");
                assert!(artifact.contains("seed=9"), "{artifact}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn re_put_replaces_a_corrupted_blob() {
        // Content addressing maps identical bytes to the same path, so the
        // re-put after a failed verify must overwrite, not dedup-skip.
        let dir = tmpdir("heal");
        let id = Identity::new(4, 80, "gin", 32, 48);
        let mut s = Store::open(&dir).unwrap();
        let blob = s.put(ArtifactKind::Dataset, &id, b"good-bytes").unwrap();
        let path = dir.join("blobs").join(format!("{blob:016x}.bin"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            s.get(ArtifactKind::Dataset, &id),
            Err(StoreError::Corrupt { .. })
        ));
        s.put(ArtifactKind::Dataset, &id, b"good-bytes").unwrap();
        assert_eq!(s.get(ArtifactKind::Dataset, &id).unwrap(), b"good-bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_recovers_as_empty() {
        let dir = tmpdir("manifest");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(ArtifactKind::Model, &Identity::new(1, 1, "gin", 8, 8), b"x")
                .unwrap();
        }
        std::fs::write(dir.join("manifest.json"), b"{not json!").unwrap();
        let s = Store::open(&dir).unwrap();
        assert!(s.recovered.is_some());
        assert!(s.list().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rounds_track_latest_and_roundtrip() {
        let dir = tmpdir("rounds");
        let id = Identity::new(5, 240, "fed", 32, 48);
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.latest_round(&id), None);
        s.put_round(&id, 1, b"ck-1").unwrap();
        s.put_round(&id, 3, b"ck-3").unwrap();
        s.put_round(&id, 2, b"ck-2").unwrap();
        assert_eq!(s.latest_round(&id), Some(3));
        assert_eq!(s.get_round(&id, 3).unwrap(), b"ck-3");
        assert_eq!(s.get_round(&id, 1).unwrap(), b"ck-1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_drops_broken_entries_and_orphan_blobs() {
        let dir = tmpdir("gc");
        let mut s = Store::open(&dir).unwrap();
        let keep = Identity::new(1, 1, "gin", 8, 8);
        let lose = Identity::new(2, 2, "gin", 8, 8);
        s.put(ArtifactKind::Model, &keep, b"keep-me").unwrap();
        let blob = s.put(ArtifactKind::Model, &lose, b"lose-me").unwrap();
        std::fs::remove_file(dir.join("blobs").join(format!("{blob:016x}.bin"))).unwrap();
        std::fs::write(dir.join("blobs").join("deadbeefdeadbeef.bin"), b"orphan").unwrap();
        let (dropped, deleted) = s.gc().unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(deleted, 1);
        assert_eq!(s.list().len(), 1);
        assert!(s.get(ArtifactKind::Model, &keep).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
