//! Kernel SHAP (Lundberg & Lee, 2017) over graph coalitions (paper Eqs. 5-6).
//!
//! Players are a candidate subgraph (one coalition player) plus every node
//! outside it (singleton players). SHAP values are estimated by the weighted
//! least-squares form of Eq. (6) with the Shapley kernel weights, subject to
//! the efficiency constraint `Σ φ = f(full) - f(empty)` — the same trick the
//! reference kernel SHAP implementation uses.

use crate::model::GraphScorer;
use fexiot_graph::InteractionGraph;
use fexiot_tensor::linalg::sum_constrained_wls;
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// Kernel-SHAP sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShapConfig {
    /// Number of sampled coalitions `K` (Alg. 2's "kernel SHAP samples").
    pub samples: usize,
}

impl Default for ShapConfig {
    fn default() -> Self {
        Self { samples: 64 }
    }
}

/// The players of the cooperative game for one candidate subgraph.
struct Players {
    /// `groups[p]` = node indices owned by player `p`; player 0 is the subgraph.
    groups: Vec<Vec<usize>>,
}

impl Players {
    fn new(graph: &InteractionGraph, subgraph_nodes: &[usize]) -> Self {
        let mut groups = vec![subgraph_nodes.to_vec()];
        for i in 0..graph.node_count() {
            if !subgraph_nodes.contains(&i) {
                groups.push(vec![i]);
            }
        }
        Self { groups }
    }

    fn count(&self) -> usize {
        self.groups.len()
    }

    /// Node-presence mask for a player coalition.
    fn mask(&self, coalition: &[bool], n_nodes: usize) -> Vec<bool> {
        let mut present = vec![false; n_nodes];
        for (p, &inc) in coalition.iter().enumerate() {
            if inc {
                for &node in &self.groups[p] {
                    present[node] = true;
                }
            }
        }
        present
    }
}

/// SHAP value of `subgraph_nodes` (player 0) under the scorer, estimated
/// from `config.samples` sampled coalitions.
///
/// Degenerate cases: a single player receives the full efficiency gap.
pub fn shap_value(
    scorer: &GraphScorer,
    graph: &InteractionGraph,
    subgraph_nodes: &[usize],
    config: &ShapConfig,
    rng: &mut Rng,
) -> f64 {
    let players = Players::new(graph, subgraph_nodes);
    let m = players.count();
    let n_nodes = graph.node_count();

    let f_full = scorer.score_with_nodes(graph, &vec![true; n_nodes]);
    let f_empty = scorer.score_with_nodes(graph, &vec![false; n_nodes]);
    let total = f_full - f_empty;
    if m == 1 {
        return total;
    }

    // Sample coalitions with sizes weighted by the Shapley kernel; the empty
    // and full coalitions are excluded (infinite weight — handled by the
    // efficiency constraint instead).
    let size_weights: Vec<f64> = (1..m)
        .map(|s| (m as f64 - 1.0) / (binomial(m, s) * s as f64 * (m - s) as f64))
        .collect();

    let k = config.samples.max(m); // enough rows for the regression
    // Draw every coalition on the calling thread first — the RNG stream is
    // consumed in exactly the sequential order — then score the rows (pure,
    // obs-free model evaluations) through the pool. Targets are gathered in
    // row order, so the regression inputs are bit-identical at any width.
    let coalitions: Vec<Vec<bool>> = (0..k)
        .map(|_| {
            let size = 1 + rng.weighted_index(&size_weights);
            let chosen = rng.sample_indices(m, size);
            let mut coalition = vec![false; m];
            for &c in &chosen {
                coalition[c] = true;
            }
            coalition
        })
        .collect();
    let targets: Vec<f64> = fexiot_par::pool().map_indexed(&coalitions, |_, coalition| {
        let present = players.mask(coalition, n_nodes);
        scorer.score_with_nodes(graph, &present) - f_empty
    });
    let mut design = Matrix::zeros(k, m);
    let mut target = Matrix::zeros(k, 1);
    let mut weights = Vec::with_capacity(k);
    for (row, (coalition, t)) in coalitions.iter().zip(&targets).enumerate() {
        for (p, &inc) in coalition.iter().enumerate() {
            design[(row, p)] = if inc { 1.0 } else { 0.0 };
        }
        target[(row, 0)] = *t;
        weights.push(1.0);
    }

    match sum_constrained_wls(&design, &target, &weights, total) {
        Ok(phi) => phi[(0, 0)],
        // Rank-deficient sampling (tiny games): fall back to the marginal
        // contribution of the subgraph against the empty coalition.
        Err(_) => {
            let mut coalition = vec![false; m];
            coalition[0] = true;
            let present = players.mask(&coalition, n_nodes);
            scorer.score_with_nodes(graph, &present) - f_empty
        }
    }
}

/// Monte-Carlo Shapley value of the subgraph with *independent* players —
/// the SubgraphX convention the paper contrasts against (no dependence
/// modeling, plain permutation sampling).
pub fn monte_carlo_shapley(
    scorer: &GraphScorer,
    graph: &InteractionGraph,
    subgraph_nodes: &[usize],
    samples: usize,
    rng: &mut Rng,
) -> f64 {
    let players = Players::new(graph, subgraph_nodes);
    let m = players.count();
    let n_nodes = graph.node_count();
    if m == 1 {
        let full = scorer.score_with_nodes(graph, &vec![true; n_nodes]);
        let empty = scorer.score_with_nodes(graph, &vec![false; n_nodes]);
        return full - empty;
    }
    // Pre-draw every random coalition sequentially, score the marginal
    // contributions in parallel, and reduce in sample order — the f64
    // accumulation sequence matches the sequential loop exactly.
    let coalitions: Vec<Vec<bool>> = (0..samples.max(1))
        .map(|_| {
            let mut coalition = vec![false; m];
            for flag in coalition.iter_mut().skip(1) {
                *flag = rng.bool(0.5);
            }
            coalition
        })
        .collect();
    let marginals: Vec<f64> = fexiot_par::pool().map_indexed(&coalitions, |_, coalition| {
        let without = players.mask(coalition, n_nodes);
        let mut with_player = coalition.clone();
        with_player[0] = true;
        let with = players.mask(&with_player, n_nodes);
        scorer.score_with_nodes(graph, &with) - scorer.score_with_nodes(graph, &without)
    });
    let acc: f64 = marginals.iter().sum();
    acc / samples.max(1) as f64
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut out = 1.0;
    for i in 0..k {
        out *= (n - i) as f64 / (i + 1) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::trained_scorer;

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(6, 3), 20.0);
        assert_eq!(binomial(4, 0), 1.0);
    }

    #[test]
    fn efficiency_for_single_player() {
        let (scorer, ds) = trained_scorer(11);
        let g = ds.graphs.iter().find(|g| g.node_count() >= 2).unwrap();
        let all: Vec<usize> = (0..g.node_count()).collect();
        let mut rng = Rng::seed_from_u64(1);
        let phi = shap_value(&scorer, g, &all, &ShapConfig::default(), &mut rng);
        let full = scorer.score_with_nodes(g, &vec![true; g.node_count()]);
        let empty = scorer.score_with_nodes(g, &vec![false; g.node_count()]);
        assert!((phi - (full - empty)).abs() < 1e-9);
    }

    #[test]
    fn shap_value_is_finite_and_bounded() {
        let (scorer, ds) = trained_scorer(12);
        let g = ds.graphs.iter().find(|g| g.node_count() >= 4).unwrap();
        let mut rng = Rng::seed_from_u64(2);
        let phi = shap_value(&scorer, g, &[0, 1], &ShapConfig { samples: 48 }, &mut rng);
        assert!(phi.is_finite());
        assert!(phi.abs() <= 1.0 + 1e-9, "phi {phi}");
    }

    #[test]
    fn monte_carlo_shapley_close_to_kernel_on_small_graph() {
        let (scorer, ds) = trained_scorer(13);
        let g = ds
            .graphs
            .iter()
            .find(|g| (3..=5).contains(&g.node_count()))
            .unwrap();
        let mut rng = Rng::seed_from_u64(3);
        let kernel = shap_value(&scorer, g, &[0], &ShapConfig { samples: 256 }, &mut rng);
        let mc = monte_carlo_shapley(&scorer, g, &[0], 512, &mut rng);
        assert!((kernel - mc).abs() < 0.25, "kernel {kernel} vs mc {mc}");
    }
}
