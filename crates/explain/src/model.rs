//! The model under explanation: a trained GNN encoder followed by the linear
//! classification head `h(·)` (paper §III-C). Exposes coalition-style scoring
//! where a subset of nodes is "present" and the rest are masked out.

use fexiot_gnn::Encoder;
use fexiot_graph::InteractionGraph;
use fexiot_ml::SgdClassifier;

/// GNN encoder + linear head, scored as P(vulnerable).
pub struct GraphScorer {
    pub encoder: Encoder,
    pub head: SgdClassifier,
}

impl GraphScorer {
    pub fn new(encoder: Encoder, head: SgdClassifier) -> Self {
        assert_eq!(
            fexiot_gnn::head_feature_dim(&encoder),
            head.weights.len(),
            "scorer: head dim must match the head-feature dim (embedding + runtime stats)"
        );
        Self { encoder, head }
    }

    /// Positive-class probability of the full graph.
    pub fn score(&self, graph: &InteractionGraph) -> f64 {
        if graph.node_count() == 0 {
            return self.head.proba(&vec![0.0; self.head.weights.len()]);
        }
        self.head
            .proba(&fexiot_gnn::head_features(&self.encoder, graph))
    }

    /// Positive-class probability with only `present` nodes active: absent
    /// nodes keep their place in the structure but their features are zeroed
    /// and their edges removed (the SubgraphX masking convention).
    pub fn score_with_nodes(&self, graph: &InteractionGraph, present: &[bool]) -> f64 {
        assert_eq!(
            present.len(),
            graph.node_count(),
            "score_with_nodes: mask length"
        );
        if !present.iter().any(|&p| p) {
            // Empty coalition: the model's baseline response.
            return self.score(&mask_graph(graph, present));
        }
        self.score(&mask_graph(graph, present))
    }

    /// Binary prediction for a graph.
    pub fn predict(&self, graph: &InteractionGraph) -> usize {
        usize::from(self.score(graph) >= 0.5)
    }
}

/// Zeroes features of absent nodes and removes their edges.
pub fn mask_graph(graph: &InteractionGraph, present: &[bool]) -> InteractionGraph {
    let mut masked = graph.clone();
    for (i, node) in masked.nodes.iter_mut().enumerate() {
        if !present[i] {
            for f in &mut node.features {
                *f = 0.0;
            }
        }
    }
    masked.edges.retain(|&(a, b)| present[a] && present[b]);
    masked
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use fexiot_gnn::{train_contrastive, ContrastiveConfig, Gin};
    use fexiot_graph::{generate_dataset, DatasetConfig, GraphDataset};
    use fexiot_ml::SgdConfig;
    use fexiot_tensor::rng::Rng;

    pub(crate) fn trained_scorer(seed: u64) -> (GraphScorer, GraphDataset) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cfg = DatasetConfig::small_ifttt();
        cfg.graph_count = 60;
        let ds = generate_dataset(&cfg, &mut rng);
        let labels: Vec<usize> = ds.graphs.iter().map(GraphDataset::binary_label).collect();
        let d = ds.graphs[0].nodes[0].features.len();
        let mut enc = Encoder::Gin(Gin::new(d, &[12], 6, &mut rng));
        train_contrastive(
            &mut enc,
            &ds.graphs,
            &labels,
            &ContrastiveConfig {
                epochs: 3,
                pairs_per_epoch: 24,
                ..Default::default()
            },
        );
        let x = fexiot_gnn::head_features_all(&enc, &ds.graphs);
        let head = fexiot_ml::SgdClassifier::fit(&x, &labels, SgdConfig::default());
        (GraphScorer::new(enc, head), ds)
    }

    #[test]
    fn scores_are_probabilities() {
        let (scorer, ds) = trained_scorer(1);
        for g in &ds.graphs[..10] {
            let s = scorer.score(g);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn full_mask_equals_plain_score() {
        let (scorer, ds) = trained_scorer(2);
        let g = &ds.graphs[0];
        let all = vec![true; g.node_count()];
        assert!((scorer.score(g) - scorer.score_with_nodes(g, &all)).abs() < 1e-12);
    }

    #[test]
    fn masking_changes_score() {
        let (scorer, ds) = trained_scorer(3);
        let g = ds.graphs.iter().find(|g| g.node_count() >= 3).unwrap();
        let mut mask = vec![true; g.node_count()];
        mask[0] = false;
        let full = scorer.score(g);
        let partial = scorer.score_with_nodes(g, &mask);
        assert!((full - partial).abs() > 1e-12, "mask had no effect");
    }

    #[test]
    fn mask_graph_removes_edges() {
        let (_, ds) = trained_scorer(4);
        let g = ds.graphs.iter().find(|g| g.edge_count() >= 1).unwrap();
        let mut present = vec![true; g.node_count()];
        let (a, _) = g.edges[0];
        present[a] = false;
        let masked = mask_graph(g, &present);
        assert!(masked.edges.iter().all(|&(u, v)| u != a && v != a));
        assert!(masked.nodes[a].features.iter().all(|&f| f == 0.0));
    }
}
