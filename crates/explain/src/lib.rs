//! # fexiot-explain
//!
//! Vulnerability-cause explanation for the FexIoT reproduction (paper §III-C):
//! kernel SHAP over graph coalitions (Eqs. 5-6), the SHAP-guided Monte-Carlo
//! beam search of Algorithm 2, the SubgraphX and MCTS_GNN baselines, and the
//! Fidelity/Sparsity quality metrics of Fig. 9.

pub mod model;
pub mod quality;
pub mod search;
pub mod shap;

pub use model::{mask_graph, GraphScorer};
pub use quality::{fidelity, quality, sparsity, QualityPoint};
pub use search::{
    explain, fexiot_config, mcts_gnn_config, subgraphx_config, Explanation, RewardKind,
    SearchConfig,
};
pub use shap::{monte_carlo_shapley, shap_value, ShapConfig};
