//! Explanation-quality metrics: Fidelity and Sparsity (paper Fig. 9,
//! following Pope et al.). Fidelity is the prediction drop when the
//! explanation subgraph is removed; Sparsity is the fraction of the graph
//! *not* needed by the explanation.

use crate::model::GraphScorer;
use fexiot_graph::InteractionGraph;

/// Fidelity: `f(G) - f(G \ G_sub)` — how much the prediction relies on the
/// explanation. Higher is better (more important subgraph).
pub fn fidelity(scorer: &GraphScorer, graph: &InteractionGraph, subgraph_nodes: &[usize]) -> f64 {
    let n = graph.node_count();
    let full = scorer.score_with_nodes(graph, &vec![true; n]);
    let mut present = vec![true; n];
    for &i in subgraph_nodes {
        present[i] = false;
    }
    let without = scorer.score_with_nodes(graph, &present);
    full - without
}

/// Sparsity: `1 - |G_sub| / |G|`. Higher means a more concise explanation.
pub fn sparsity(graph: &InteractionGraph, subgraph_nodes: &[usize]) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    1.0 - subgraph_nodes.len() as f64 / graph.node_count() as f64
}

/// One (fidelity, sparsity) point for a produced explanation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityPoint {
    pub fidelity: f64,
    pub sparsity: f64,
}

/// Evaluates an explanation's quality pair.
pub fn quality(
    scorer: &GraphScorer,
    graph: &InteractionGraph,
    subgraph_nodes: &[usize],
) -> QualityPoint {
    QualityPoint {
        fidelity: fidelity(scorer, graph, subgraph_nodes),
        sparsity: sparsity(graph, subgraph_nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::trained_scorer;

    #[test]
    fn sparsity_bounds() {
        let (_, ds) = trained_scorer(31);
        let g = ds.graphs.iter().find(|g| g.node_count() >= 4).unwrap();
        assert_eq!(sparsity(g, &[]), 1.0);
        let all: Vec<usize> = (0..g.node_count()).collect();
        assert_eq!(sparsity(g, &all), 0.0);
        let one = sparsity(g, &[0]);
        assert!(one > 0.0 && one < 1.0);
    }

    #[test]
    fn fidelity_of_empty_subgraph_is_zero() {
        let (scorer, ds) = trained_scorer(32);
        let g = &ds.graphs[0];
        assert!(fidelity(&scorer, g, &[]).abs() < 1e-12);
    }

    #[test]
    fn removing_everything_moves_prediction_to_baseline() {
        let (scorer, ds) = trained_scorer(33);
        let g = ds.graphs.iter().find(|g| g.node_count() >= 3).unwrap();
        let all: Vec<usize> = (0..g.node_count()).collect();
        let n = g.node_count();
        let f = fidelity(&scorer, g, &all);
        let full = scorer.score_with_nodes(g, &vec![true; n]);
        let empty = scorer.score_with_nodes(g, &vec![false; n]);
        assert!((f - (full - empty)).abs() < 1e-12);
    }

    #[test]
    fn quality_point_combines_both() {
        let (scorer, ds) = trained_scorer(34);
        let g = ds.graphs.iter().find(|g| g.node_count() >= 4).unwrap();
        let q = quality(&scorer, g, &[0, 1]);
        assert!(q.fidelity.is_finite());
        assert!((0.0..=1.0).contains(&q.sparsity));
    }
}
