//! Subgraph-explanation search (paper Alg. 2 and the two baselines of §IV-D).
//!
//! All three methods explore the same tree — the root is the full graph, an
//! action prunes one node while keeping the subgraph connected — but differ
//! in the reward that scores a candidate subgraph:
//!
//! * **FexIoT**: Monte-Carlo *beam* search with the kernel-SHAP reward
//!   (dependence-aware, Eq. 4-7).
//! * **SubgraphX**: Monte-Carlo tree search with the independence-assuming
//!   Monte-Carlo Shapley reward.
//! * **MCTS_GNN**: Monte-Carlo tree search with the raw prediction score.

use crate::model::GraphScorer;
use crate::shap::{monte_carlo_shapley, shap_value, ShapConfig};
use fexiot_graph::InteractionGraph;
use fexiot_tensor::rng::Rng;
use std::collections::HashMap;

/// Which reward scores a candidate subgraph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RewardKind {
    /// Kernel SHAP with `samples` coalitions (FexIoT, Alg. 2).
    KernelShap { samples: usize },
    /// Monte-Carlo Shapley with independent players (SubgraphX).
    MonteCarloShapley { samples: usize },
    /// Raw model prediction of the subgraph (MCTS_GNN).
    Prediction,
}

/// Search configuration (paper Alg. 2 inputs).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// MCBS/MCTS rollouts `I`.
    pub iterations: usize,
    /// Beam width `B_level` — candidates kept per level.
    pub beam_width: usize,
    /// Smallest subgraph size `N_min`; also the output size cap of Eq. (4).
    pub min_nodes: usize,
    /// Exploration/exploitation balance `λ` in Eq. (7).
    pub lambda: f64,
    pub reward: RewardKind,
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            iterations: 5,
            beam_width: 3,
            min_nodes: 3,
            lambda: 1.0,
            reward: RewardKind::KernelShap { samples: 32 },
            seed: 0,
        }
    }
}

/// A scored explanation subgraph.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Node indices (into the explained graph), sorted.
    pub nodes: Vec<usize>,
    /// The reward score of this subgraph.
    pub score: f64,
    /// Total reward evaluations spent (efficiency accounting, Table III).
    pub evaluations: usize,
}

/// Runs the subgraph search and returns the best explanation found.
///
/// # Panics
/// Panics if the graph is empty.
pub fn explain(
    scorer: &GraphScorer,
    graph: &InteractionGraph,
    config: &SearchConfig,
) -> Explanation {
    assert!(graph.node_count() > 0, "explain: empty graph");
    let _span = fexiot_obs::span("explain.search");
    let started = std::time::Instant::now();
    let n = graph.node_count();
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut evaluations = 0usize;

    let mut reward_of = |nodes: &[usize], rng: &mut Rng| -> f64 {
        evaluations += 1;
        match config.reward {
            RewardKind::KernelShap { samples } => {
                fexiot_obs::counter_add("explain.search.shap_evals", 1);
                shap_value(scorer, graph, nodes, &ShapConfig { samples }, rng)
            }
            RewardKind::MonteCarloShapley { samples } => {
                monte_carlo_shapley(scorer, graph, nodes, samples, rng)
            }
            RewardKind::Prediction => {
                let mut present = vec![false; n];
                for &i in nodes {
                    present[i] = true;
                }
                scorer.score_with_nodes(graph, &present)
            }
        }
    };

    // Q statistics per visited subgraph (keyed by sorted node set).
    let mut stats: HashMap<Vec<usize>, (f64, usize)> = HashMap::new();
    let mut best: Option<(Vec<usize>, f64)> = None;

    let min_nodes = config.min_nodes.min(n).max(1);
    for _ in 0..config.iterations.max(1) {
        let mut current: Vec<usize> = (0..n).collect();
        while current.len() > min_nodes {
            // Children: prune one node without fragmenting the subgraph. The
            // input graph itself may be disconnected (padded samples), so the
            // rule is "component count must not grow", which degenerates to
            // plain connectivity on connected graphs.
            let components = graph.component_count_subset(&current);
            let mut children: Vec<(Vec<usize>, f64)> = Vec::new();
            for drop_pos in 0..current.len() {
                let mut child: Vec<usize> = current.clone();
                child.remove(drop_pos);
                if graph.component_count_subset(&child) > components {
                    continue;
                }
                let r = reward_of(&child, &mut rng);
                children.push((child, r));
            }
            if children.is_empty() {
                break; // No connected prune available.
            }
            // Beam: keep the B best by immediate reward.
            children.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            fexiot_obs::counter_add("explain.search.expansions", children.len() as u64);
            let kept = config.beam_width.max(1);
            fexiot_obs::counter_add(
                "explain.search.pruned",
                children.len().saturating_sub(kept) as u64,
            );
            children.truncate(kept);
            // Record rewards, track the global best at output size.
            for (child, r) in &children {
                let entry = stats.entry(child.clone()).or_insert((0.0, 0));
                entry.0 += r;
                entry.1 += 1;
                if child.len() <= min_nodes && best.as_ref().is_none_or(|(_, b)| r > b) {
                    best = Some((child.clone(), *r));
                }
            }
            // Eq. (7): argmax Q(N, a) + λ R(N, a).
            let next = children
                .iter()
                .max_by(|(ca, ra), (cb, rb)| {
                    let qa = {
                        let (sum, cnt) = stats[ca];
                        sum / cnt as f64
                    };
                    let qb = {
                        let (sum, cnt) = stats[cb];
                        sum / cnt as f64
                    };
                    (qa + config.lambda * ra)
                        .partial_cmp(&(qb + config.lambda * rb))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("children non-empty");
            current = next.0.clone();
        }
        // Terminal subgraph of this rollout is also a candidate.
        if current.len() <= min_nodes || best.is_none() {
            let r = reward_of(&current, &mut rng);
            if best.as_ref().is_none_or(|(_, b)| r > *b) {
                best = Some((current.clone(), r));
            }
        }
    }

    let (mut nodes, score) = best.expect("at least one candidate");
    nodes.sort_unstable();
    fexiot_obs::counter_add("explain.search.evals", evaluations as u64);
    // The `_per_sec` suffix marks it as wall-clock data, kept out of
    // deterministic exports and timing-excluded streams.
    let secs = started.elapsed().as_secs_f64();
    if secs > 0.0 {
        fexiot_obs::gauge_set("explain.search.evals_per_sec", evaluations as f64 / secs);
    }
    Explanation {
        nodes,
        score,
        evaluations,
    }
}

/// Convenience: the three paper methods with shared sizing parameters.
pub fn fexiot_config(iterations: usize, min_nodes: usize, shap_samples: usize) -> SearchConfig {
    SearchConfig {
        iterations,
        min_nodes,
        reward: RewardKind::KernelShap {
            samples: shap_samples,
        },
        ..Default::default()
    }
}

pub fn subgraphx_config(iterations: usize, min_nodes: usize, samples: usize) -> SearchConfig {
    SearchConfig {
        iterations,
        min_nodes,
        // SubgraphX explores without a beam cap (full MCTS); a wide beam
        // approximates that and is why it returns larger, less concise
        // subgraphs in Fig. 8.
        beam_width: 8,
        reward: RewardKind::MonteCarloShapley { samples },
        ..Default::default()
    }
}

pub fn mcts_gnn_config(iterations: usize, min_nodes: usize) -> SearchConfig {
    SearchConfig {
        iterations,
        min_nodes,
        beam_width: 8,
        reward: RewardKind::Prediction,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::trained_scorer;

    fn pick_graph(seed: u64) -> (GraphScorer, InteractionGraph) {
        let (scorer, ds) = trained_scorer(seed);
        let g = ds
            .graphs
            .iter()
            .find(|g| g.node_count() >= 5 && g.edge_count() >= 4)
            .expect("a mid-size graph exists")
            .clone();
        (scorer, g)
    }

    #[test]
    fn explanation_is_connected_subset() {
        let (scorer, g) = pick_graph(21);
        for cfg in [
            fexiot_config(3, 3, 16),
            subgraphx_config(3, 3, 16),
            mcts_gnn_config(3, 3),
        ] {
            let e = explain(&scorer, &g, &cfg);
            assert!(!e.nodes.is_empty());
            assert!(e.nodes.iter().all(|&i| i < g.node_count()));
            assert!(
                g.is_connected_subset(&e.nodes),
                "{:?} disconnected",
                e.nodes
            );
            assert!(e.score.is_finite());
            assert!(e.evaluations > 0);
        }
    }

    #[test]
    fn explanation_respects_size_cap() {
        let (scorer, g) = pick_graph(22);
        let e = explain(&scorer, &g, &fexiot_config(3, 2, 8));
        assert!(e.nodes.len() <= g.node_count());
        // The winner must be at or below the N_min output cap unless pruning
        // was blocked by connectivity.
        assert!(e.nodes.len() <= 4, "explanation too large: {:?}", e.nodes);
    }

    #[test]
    fn single_node_graph_explained_trivially() {
        let (scorer, ds) = trained_scorer(23);
        let g = ds.graphs.iter().find(|g| g.node_count() == 2).unwrap();
        let e = explain(&scorer, g, &fexiot_config(2, 1, 8));
        assert!(!e.nodes.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (scorer, g) = pick_graph(24);
        let a = explain(&scorer, &g, &fexiot_config(2, 3, 8));
        let b = explain(&scorer, &g, &fexiot_config(2, 3, 8));
        assert_eq!(a.nodes, b.nodes);
    }
}
