//! `fexiot-par` — the deterministic data-parallel execution layer.
//!
//! Every hot stage of the FexIoT pipeline (featurization, batch GNN
//! inference, federated client steps, SHAP coalition scoring) is a map over
//! independent items whose *outputs* must stay bit-identical no matter how
//! many cores run it — the repo's golden tests and the obs-diff CI gate lock
//! `f64` bit patterns, not approximations. That rules out work-stealing
//! (gather order would depend on scheduling), so this crate implements the
//! simplest executor that cannot be nondeterministic:
//!
//! * **Fixed contiguous chunking.** `n` items are split into at most
//!   `threads` contiguous chunks whose boundaries depend only on `(n,
//!   threads)`. Chunk `0` runs on the calling thread.
//! * **Order-preserving gather.** Results are concatenated in chunk order,
//!   so the output vector is identical to the sequential map.
//! * **Sequential seed-splitting.** [`ParPool::map_rng`] derives one RNG per
//!   *item* (not per worker) by forking a base stream on the calling thread
//!   before any work is scattered; item `i` sees the same stream whether the
//!   pool has 1 or 64 threads.
//! * **Inline fast path.** With one thread (or one item) no thread is
//!   spawned and no synchronization happens — the single-thread run *is* the
//!   sequential code path.
//!
//! Observability: workers must not record into the process-global registry
//! (the per-thread span stacks would interleave nondeterministically).
//! Callers either keep worker closures obs-free, or route them into
//! per-worker child registries with [`fexiot_obs::with_registry`] and merge
//! the snapshots on the calling thread in worker order via
//! [`Registry::absorb`](fexiot_obs::Registry::absorb). The pool records a
//! `par.pool.workers` gauge (an *environment* name — excluded from
//! deterministic exports, see `fexiot_obs::is_environment_name`).

use fexiot_tensor::rng::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

mod pair;
pub use pair::PairScope;

/// Process-global thread count: 0 = not configured yet (resolve from the
/// environment on first use).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "FEXIOT_THREADS";

/// Environment variable forcing threaded execution even on machines whose
/// available parallelism is 1 (see [`hardware_width`]).
pub const FORCE_ENV: &str = "FEXIOT_PAR_FORCE";

/// The width the machine can actually run concurrently, cached once.
///
/// Chunking and seed-splitting are pure functions of the *requested* thread
/// count, so results never depend on this value — but the execution strategy
/// does. On a single-core machine real threads are pure overhead (and the
/// pair scope's spin rendezvous degrades to timeslice thrash), so the pool
/// falls back to the sequential call sequence whenever this is 1. Setting
/// `FEXIOT_PAR_FORCE=1` bypasses the cap so single-core CI machines still
/// exercise the threaded code paths.
fn hardware_width() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if std::env::var(FORCE_ENV).is_ok_and(|v| v == "1") {
            return usize::MAX;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

thread_local! {
    /// True while this thread is executing a chunk for an outer `map_*`
    /// call. Nested pool calls run inline instead of spawning again — one
    /// level of scatter already saturates the machine, and oversubscribing
    /// (e.g. every federated client worker opening its own pair scope)
    /// turns the spin rendezvous into scheduler thrash. Purely an execution
    /// strategy: results are identical either way.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn in_worker() -> bool {
    IN_WORKER.with(std::cell::Cell::get)
}

/// RAII flag marking the current thread as a pool worker; restores the
/// previous value on drop (chunk 0 runs on the calling thread, which may
/// not be a worker itself).
struct WorkerGuard(bool);

impl WorkerGuard {
    fn enter() -> Self {
        Self(IN_WORKER.with(|c| c.replace(true)))
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.0;
        IN_WORKER.with(|c| c.set(prev));
    }
}

/// Raw machine parallelism check, ignoring [`FORCE_ENV`]: the pair scope
/// uses this to pick a non-spinning wait strategy when threads are forced
/// onto a single core (spinning would burn the timeslice the companion
/// thread needs to make progress).
pub(crate) fn single_core() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            == 1
    })
}

/// Sets the process-global thread count used by [`pool`] (the `--threads`
/// CLI flag lands here). Clamped to at least 1.
pub fn set_threads(threads: usize) {
    GLOBAL_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The process-global pool: configured by [`set_threads`], else
/// `FEXIOT_THREADS`, else available parallelism. Resolution is cached.
pub fn pool() -> ParPool {
    let mut t = GLOBAL_THREADS.load(Ordering::Relaxed);
    if t == 0 {
        t = ParPool::from_env().threads();
        GLOBAL_THREADS.store(t, Ordering::Relaxed);
    }
    ParPool::new(t)
}

/// A deterministic scatter-gather executor. Creating one is free (it holds
/// no threads); each `map_*` call spawns scoped workers only when both the
/// thread count and the item count warrant it.
#[derive(Debug, Clone, Copy)]
pub struct ParPool {
    threads: usize,
}

impl ParPool {
    /// A pool that runs at most `threads` chunks concurrently (min 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The machine's available parallelism (1 when unknown).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Thread count from `FEXIOT_THREADS` (when set to a positive integer),
    /// else [`ParPool::available`].
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(Self::available);
        Self::new(threads)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Contiguous chunk boundaries for `n` items: a pure function of
    /// `(n, self.threads)`, never of runtime scheduling. At most `threads`
    /// chunks; the first `n % k` chunks carry one extra item.
    fn chunk_bounds(&self, n: usize) -> Vec<(usize, usize)> {
        let k = self.threads.min(n).max(1);
        let base = n / k;
        let extra = n % k;
        let mut bounds = Vec::with_capacity(k);
        let mut start = 0;
        for c in 0..k {
            let len = base + usize::from(c < extra);
            bounds.push((start, start + len));
            start += len;
        }
        bounds
    }

    /// Records the pool-width gauge once per map/scope call. The name is an
    /// environment name (`par.*`): visible in summaries, excluded from
    /// deterministic reports so runs at different `--threads` still diff
    /// clean. Fired on the inline path too — every code path emits the same
    /// event sequence regardless of thread count, which keeps event-stream
    /// `seq` numbering (and therefore timing-excluded streams) bit-identical
    /// between `--threads 1` and `--threads N`.
    fn note_use(&self) {
        fexiot_obs::gauge_set("par.pool.workers", self.threads as f64);
    }

    /// Order-preserving parallel map: `out[i] = f(i, &items[i])`.
    pub fn map_indexed<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        self.map_chunks(items, |start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(k, item)| f(start + k, item))
                .collect()
        })
    }

    /// True when this call should actually scatter work across threads.
    /// Purely an execution-strategy decision — results are identical either
    /// way (see the module docs, [`hardware_width`], and [`IN_WORKER`]).
    fn run_threaded(&self, chunks: usize) -> bool {
        chunks > 1 && hardware_width() > 1 && !in_worker()
    }

    /// Order-preserving map over an index range: `out[i] = f(i)`.
    pub fn map_range<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        self.note_use();
        let bounds = self.chunk_bounds(n);
        if !self.run_threaded(bounds.len()) {
            return (0..n).map(f).collect();
        }
        let mut results: Vec<Vec<R>> = Vec::with_capacity(bounds.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(bounds.len() - 1);
            for &(start, end) in &bounds[1..] {
                let f = &f;
                handles.push(scope.spawn(move || {
                    let _w = WorkerGuard::enter();
                    (start..end).map(f).collect::<Vec<R>>()
                }));
            }
            let (s0, e0) = bounds[0];
            results.push({
                let _w = WorkerGuard::enter();
                (s0..e0).map(&f).collect()
            });
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Order-preserving chunked map: `f(start, chunk)` returns the results
    /// for `items[start..start + chunk.len()]`; chunks are concatenated in
    /// order. The lowest-level entry point — use it when per-chunk setup
    /// (scratch buffers, a chunk-local registry) amortizes better than
    /// per-item closures.
    ///
    /// # Panics
    /// Panics if a chunk closure returns the wrong number of results.
    pub fn map_chunks<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &[T]) -> Vec<R> + Sync,
    ) -> Vec<R> {
        self.note_use();
        let bounds = self.chunk_bounds(items.len());
        if !self.run_threaded(bounds.len()) {
            // Same per-chunk call sequence as the threaded path, one thread.
            let out: Vec<R> = bounds
                .iter()
                .flat_map(|&(start, end)| f(start, &items[start..end]))
                .collect();
            assert_eq!(out.len(), items.len(), "map_chunks: result count mismatch");
            return out;
        }
        let mut results: Vec<Vec<R>> = Vec::with_capacity(bounds.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(bounds.len() - 1);
            for &(start, end) in &bounds[1..] {
                let f = &f;
                let chunk = &items[start..end];
                handles.push(scope.spawn(move || {
                    let _w = WorkerGuard::enter();
                    f(start, chunk)
                }));
            }
            let (s0, e0) = bounds[0];
            results.push({
                let _w = WorkerGuard::enter();
                f(s0, &items[s0..e0])
            });
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
        });
        let out: Vec<R> = results.into_iter().flatten().collect();
        assert_eq!(out.len(), items.len(), "map_chunks: result count mismatch");
        out
    }

    /// Order-preserving parallel map with mutable access:
    /// `out[i] = f(i, &mut items[i])`. Chunks are disjoint sub-slices, so
    /// workers never alias.
    pub fn map_mut<T: Send, R: Send>(
        &self,
        items: &mut [T],
        f: impl Fn(usize, &mut T) -> R + Sync,
    ) -> Vec<R> {
        self.note_use();
        let bounds = self.chunk_bounds(items.len());
        if !self.run_threaded(bounds.len()) {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        // Carve the slice into disjoint chunks up front.
        let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(bounds.len());
        let mut rest = items;
        let mut offset = 0;
        for &(start, end) in &bounds {
            let (head, tail) = rest.split_at_mut(end - offset);
            debug_assert_eq!(offset, start);
            chunks.push((start, head));
            rest = tail;
            offset = end;
        }
        let mut results: Vec<Vec<R>> = Vec::with_capacity(bounds.len());
        std::thread::scope(|scope| {
            let mut iter = chunks.into_iter();
            let (s0, chunk0) = iter.next().expect("at least one chunk");
            let mut handles = Vec::new();
            for (start, chunk) in iter {
                let f = &f;
                handles.push(scope.spawn(move || {
                    let _w = WorkerGuard::enter();
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(k, item)| f(start + k, item))
                        .collect::<Vec<R>>()
                }));
            }
            results.push({
                let _w = WorkerGuard::enter();
                chunk0
                    .iter_mut()
                    .enumerate()
                    .map(|(k, item)| f(s0 + k, item))
                    .collect()
            });
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Order-preserving parallel map with mutable access over a *sparse
    /// subset*: `out[j] = f(indices[j], &mut items[indices[j]])`. `indices`
    /// must be strictly increasing and in bounds (a sampled federated cohort
    /// is drawn sorted). Chunking is over the subset, not the backing slice,
    /// so a 50-client cohort inside a 2000-client fleet still balances
    /// across workers; each worker gets a disjoint sub-slice covering its
    /// chunk's index span, so workers never alias.
    ///
    /// # Panics
    /// Panics when `indices` is not strictly increasing or indexes out of
    /// bounds.
    pub fn map_subset_mut<T: Send, R: Send>(
        &self,
        items: &mut [T],
        indices: &[usize],
        f: impl Fn(usize, &mut T) -> R + Sync,
    ) -> Vec<R> {
        self.note_use();
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "map_subset_mut: indices must be strictly increasing"
        );
        if let Some(&last) = indices.last() {
            assert!(
                last < items.len(),
                "map_subset_mut: index {last} out of bounds for {} items",
                items.len()
            );
        }
        let bounds = self.chunk_bounds(indices.len());
        if !self.run_threaded(bounds.len()) {
            return indices.iter().map(|&i| f(i, &mut items[i])).collect();
        }
        // Carve disjoint sub-slices: chunk k owns the backing range
        // `indices[start]..=indices[end-1]` (disjoint because indices are
        // strictly increasing across chunk boundaries).
        let mut chunks: Vec<(usize, &[usize], &mut [T])> = Vec::with_capacity(bounds.len());
        let mut rest = items;
        let mut offset = 0;
        for &(start, end) in &bounds {
            let idx = &indices[start..end];
            let (lo, hi) = (idx[0], idx[end - start - 1]);
            let (_gap, tail) = rest.split_at_mut(lo - offset);
            let (span, tail) = tail.split_at_mut(hi - lo + 1);
            chunks.push((lo, idx, span));
            rest = tail;
            offset = hi + 1;
        }
        let mut results: Vec<Vec<R>> = Vec::with_capacity(bounds.len());
        std::thread::scope(|scope| {
            let mut iter = chunks.into_iter();
            let (lo0, idx0, span0) = iter.next().expect("at least one chunk");
            let mut handles = Vec::new();
            for (lo, idx, span) in iter {
                let f = &f;
                handles.push(scope.spawn(move || {
                    let _w = WorkerGuard::enter();
                    idx.iter().map(|&i| f(i, &mut span[i - lo])).collect::<Vec<R>>()
                }));
            }
            results.push({
                let _w = WorkerGuard::enter();
                idx0.iter().map(|&i| f(i, &mut span0[i - lo0])).collect()
            });
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Order-preserving parallel map with a per-item RNG. Streams are forked
    /// from `seed` *sequentially on the calling thread* (`base.fork(i)` for
    /// item `i`), so item `i` consumes the identical stream at any thread
    /// count — this is what keeps RNG-dependent stages bit-identical between
    /// `--threads 1` and `--threads 64`.
    pub fn map_rng<T: Sync, R: Send>(
        &self,
        seed: u64,
        items: &[T],
        f: impl Fn(usize, &T, &mut Rng) -> R + Sync,
    ) -> Vec<R> {
        let mut base = Rng::seed_from_u64(seed);
        let rngs: Vec<Rng> = (0..items.len()).map(|i| base.fork(i as u64)).collect();
        self.map_indexed(items, |i, item| {
            let mut rng = rngs[i].clone();
            f(i, item, &mut rng)
        })
    }

    /// Runs `f` with a two-lane scope: [`PairScope::join2`] executes two
    /// closures concurrently on a persistent companion worker (spawned once
    /// for the whole scope, so per-call dispatch is cheap enough for
    /// microsecond-scale tasks like one GNN training step). With one thread
    /// the scope is inline and `join2` runs its closures sequentially.
    pub fn scope_pair<R>(&self, f: impl FnOnce(&PairScope) -> R) -> R {
        self.note_use();
        let scope = PairScope::new(self.threads > 1 && hardware_width() > 1 && !in_worker());
        let out = f(&scope);
        drop(scope);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> Vec<ParPool> {
        vec![ParPool::new(1), ParPool::new(2), ParPool::new(3), ParPool::new(7)]
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for pool in pools() {
            for n in [0usize, 1, 2, 5, 7, 8, 100] {
                let bounds = pool.chunk_bounds(n);
                assert!(bounds.len() <= pool.threads().max(1));
                let mut expect = 0;
                for &(s, e) in &bounds {
                    assert_eq!(s, expect);
                    assert!(e >= s);
                    expect = e;
                }
                assert_eq!(expect, n, "bounds must cover 0..{n}");
                // Balanced: sizes differ by at most one.
                if !bounds.is_empty() {
                    let sizes: Vec<usize> = bounds.iter().map(|&(s, e)| e - s).collect();
                    let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(mx - mn <= 1, "unbalanced chunks {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn map_indexed_matches_sequential_at_any_width() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 3 + i as u64).collect();
        for pool in pools() {
            let got = pool.map_indexed(&items, |i, &x| x * 3 + i as u64);
            assert_eq!(got, expect, "threads={}", pool.threads());
        }
    }

    #[test]
    fn map_range_and_chunks_agree() {
        for pool in pools() {
            let a = pool.map_range(57, |i| i * i);
            let items: Vec<usize> = (0..57).collect();
            let b = pool.map_chunks(&items, |start, chunk| {
                chunk.iter().enumerate().map(|(k, _)| (start + k) * (start + k)).collect()
            });
            assert_eq!(a, b);
        }
    }

    #[test]
    fn map_mut_mutates_in_place_in_order() {
        let expect: Vec<i64> = (0..41).map(|i| i * 10).collect();
        for pool in pools() {
            let mut items: Vec<i64> = (0..41).collect();
            let returned = pool.map_mut(&mut items, |i, x| {
                *x *= 10;
                i
            });
            assert_eq!(items, expect);
            assert_eq!(returned, (0..41).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn map_subset_mut_touches_only_the_subset_in_order() {
        let indices = [0usize, 3, 4, 9, 17, 18, 40];
        for pool in pools() {
            let mut items: Vec<i64> = (0..41).collect();
            let returned = pool.map_subset_mut(&mut items, &indices, |i, x| {
                *x += 1000;
                i
            });
            assert_eq!(returned, indices.to_vec(), "threads={}", pool.threads());
            for (i, &x) in items.iter().enumerate() {
                let expect = if indices.contains(&i) { i as i64 + 1000 } else { i as i64 };
                assert_eq!(x, expect, "item {i} at threads={}", pool.threads());
            }
        }
    }

    #[test]
    fn map_subset_mut_handles_edge_shapes() {
        let pool = ParPool::new(4);
        let mut items: Vec<u8> = vec![7; 10];
        assert!(pool.map_subset_mut(&mut items, &[], |i, _| i).is_empty());
        // Single index, and a dense subset equal to the whole slice.
        assert_eq!(pool.map_subset_mut(&mut items, &[9], |i, _| i), vec![9]);
        let all: Vec<usize> = (0..10).collect();
        let got = pool.map_subset_mut(&mut items, &all, |i, x| {
            *x = i as u8;
            i
        });
        assert_eq!(got, all);
        assert_eq!(items, (0..10).map(|i| i as u8).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn map_subset_mut_rejects_unsorted_indices() {
        let mut items = vec![0u8; 4];
        ParPool::new(2).map_subset_mut(&mut items, &[2, 1], |i, _| i);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn map_subset_mut_rejects_out_of_bounds() {
        let mut items = vec![0u8; 4];
        ParPool::new(2).map_subset_mut(&mut items, &[1, 7], |i, _| i);
    }

    #[test]
    fn map_rng_streams_are_thread_count_invariant() {
        let items = vec![(); 29];
        let draw = |_: usize, _: &(), rng: &mut Rng| {
            (0..4).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        };
        let baseline = ParPool::new(1).map_rng(99, &items, draw);
        for pool in pools() {
            assert_eq!(
                pool.map_rng(99, &items, draw),
                baseline,
                "threads={}",
                pool.threads()
            );
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = ParPool::new(4);
        let out: Vec<u8> = pool.map_indexed(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
        assert!(pool.map_range(0, |i| i).is_empty());
    }

    #[test]
    fn nested_maps_run_inline_and_stay_correct() {
        let pool = ParPool::new(4);
        let outer: Vec<u64> = (0..8).collect();
        let got = pool.map_indexed(&outer, |_, &x| {
            ParPool::new(4)
                .map_range(4, move |j| x * 10 + j as u64)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = outer
            .iter()
            .map(|&x| (0..4).map(|j| x * 10 + j).sum())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        ParPool::new(4).map_indexed(&items, |i, _| {
            assert!(i != 13, "boom");
            i
        });
    }

    #[test]
    fn env_and_global_configuration() {
        assert!(ParPool::available() >= 1);
        set_threads(3);
        assert_eq!(pool().threads(), 3);
        set_threads(0);
        assert_eq!(pool().threads(), 1, "zero clamps to one");
        set_threads(2);
    }
}
