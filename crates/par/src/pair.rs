//! A two-lane scope with one *persistent* companion worker.
//!
//! The contrastive GNN trainer runs thousands of ~30µs steps, each of which
//! splits into two independent tape builds (one per graph of the pair).
//! Spawning an OS thread per step would cost more than the step itself, so
//! [`PairScope`] keeps a single companion thread alive for the scope's
//! lifetime and hands it borrowed closures through a rendezvous slot:
//!
//! 1. `join2(fa, fb)` erases `fa` into a raw task pointer, publishes it to
//!    the slot, runs `fb` inline, then waits for the worker's done flag.
//! 2. The worker spins briefly (the tasks are microseconds long), falling
//!    back to a condvar park when idle for longer.
//!
//! Safety: the task pointer refers to stack data of the `join2` frame;
//! `join2` never returns until the worker has signalled completion (or the
//! scope propagates the worker's panic), so the borrow cannot dangle. The
//! worker is joined on drop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased borrowed task: `call(data)` invokes the original closure.
struct Task {
    call: unsafe fn(*mut ()),
    data: *mut (),
}

/// Shutdown sentinel distinguishable from both null and real tasks.
fn shutdown_sentinel() -> *mut Task {
    // Any non-null aligned address never produced by Box::into_raw.
    std::ptr::dangling_mut::<Task>().wrapping_add(1)
}

/// Rendezvous state shared between the scope and its companion.
struct Slot {
    /// Null = empty, sentinel = shutdown, else a borrowed `*mut Task`.
    task: AtomicPtr<Task>,
    done: AtomicBool,
    panicked: AtomicBool,
    /// Park/wake for the idle worker (spin first, park after).
    park: Mutex<bool>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            task: AtomicPtr::new(std::ptr::null_mut()),
            done: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            park: Mutex::new(false),
            cv: Condvar::new(),
        }
    }
}

/// Spin iterations before a waiter parks / the worker sleeps. Tasks are
/// microsecond-scale, so a short spin almost always wins the race.
const SPIN: usize = 1 << 14;

/// Spin budget adjusted for the machine: on a single core, spinning only
/// burns the timeslice the other thread needs, so park/yield immediately.
fn spin_budget() -> usize {
    if crate::single_core() {
        0
    } else {
        SPIN
    }
}

fn worker_loop(slot: &Slot) {
    let shutdown = shutdown_sentinel();
    let budget = spin_budget();
    loop {
        // Acquire the next task: spin, then park.
        let mut task = std::ptr::null_mut();
        for _ in 0..budget {
            task = slot.task.load(Ordering::Acquire);
            if !task.is_null() {
                break;
            }
            std::hint::spin_loop();
        }
        if task.is_null() {
            let mut parked = slot.park.lock().unwrap_or_else(|e| e.into_inner());
            *parked = true;
            loop {
                task = slot.task.load(Ordering::Acquire);
                if !task.is_null() {
                    break;
                }
                parked = slot
                    .cv
                    .wait(parked)
                    .unwrap_or_else(|e| e.into_inner());
            }
            *parked = false;
        }
        if std::ptr::eq(task, shutdown) {
            return;
        }
        slot.task.store(std::ptr::null_mut(), Ordering::Relaxed);
        // SAFETY: the submitting `join2` frame owns the pointed-to task and
        // blocks until `done` flips, so the borrow is live.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
            let t = &*task;
            (t.call)(t.data);
        }));
        if outcome.is_err() {
            slot.panicked.store(true, Ordering::Release);
        }
        slot.done.store(true, Ordering::Release);
    }
}

/// A scope holding at most one companion worker; see the module docs.
pub struct PairScope {
    slot: Option<Arc<Slot>>,
    handle: Option<JoinHandle<()>>,
}

impl PairScope {
    /// `parallel == false` builds an inline scope (no thread, `join2` runs
    /// sequentially) — the 1-thread code path stays the sequential code.
    pub(crate) fn new(parallel: bool) -> Self {
        if !parallel {
            return Self {
                slot: None,
                handle: None,
            };
        }
        let slot = Arc::new(Slot::new());
        let worker_slot = Arc::clone(&slot);
        let handle = std::thread::Builder::new()
            .name("fexiot-par-pair".into())
            .spawn(move || worker_loop(&worker_slot))
            .ok();
        if handle.is_none() {
            // Could not spawn (resource limits): degrade to inline.
            return Self {
                slot: None,
                handle: None,
            };
        }
        Self {
            slot: Some(slot),
            handle,
        }
    }

    /// True when a companion worker is attached (two-lane execution).
    pub fn is_parallel(&self) -> bool {
        self.slot.is_some()
    }

    /// Runs `fa` and `fb` to completion and returns both results — `fa` on
    /// the companion worker (when attached) while `fb` runs on the calling
    /// thread. Inline scopes run `fa` then `fb` sequentially. Both closures
    /// are pure with respect to scheduling: the pair of results is identical
    /// either way.
    pub fn join2<RA: Send, RB>(
        &self,
        fa: impl FnOnce() -> RA + Send,
        fb: impl FnOnce() -> RB,
    ) -> (RA, RB) {
        let Some(slot) = &self.slot else {
            return (fa(), fb());
        };
        let mut ra: Option<RA> = None;
        let mut fa = Some(fa);
        let mut wrapper = || {
            ra = Some((fa.take().expect("task runs once"))());
        };
        unsafe fn trampoline<F: FnMut()>(data: *mut ()) {
            // SAFETY: `data` is the `&mut F` erased below, live for the call.
            unsafe { (*(data as *mut F))() }
        }
        fn erase<F: FnMut()>(f: &mut F) -> Task {
            Task {
                call: trampoline::<F>,
                data: f as *mut F as *mut (),
            }
        }
        let mut task = erase(&mut wrapper);
        // Publish the task, waking the worker if it parked.
        slot.done.store(false, Ordering::Relaxed);
        slot.task.store(&mut task, Ordering::Release);
        {
            let parked = slot.park.lock().unwrap_or_else(|e| e.into_inner());
            if *parked {
                slot.cv.notify_one();
            }
        }

        let rb = fb();

        // Wait for the companion: spin (tasks are µs-scale), then yield.
        let budget = spin_budget();
        let mut spins = 0usize;
        while !slot.done.load(Ordering::Acquire) {
            spins += 1;
            if spins < budget {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if slot.panicked.swap(false, Ordering::AcqRel) {
            panic!("fexiot-par pair worker panicked");
        }
        (ra.expect("companion completed the task"), rb)
    }
}

impl Drop for PairScope {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            slot.task.store(shutdown_sentinel(), Ordering::Release);
            let parked = slot.park.lock().unwrap_or_else(|e| e.into_inner());
            if *parked {
                slot.cv.notify_one();
            }
            drop(parked);
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join2_returns_both_results_inline_and_parallel() {
        for parallel in [false, true] {
            let scope = PairScope::new(parallel);
            assert_eq!(scope.is_parallel(), parallel);
            let (a, b) = scope.join2(|| 6 * 7, || "ok");
            assert_eq!((a, b), (42, "ok"));
        }
    }

    #[test]
    fn join2_borrows_stack_data() {
        let scope = PairScope::new(true);
        let data: Vec<u64> = (0..1000).collect();
        for _ in 0..200 {
            let (sa, sb) = scope.join2(
                || data.iter().sum::<u64>(),
                || data.iter().rev().sum::<u64>(),
            );
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn many_rapid_joins_stay_correct() {
        let scope = PairScope::new(true);
        let mut acc = 0u64;
        for i in 0..5000u64 {
            let (a, b) = scope.join2(move || i * 2, move || i * 3);
            acc = acc.wrapping_add(a + b);
        }
        assert_eq!(acc, (0..5000u64).map(|i| i * 5).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "pair worker panicked")]
    fn companion_panic_propagates() {
        let scope = PairScope::new(true);
        let _ = scope.join2(|| panic!("boom"), || 1);
    }
}
