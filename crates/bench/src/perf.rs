//! Continuous benchmark harness: six end-to-end workloads timed with
//! wall-clock percentiles and allocation counters, exported as
//! schema-stable `fexiot-bench/v1` JSON (see `fexiot_obs::diff`).
//!
//! The split between deterministic and wall-clock fields mirrors the obs
//! report contract: `items` (counter deltas of the final timed rep) and
//! `alloc` (when tracked) must be bit-identical across same-seed runs, so
//! `obs-diff` treats their drift as breaking; `timing_us` is advisory
//! unless `--strict-timing`.

use crate::scale::Scale;
use fexiot::{build_federation, FederationConfig, FexIot, FexIotConfig};
use fexiot_explain::{explain, fexiot_config};
use fexiot_fed::FaultPlan;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_obs::alloc::{self, AllocStats};
use fexiot_obs::registry::{Registry, Snapshot, SpanNode};
use fexiot_obs::Json;
use fexiot_tensor::Rng;
use std::hint::black_box;
use std::time::Instant;

/// Workload names, in run order. `featurize` is the corpus→featurize→fuse
/// graph pipeline, `gnn_epoch` one contrastive training epoch, `fed_round`
/// one federated round under fault injection, `explain` one beam-search
/// explanation of a detection, `registry_absorb` the obs merge path that
/// folds per-client trace registries into the global one (the hot loop of a
/// traced federated round at fleet scale), `stream_ingest` the streaming
/// actor pipeline consuming one replayed fleet corpus end to end (ingest →
/// maintain → sharded detect, `fexiot-cli serve`'s engine), and
/// `store_warm` the artifact store's warm path (manifest parse +
/// hash-verified blob reads + fixed-layout matrix decode, `fexiot-cli
/// eval --store`'s warm-start engine).
pub const WORKLOADS: &[&str] = &[
    "featurize",
    "gnn_epoch",
    "fed_round",
    "explain",
    "registry_absorb",
    "stream_ingest",
    "store_warm",
];

/// Schema identifier of one line in the append-only benchmark history
/// (`results/bench/history.jsonl`).
pub const HISTORY_SCHEMA: &str = "fexiot-bench-history/v1";

/// Harness configuration. One unrecorded warmup rep always runs before the
/// `reps` timed ones.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    pub scale: Scale,
    pub reps: usize,
    pub seed: u64,
    /// Parallel execution width the workloads ran at. Part of the bench
    /// identity: `obs-diff` refuses to compare reports with different
    /// `threads` (wall-clock numbers at different widths are not comparable).
    pub threads: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            reps: 5,
            seed: 42,
            threads: fexiot_par::pool().threads(),
        }
    }
}

/// Everything measured for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    pub workload: &'static str,
    /// Deterministic obs counters of the final timed rep (allocation
    /// attribution counters excluded — those move between builds).
    pub items: Vec<(String, u64)>,
    /// Whether the `track-alloc` feature compiled the tracking allocator in.
    pub tracked: bool,
    /// Allocation delta of the final timed rep (all zero when untracked).
    pub alloc: AllocStats,
    /// Wall-clock microseconds per timed rep, in run order.
    pub timings_us: Vec<u64>,
    /// Flamegraph-compatible collapsed stacks of the final timed rep.
    pub collapsed: String,
    /// Federation size, for federated workloads. Part of the bench identity
    /// when present: runs at different fleet sizes are never comparable.
    pub clients: Option<u64>,
    /// Aggregation topology label (`flat` or `hier:N`), for federated
    /// workloads. Also identity when present.
    pub topology: Option<String>,
    /// Sustained throughput, for streaming workloads only.
    pub throughput: Option<ThroughputStats>,
    /// Artifact-store warm-load digest, for the `store_warm` workload only.
    pub store: Option<StoreWarmStats>,
}

/// Digest of one `store_warm` run. `digest` (FNV-1a of every blob the cold
/// populate wrote, in manifest order) and `blob_bytes` are deterministic
/// data — same seed ⇒ same artifacts, at any thread width; `cold_us` and
/// the derived `speedup_milli` (cold time over warm p50, ×1000) are
/// wall-clock and get the advisory timing treatment in `obs-diff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreWarmStats {
    pub digest: u64,
    pub blob_bytes: u64,
    pub cold_us: u64,
    pub speedup_milli: u64,
}

/// Throughput digest of one streaming workload run. `events` and the
/// virtual-time `latency_p99_ticks` are deterministic data (same seed ⇒
/// same values); `events_per_sec` is derived from the wall-clock p50 and
/// gets the advisory timing treatment in `obs-diff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputStats {
    /// Events consumed per rep.
    pub events: u64,
    /// Sustained events per second at the wall-clock p50 rep time.
    pub events_per_sec: u64,
    /// p99 ingest→detect latency in virtual ticks of the final rep.
    pub latency_p99_ticks: u64,
}

/// Nearest-rank percentile summary of per-rep wall-clock times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSummary {
    pub mean: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub min: u64,
    pub max: u64,
    pub total: u64,
}

/// Computes the nearest-rank percentile summary. Panics on an empty slice.
pub fn timing_summary(timings_us: &[u64]) -> TimingSummary {
    assert!(!timings_us.is_empty(), "timing_summary: no reps");
    let mut sorted = timings_us.to_vec();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    let pct = |p: f64| {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    };
    TimingSummary {
        mean: total / sorted.len() as u64,
        p50: pct(50.0),
        p90: pct(90.0),
        p99: pct(99.0),
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
        total,
    }
}

/// Counters of the final rep that are deterministic across same-seed runs:
/// everything except the tracking allocator's per-span attribution
/// (`{span}_allocs` / `{span}_bytes`), which depends on the build rather
/// than the workload inputs.
pub fn deterministic_items(snap: &Snapshot) -> Vec<(String, u64)> {
    fn walk(nodes: &[SpanNode], out: &mut std::collections::BTreeSet<String>) {
        for n in nodes {
            out.insert(n.name.clone());
            walk(&n.children, out);
        }
    }
    let mut span_names = std::collections::BTreeSet::new();
    walk(&snap.roots, &mut span_names);
    snap.counters
        .iter()
        .filter(|(name, _)| {
            let attributed = |suffix: &str| {
                name.strip_suffix(suffix)
                    .is_some_and(|base| span_names.contains(base))
            };
            !attributed("_allocs") && !attributed("_bytes")
        })
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Runs `body` for one warmup plus `cfg.reps` timed reps against the global
/// obs registry (reset before every rep, so the final snapshot covers
/// exactly one rep). Allocation stats are sampled immediately around the
/// body so registry snapshotting is not charged to the workload.
fn run_reps(
    workload: &'static str,
    cfg: &PerfConfig,
    mut body: impl FnMut(),
) -> WorkloadReport {
    let reg = fexiot_obs::global();
    let was_enabled = reg.is_enabled();
    reg.set_enabled(true);
    let mut timings_us = Vec::with_capacity(cfg.reps);
    let mut last = (AllocStats::default(), Snapshot::default());
    for rep in 0..cfg.reps + 1 {
        reg.reset();
        let before = alloc::stats();
        let started = Instant::now();
        body();
        let elapsed = started.elapsed();
        let after = alloc::stats();
        if rep == 0 {
            continue; // warmup
        }
        timings_us.push(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        last = (after.delta_since(&before), reg.snapshot());
    }
    reg.set_enabled(was_enabled);
    let (alloc_delta, snap) = last;
    WorkloadReport {
        workload,
        items: deterministic_items(&snap),
        tracked: alloc::is_tracking(),
        alloc: alloc_delta,
        timings_us,
        collapsed: fexiot_obs::collapsed_stacks(&snap),
        clients: None,
        topology: None,
        throughput: None,
        store: None,
    }
}

fn featurize_report(cfg: &PerfConfig) -> WorkloadReport {
    let graph_count = cfg.scale.pick(60, 600);
    let seed = cfg.seed;
    run_reps("featurize", cfg, move || {
        let mut rng = Rng::seed_from_u64(seed);
        let mut ds_cfg = DatasetConfig::small_ifttt();
        ds_cfg.graph_count = graph_count;
        black_box(generate_dataset(&ds_cfg, &mut rng));
    })
}

fn gnn_epoch_report(cfg: &PerfConfig) -> WorkloadReport {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = cfg.scale.pick(60, 300);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let labels = fexiot_gnn::binary_labels(&ds);
    let feature_dim = ds.graphs[0].nodes[0].features.len();
    let train_cfg = fexiot_gnn::ContrastiveConfig {
        epochs: 1,
        pairs_per_epoch: cfg.scale.pick(48, 256),
        seed: cfg.seed,
        ..Default::default()
    };
    let seed = cfg.seed;
    let scale = cfg.scale;
    run_reps("gnn_epoch", cfg, move || {
        // A fresh encoder per rep keeps every rep's work identical.
        let mut enc_rng = Rng::seed_from_u64(seed);
        let mut encoder = fexiot_gnn::Encoder::Gin(fexiot_gnn::Gin::new(
            feature_dim,
            &[scale.pick(16, 32)],
            scale.pick(8, 16),
            &mut enc_rng,
        ));
        black_box(fexiot_gnn::train_contrastive(
            &mut encoder,
            &ds.graphs,
            &labels,
            &train_cfg,
        ));
    })
}

fn fed_round_report(cfg: &PerfConfig) -> WorkloadReport {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = cfg.scale.pick(90, 600);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let mut pipeline = FexIotConfig::default().with_seed(cfg.seed);
    pipeline.contrastive.epochs = 1;
    pipeline.contrastive.pairs_per_epoch = cfg.scale.pick(16, 64);
    let fed_cfg = FederationConfig {
        n_clients: cfg.scale.pick(5, 20),
        alpha: 1.0,
        rounds: cfg.reps + 1,
        pipeline,
        faults: FaultPlan::none()
            .with_seed(cfg.seed)
            .with_dropout(0.2)
            .with_straggler(0.2)
            .with_msg_loss(0.1),
        ..Default::default()
    };
    let n_clients = fed_cfg.n_clients;
    let topology = if fed_cfg.topology.is_hierarchical() {
        format!("hier:{}", fed_cfg.topology.aggregators)
    } else {
        "flat".to_string()
    };
    let mut sim = build_federation(&ds, &fed_cfg);
    sim.attach_obs(fexiot_obs::global().clone());
    // Reps are successive rounds of one simulation: round `r`'s work is a
    // deterministic function of (seed, r), so the final rep's counters are
    // stable for a fixed rep count.
    let mut report = run_reps("fed_round", cfg, move || {
        black_box(sim.run_round());
    });
    report.clients = Some(n_clients as u64);
    report.topology = Some(topology);
    report
}

fn explain_report(cfg: &PerfConfig) -> WorkloadReport {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut ds_cfg = DatasetConfig::small_ifttt();
    ds_cfg.graph_count = cfg.scale.pick(120, 400);
    let ds = generate_dataset(&ds_cfg, &mut rng);
    let mut fx_cfg = FexIotConfig::default().with_seed(cfg.seed);
    fx_cfg.contrastive.epochs = cfg.scale.pick(3, 8);
    let model = FexIot::train(&ds, fx_cfg);
    let target = ds
        .graphs
        .iter()
        .find(|g| g.node_count() >= 5)
        .cloned()
        .expect("dataset has a 5+ node graph");
    let search = fexiot_config(cfg.scale.pick(4, 10), 3, cfg.scale.pick(16, 48));
    run_reps("explain", cfg, move || {
        black_box(explain(model.scorer(), &target, &search));
    })
}

/// The `Registry::absorb` merge path in isolation: pre-built per-client
/// trace snapshots (span tree + counters + gauges + histograms, the shape a
/// traced federated round produces) folded into the global registry. This is
/// the per-round hot loop at fleet scale, so its cost is tracked as its own
/// workload.
fn registry_absorb_report(cfg: &PerfConfig) -> WorkloadReport {
    let children = cfg.scale.pick(64, 256);
    let snaps: Vec<Snapshot> = (0..children)
        .map(|i| {
            let reg = std::sync::Arc::new(Registry::new());
            {
                let _client = reg.span(format!("client[{i}]"));
                let _train = reg.span("fed.client.train");
                reg.counter_add("fed.client.steps", 32);
                reg.counter_add("fed.sim.participants", 1);
                reg.gauge_set("fed.client.lr", 0.05);
                reg.hist_record(
                    "fed.client.loss",
                    fexiot_obs::buckets::LOSS,
                    (i % 10) as f64 / 10.0,
                );
            }
            reg.snapshot()
        })
        .collect();
    run_reps("registry_absorb", cfg, move || {
        let reg = fexiot_obs::global();
        for snap in &snaps {
            reg.absorb(black_box(snap));
        }
        reg.counter_add("bench.absorb.children", snaps.len() as u64);
    })
}

/// The streaming detection service end to end: one replayed per-home event
/// corpus pushed through the bounded-mailbox actor pipeline (ingestor →
/// graph maintainer → detection shards over `fexiot-par`), exactly the
/// engine behind `fexiot-cli serve`. The fleet is generated once outside
/// the reps; each rep re-streams the same events against fresh graph
/// copies, so the final rep's `stream.*` counters are pure functions of
/// the seed.
fn stream_ingest_report(cfg: &PerfConfig) -> WorkloadReport {
    use fexiot_stream::{replay_fleet, run_stream, FleetConfig, RuntimeDetector, StreamConfig};
    let mut fleet_cfg = FleetConfig {
        homes: cfg.scale.pick(8, 24),
        home_size: 6,
        seed: cfg.seed,
        ..FleetConfig::default()
    };
    fleet_cfg.sim.duration *= cfg.scale.pick(2, 4) as u64;
    let fleet = replay_fleet(&fleet_cfg);
    let events = fleet.events.len() as u64;
    let stream_cfg = StreamConfig::default();
    let detector = RuntimeDetector::default();
    let mut report = run_reps("stream_ingest", cfg, move || {
        let reg = fexiot_obs::global();
        black_box(run_stream(
            &fleet.graphs,
            &fleet.events,
            &detector,
            &stream_cfg,
            reg,
            None,
        ));
    });
    // The final rep's registry state is still live after `run_reps`, so the
    // deterministic virtual-time p99 gauge can be read back directly.
    let latency_p99_ticks = fexiot_obs::global()
        .metrics_snapshot()
        .gauges
        .get("stream.detect.latency_p99_ticks")
        .copied()
        .unwrap_or(0.0) as u64;
    let p50 = timing_summary(&report.timings_us).p50;
    report.throughput = Some(ThroughputStats {
        events,
        events_per_sec: events
            .saturating_mul(1_000_000)
            .checked_div(p50)
            .unwrap_or(0),
        latency_p99_ticks,
    });
    report
}

/// The artifact store's warm path end to end: each rep opens the store
/// fresh from disk (manifest parse + schema check), then warm-loads the
/// dataset and the trained model through hash-verified blob reads and the
/// fixed-layout matrix codec — exactly what `fexiot-cli eval --store` does
/// on a warm run. The store is populated once, cold, outside the reps; the
/// cold wall-clock is kept as the advisory baseline for the warm speedup.
fn store_warm_report(cfg: &PerfConfig) -> WorkloadReport {
    use fexiot::store::Store;
    let train_graphs = cfg.scale.pick(60, 300);
    let dir = std::env::temp_dir().join(format!(
        "fexiot-bench-store-{}-{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cold_started = Instant::now();
    let mut store = Store::open(&dir).expect("bench store dir");
    let cold = fexiot::warm::load_or_train_model(
        Some(&mut store),
        cfg.seed,
        train_graphs,
        fexiot_gnn::EncoderKind::Gin,
    );
    assert!(!cold.warm, "fresh store must populate cold");
    let cold_us = u64::try_from(cold_started.elapsed().as_micros()).unwrap_or(u64::MAX);
    // Digest every blob the cold populate wrote, in manifest (key) order:
    // deterministic data at any seed-matched rerun, any thread width.
    let mut blob_bytes = 0u64;
    let mut all = Vec::new();
    for entry in store.list() {
        blob_bytes += entry.len;
        let blob = dir.join("blobs").join(format!("{:016x}.bin", entry.blob));
        all.extend_from_slice(&std::fs::read(&blob).expect("cold-written blob"));
    }
    let digest = fexiot_tensor::codec::fnv1a(&all);
    drop(store);
    let seed = cfg.seed;
    let rep_dir = dir.clone();
    let mut report = run_reps("store_warm", cfg, move || {
        let mut store = Store::open(&rep_dir).expect("bench store dir");
        let ds = fexiot::warm::load_or_generate_dataset(
            Some(&mut store),
            seed,
            train_graphs,
            false,
        );
        assert!(ds.warm, "populated store must warm-load the dataset");
        black_box(ds.value);
        let model = fexiot::warm::load_or_train_model(
            Some(&mut store),
            seed,
            train_graphs,
            fexiot_gnn::EncoderKind::Gin,
        );
        assert!(model.warm, "populated store must warm-load the model");
        black_box(model.value);
    });
    let _ = std::fs::remove_dir_all(&dir);
    let p50 = timing_summary(&report.timings_us).p50;
    report.store = Some(StoreWarmStats {
        digest,
        blob_bytes,
        cold_us,
        speedup_milli: cold_us.saturating_mul(1000).checked_div(p50).unwrap_or(0),
    });
    report
}

/// Runs one named workload; `None` for an unknown name.
pub fn run_workload(name: &str, cfg: &PerfConfig) -> Option<WorkloadReport> {
    match name {
        "featurize" => Some(featurize_report(cfg)),
        "gnn_epoch" => Some(gnn_epoch_report(cfg)),
        "fed_round" => Some(fed_round_report(cfg)),
        "explain" => Some(explain_report(cfg)),
        "registry_absorb" => Some(registry_absorb_report(cfg)),
        "stream_ingest" => Some(stream_ingest_report(cfg)),
        "store_warm" => Some(store_warm_report(cfg)),
        _ => None,
    }
}

/// Runs every workload in [`WORKLOADS`] order.
pub fn run_all(cfg: &PerfConfig) -> Vec<WorkloadReport> {
    WORKLOADS
        .iter()
        .map(|w| run_workload(w, cfg).expect("known workload"))
        .collect()
}

/// Renders one workload as a `fexiot-bench/v1` document (validated by
/// `fexiot_obs::diff::validate_bench_report`).
pub fn to_json(report: &WorkloadReport, cfg: &PerfConfig) -> Json {
    let t = timing_summary(&report.timings_us);
    let obj = |pairs: Vec<(&str, Json)>| {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let mut fields = vec![
        ("schema", Json::Str(fexiot_obs::diff::BENCH_SCHEMA.to_string())),
        ("workload", Json::Str(report.workload.to_string())),
        ("scale", Json::Str(cfg.scale.name().to_string())),
        ("reps", Json::UInt(cfg.reps as u64)),
        ("seed", Json::UInt(cfg.seed)),
        ("threads", Json::UInt(cfg.threads as u64)),
    ];
    // Federated workloads carry their fleet shape as extra identity fields
    // (`obs-diff` refuses to compare across different shapes).
    if let Some(clients) = report.clients {
        fields.push(("clients", Json::UInt(clients)));
    }
    if let Some(topology) = &report.topology {
        fields.push(("topology", Json::Str(topology.clone())));
    }
    // Streaming workloads carry a throughput digest: deterministic event
    // count and virtual-time p99 latency, plus the wall-clock-derived
    // sustained rate (advisory in `obs-diff`, like `timing_us`).
    if let Some(tp) = &report.throughput {
        fields.push((
            "throughput",
            obj(vec![
                ("events", Json::UInt(tp.events)),
                ("events_per_sec", Json::UInt(tp.events_per_sec)),
                ("latency_p99_ticks", Json::UInt(tp.latency_p99_ticks)),
            ]),
        ));
    }
    // The store_warm workload carries its warm-load digest: deterministic
    // blob digest + size, plus the wall-clock-derived cold time and warm
    // speedup (advisory in `obs-diff`, like `timing_us`).
    if let Some(s) = &report.store {
        fields.push((
            "store",
            obj(vec![
                ("digest", Json::Str(format!("fnv1a:{:016x}", s.digest))),
                ("blob_bytes", Json::UInt(s.blob_bytes)),
                ("cold_us", Json::UInt(s.cold_us)),
                ("speedup_milli", Json::UInt(s.speedup_milli)),
            ]),
        ));
    }
    fields.extend([
        (
            "items",
            Json::Obj(
                report
                    .items
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect(),
            ),
        ),
        (
            "alloc",
            obj(vec![
                ("tracked", Json::Bool(report.tracked)),
                ("allocs", Json::UInt(report.alloc.allocs)),
                ("bytes", Json::UInt(report.alloc.bytes)),
                ("peak_live_bytes", Json::UInt(report.alloc.peak_live_bytes)),
            ]),
        ),
        (
            "timing_us",
            obj(vec![
                ("mean", Json::UInt(t.mean)),
                ("p50", Json::UInt(t.p50)),
                ("p90", Json::UInt(t.p90)),
                ("p99", Json::UInt(t.p99)),
                ("min", Json::UInt(t.min)),
                ("max", Json::UInt(t.max)),
                ("total", Json::UInt(t.total)),
            ]),
        ),
    ]);
    obj(fields)
}

/// Renders one append-only history line (`fexiot-bench-history/v1`): the run
/// identity plus a p50/p90/total timing digest per workload. `unix_ts` is
/// supplied by the caller so the renderer itself stays deterministic.
pub fn history_line(reports: &[WorkloadReport], cfg: &PerfConfig, unix_ts: u64) -> String {
    let workloads = reports
        .iter()
        .map(|r| {
            let t = timing_summary(&r.timings_us);
            let mut digest = vec![
                ("p50_us".into(), Json::UInt(t.p50)),
                ("p90_us".into(), Json::UInt(t.p90)),
                ("total_us".into(), Json::UInt(t.total)),
            ];
            if let Some(tp) = &r.throughput {
                digest.push(("events_per_sec".into(), Json::UInt(tp.events_per_sec)));
            }
            if let Some(s) = &r.store {
                digest.push(("speedup_milli".into(), Json::UInt(s.speedup_milli)));
            }
            (r.workload.to_string(), Json::Obj(digest))
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(HISTORY_SCHEMA.to_string())),
        ("unix_ts".into(), Json::UInt(unix_ts)),
        ("scale".into(), Json::Str(cfg.scale.name().to_string())),
        ("reps".into(), Json::UInt(cfg.reps as u64)),
        ("seed".into(), Json::UInt(cfg.seed)),
        ("threads".into(), Json::UInt(cfg.threads as u64)),
        ("workloads".into(), Json::Obj(workloads)),
    ])
    .to_string()
}

/// Keeps only the newest `cap` non-empty lines of the append-only JSONL
/// history. `cap == 0` means keep-all (the default when `--history-cap` is
/// not given). Blank lines are dropped either way; the result always ends
/// with a newline per surviving line, so re-capping is idempotent.
pub fn cap_history_lines(text: &str, cap: usize) -> String {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let keep = if cap == 0 { lines.len() } else { cap.min(lines.len()) };
    lines[lines.len() - keep..]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Renders a per-workload p50 trend summary of an append-only history file:
/// one row per workload with the first and newest p50 and their delta
/// (absolute and percent). Workloads appear in first-seen order, so a
/// history written by this harness lists them in [`WORKLOADS`] order.
pub fn history_summary(text: &str) -> Result<String, String> {
    let mut series: Vec<(String, Vec<u64>)> = Vec::new();
    let mut runs = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("history line {}: {e:?}", i + 1))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != HISTORY_SCHEMA {
            return Err(format!(
                "history line {}: schema {schema:?} is not {HISTORY_SCHEMA:?}",
                i + 1
            ));
        }
        let Some(Json::Obj(workloads)) = doc.get("workloads") else {
            return Err(format!("history line {}: missing workloads section", i + 1));
        };
        runs += 1;
        for (name, digest) in workloads {
            let p50 = digest.get("p50_us").and_then(Json::as_u64).ok_or_else(|| {
                format!("history line {}: workload {name:?} has no p50_us", i + 1)
            })?;
            match series.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => v.push(p50),
                None => series.push((name.clone(), vec![p50])),
            }
        }
    }
    if runs == 0 {
        return Err("history is empty".to_string());
    }
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{HISTORY_SCHEMA} · {runs} run(s)");
    let _ = writeln!(
        out,
        "{:<18} {:>5} {:>12} {:>11} {:>9} {:>9}",
        "workload", "runs", "p50_first_us", "p50_last_us", "delta_us", "delta_pct"
    );
    for (name, p50s) in &series {
        let first = p50s[0];
        let last = *p50s.last().expect("non-empty series");
        let delta = last as i64 - first as i64;
        let pct = if first == 0 {
            "n/a".to_string()
        } else {
            format!("{:+.1}%", delta as f64 / first as f64 * 100.0)
        };
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>12} {:>11} {:>+9} {:>9}",
            name,
            p50s.len(),
            first,
            last,
            delta,
            pct
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fexiot_obs::diff::validate_bench_report;

    #[test]
    fn timing_summary_uses_nearest_rank() {
        let t = timing_summary(&[40, 10, 30, 20]);
        assert_eq!(t.p50, 20);
        assert_eq!(t.p90, 40);
        assert_eq!(t.p99, 40);
        assert_eq!(t.min, 10);
        assert_eq!(t.max, 40);
        assert_eq!(t.mean, 25);
        assert_eq!(t.total, 100);
        let single = timing_summary(&[7]);
        assert_eq!(single.p50, 7);
        assert_eq!(single.p99, 7);
    }

    #[test]
    fn to_json_produces_a_valid_bench_document() {
        let report = WorkloadReport {
            workload: "featurize",
            items: vec![("graph.corpus.rules".to_string(), 320)],
            tracked: false,
            alloc: AllocStats::default(),
            timings_us: vec![120, 100, 140],
            collapsed: String::new(),
            clients: None,
            topology: None,
            throughput: None,
            store: None,
        };
        let cfg = PerfConfig::default();
        let doc = to_json(&report, &cfg);
        validate_bench_report(&doc).expect("valid bench document");
        assert!(doc.get("clients").is_none(), "no fleet identity unless set");

        let fleet = WorkloadReport {
            clients: Some(2000),
            topology: Some("hier:2".to_string()),
            ..report
        };
        let doc = to_json(&fleet, &cfg);
        validate_bench_report(&doc).expect("valid fleet bench document");
        assert_eq!(doc.get("clients").and_then(Json::as_u64), Some(2000));
        assert_eq!(
            doc.get("topology").and_then(Json::as_str),
            Some("hier:2")
        );
        // Round-trips through the parser unchanged.
        let parsed = Json::parse(&doc.to_string()).expect("parse own output");
        validate_bench_report(&parsed).expect("valid after round-trip");
        assert_eq!(
            parsed.get("items").and_then(|i| i.get("graph.corpus.rules")).and_then(Json::as_u64),
            Some(320)
        );
    }

    #[test]
    fn registry_absorb_workload_is_deterministic_and_fast_to_rerun() {
        let cfg = PerfConfig {
            reps: 2,
            ..PerfConfig::default()
        };
        let a = registry_absorb_report(&cfg);
        let b = registry_absorb_report(&cfg);
        assert_eq!(a.items, b.items, "absorb counters are deterministic");
        let children = cfg.scale.pick(64, 256) as u64;
        let item = |name: &str| {
            a.items
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("item {name}"))
        };
        assert_eq!(item("bench.absorb.children"), children);
        assert_eq!(item("fed.sim.participants"), children);
        assert_eq!(item("fed.client.steps"), children * 32);
        let doc = to_json(&a, &cfg);
        validate_bench_report(&doc).expect("valid bench document");
    }

    #[test]
    fn stream_ingest_workload_is_deterministic_with_throughput_digest() {
        let cfg = PerfConfig {
            reps: 2,
            ..PerfConfig::default()
        };
        let a = stream_ingest_report(&cfg);
        let b = stream_ingest_report(&cfg);
        assert_eq!(a.items, b.items, "stream counters are deterministic");
        let item = |name: &str| {
            a.items
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("item {name}"))
        };
        let tp = a.throughput.expect("streaming workload carries throughput");
        assert!(tp.events > 0);
        assert_eq!(item("stream.ingest.events"), tp.events);
        assert_eq!(item("stream.detect.events"), tp.events, "block policy sheds nothing");
        assert_eq!(
            a.throughput.map(|t| (t.events, t.latency_p99_ticks)),
            b.throughput.map(|t| (t.events, t.latency_p99_ticks)),
            "deterministic throughput fields agree across runs"
        );
        let doc = to_json(&a, &cfg);
        validate_bench_report(&doc).expect("valid bench document");
        assert_eq!(
            doc.get("throughput").and_then(|t| t.get("events")).and_then(Json::as_u64),
            Some(tp.events)
        );
        // The history digest carries the sustained rate for trend greps.
        let line = history_line(std::slice::from_ref(&a), &cfg, 1);
        let parsed = Json::parse(&line).expect("parses");
        let eps = parsed
            .get("workloads")
            .and_then(|w| w.get("stream_ingest"))
            .and_then(|d| d.get("events_per_sec"))
            .and_then(Json::as_u64)
            .expect("events_per_sec in history digest");
        assert_eq!(eps, tp.events_per_sec);
    }

    #[test]
    fn store_warm_workload_is_deterministic_with_store_digest() {
        let cfg = PerfConfig {
            reps: 2,
            ..PerfConfig::default()
        };
        let a = store_warm_report(&cfg);
        let b = store_warm_report(&cfg);
        assert_eq!(a.items, b.items, "warm-load counters are deterministic");
        let item = |name: &str| {
            a.items
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("item {name}"))
        };
        // Each rep warm-loads two artifacts (dataset + model) and never
        // misses; the bytes read match the manifest's recorded sizes.
        assert_eq!(item("store.hits"), 2);
        assert!(a.items.iter().all(|(k, _)| k != "store.misses"));
        assert!(a.items.iter().all(|(k, _)| k != "store.corrupt"));
        let s = a.store.expect("store_warm carries a store digest");
        assert_eq!(item("store.bytes_read"), s.blob_bytes);
        assert_eq!(
            a.store.map(|s| (s.digest, s.blob_bytes)),
            b.store.map(|s| (s.digest, s.blob_bytes)),
            "deterministic store fields agree across runs"
        );
        let doc = to_json(&a, &cfg);
        validate_bench_report(&doc).expect("valid bench document");
        assert_eq!(
            doc.get("store").and_then(|s| s.get("blob_bytes")).and_then(Json::as_u64),
            Some(s.blob_bytes)
        );
        // The history digest carries the warm speedup for trend greps.
        let line = history_line(std::slice::from_ref(&a), &cfg, 1);
        let parsed = Json::parse(&line).expect("parses");
        let speedup = parsed
            .get("workloads")
            .and_then(|w| w.get("store_warm"))
            .and_then(|d| d.get("speedup_milli"))
            .and_then(Json::as_u64)
            .expect("speedup_milli in history digest");
        assert_eq!(speedup, s.speedup_milli);
    }

    #[test]
    fn history_line_is_one_parseable_json_record() {
        let report = WorkloadReport {
            workload: "featurize",
            items: vec![],
            tracked: false,
            alloc: AllocStats::default(),
            timings_us: vec![120, 100, 140],
            collapsed: String::new(),
            clients: None,
            topology: None,
            throughput: None,
            store: None,
        };
        let cfg = PerfConfig::default();
        let line = history_line(std::slice::from_ref(&report), &cfg, 1754000000);
        assert!(!line.contains('\n'), "JSONL: one line per run");
        let doc = Json::parse(&line).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(HISTORY_SCHEMA));
        assert_eq!(doc.get("unix_ts").and_then(Json::as_u64), Some(1754000000));
        let digest = doc
            .get("workloads")
            .and_then(|w| w.get("featurize"))
            .expect("workload digest");
        assert_eq!(digest.get("p50_us").and_then(Json::as_u64), Some(120));
        assert_eq!(digest.get("p90_us").and_then(Json::as_u64), Some(140));
        assert_eq!(digest.get("total_us").and_then(Json::as_u64), Some(360));
    }

    fn digest_report(workload: &'static str, p50_us: u64) -> WorkloadReport {
        WorkloadReport {
            workload,
            items: vec![],
            tracked: false,
            alloc: AllocStats::default(),
            timings_us: vec![p50_us],
            collapsed: String::new(),
            clients: None,
            topology: None,
            throughput: None,
            store: None,
        }
    }

    #[test]
    fn history_cap_keeps_newest_lines_and_drops_blanks() {
        let text = "a\n\nb\nc\n";
        assert_eq!(cap_history_lines(text, 0), "a\nb\nc\n", "0 = keep-all");
        assert_eq!(cap_history_lines(text, 2), "b\nc\n");
        assert_eq!(cap_history_lines(text, 9), "a\nb\nc\n");
        // Idempotent: capping an already-capped history is a no-op.
        assert_eq!(cap_history_lines(&cap_history_lines(text, 2), 2), "b\nc\n");
        assert_eq!(cap_history_lines("", 3), "");
    }

    #[test]
    fn history_summary_reports_per_workload_p50_trend() {
        let cfg = PerfConfig::default();
        let l1 = history_line(
            &[digest_report("featurize", 100), digest_report("fed_round", 50)],
            &cfg,
            1,
        );
        let l2 = history_line(
            &[digest_report("featurize", 80), digest_report("fed_round", 60)],
            &cfg,
            2,
        );
        let text = format!("{l1}\n{l2}\n");
        let summary = history_summary(&text).expect("summary renders");
        assert!(summary.contains("2 run(s)"), "{summary}");
        let featurize = summary
            .lines()
            .find(|l| l.starts_with("featurize"))
            .expect("featurize row");
        for field in ["2", "100", "80", "-20", "-20.0%"] {
            assert!(featurize.contains(field), "{featurize:?} missing {field}");
        }
        let fed = summary
            .lines()
            .find(|l| l.starts_with("fed_round"))
            .expect("fed_round row");
        for field in ["50", "60", "+10", "+20.0%"] {
            assert!(fed.contains(field), "{fed:?} missing {field}");
        }
    }

    #[test]
    fn history_summary_rejects_empty_or_foreign_input() {
        assert!(history_summary("").is_err());
        assert!(history_summary("\n\n").is_err());
        assert!(history_summary("not json\n").is_err());
        assert!(history_summary("{\"schema\":\"other/v1\"}\n").is_err());
    }

    #[test]
    fn deterministic_items_drop_alloc_attribution_counters() {
        let mut snap = Snapshot {
            roots: vec![SpanNode {
                name: "pipeline.featurize".to_string(),
                elapsed_us: 10,
                children: Vec::new(),
            }],
            ..Default::default()
        };
        snap.counters.insert("pipeline.featurize_allocs".to_string(), 5);
        snap.counters.insert("pipeline.featurize_bytes".to_string(), 640);
        // A `_bytes` counter that is NOT span attribution survives.
        snap.counters.insert("fed.comm.uploaded_bytes".to_string(), 9);
        snap.counters.insert("graph.corpus.rules".to_string(), 40);
        let items = deterministic_items(&snap);
        assert_eq!(
            items,
            vec![
                ("fed.comm.uploaded_bytes".to_string(), 9),
                ("graph.corpus.rules".to_string(), 40),
            ]
        );
    }
}
