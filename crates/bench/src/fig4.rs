//! Figure 4: federated strategies (FexIoT, GCFL+, FMTL, FedAvg, Client) ×
//! two GNN encoders (GIN, GCN) under five Dirichlet concentrations α.

use crate::scale::Scale;
use fexiot::{build_federation_with_data, FederationConfig, FexIotConfig};
use fexiot_fed::Strategy;
use fexiot_gnn::EncoderKind;
use fexiot_graph::dataset::{generate_federated, FederatedData};
use fexiot_graph::DatasetConfig;
use fexiot_ml::Metrics;
use fexiot_tensor::rng::Rng;

/// One cell of the Fig. 4 grid.
#[derive(Debug, Clone)]
pub struct Fig4Cell {
    pub encoder: &'static str,
    pub strategy: &'static str,
    pub alpha: f64,
    pub metrics: Metrics,
}

/// Paper α sweep.
pub const ALPHAS: [f64; 5] = [0.1, 1.0, 2.0, 5.0, 10.0];

/// The five strategies in paper order.
pub fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::fexiot_default(),
        Strategy::gcfl_default(),
        Strategy::fmtl_default(),
        Strategy::FedAvg,
        Strategy::LocalOnly,
    ]
}

/// Shared federated data for Fig. 4: 10 clients over 4 household archetypes
/// (the paper's premise of clusterable households), Dirichlet-α label skew
/// inside each archetype.
pub fn fig4_data(scale: Scale, alpha: f64, seed: u64) -> FederatedData {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = DatasetConfig::small_ifttt();
    cfg.graph_count = scale.pick(320, 6000);
    if scale == Scale::Full {
        cfg.max_nodes = 50;
    }
    generate_federated(&cfg, 10, 4, alpha, &mut rng)
}

/// Runs the full grid: 2 encoders × 5 strategies × |alphas| cells.
pub fn run(scale: Scale, alphas: &[f64]) -> Vec<Fig4Cell> {
    let rounds = scale.pick(9, 24);
    let mut cells = Vec::new();
    for &alpha in alphas {
        let fed = fig4_data(scale, alpha, 40);
        for (enc_name, enc_kind) in [("GIN", EncoderKind::Gin), ("GCN", EncoderKind::Gcn)] {
            for strategy in strategies() {
                let mut pipeline = FexIotConfig::default()
                    .with_encoder(enc_kind.clone())
                    .with_seed(40);
                pipeline.contrastive.epochs = 1;
                pipeline.contrastive.pairs_per_epoch = scale.pick(96, 192);
                let config = FederationConfig {
                    n_clients: fed.clients.len(),
                    alpha,
                    strategy: strategy.clone(),
                    rounds,
                    pipeline,
                    ..Default::default()
                };
                let mut sim = build_federation_with_data(fed.clients.clone(), &config);
                sim.run();
                let per_client = sim.evaluate(&fed.test);
                cells.push(Fig4Cell {
                    encoder: enc_name,
                    strategy: strategy.name(),
                    alpha,
                    metrics: Metrics::mean(&per_client),
                });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_ordering() {
        // One alpha to keep the test fast; the bin runs the full sweep.
        let cells = run(Scale::Small, &[1.0]);
        assert_eq!(cells.len(), 2 * 5);
        let fex = cells
            .iter()
            .find(|c| c.encoder == "GIN" && c.strategy == "FexIoT")
            .unwrap();
        let client = cells
            .iter()
            .find(|c| c.encoder == "GIN" && c.strategy == "Client")
            .unwrap();
        // The headline ordering: federated clustering beats isolated training.
        assert!(
            fex.metrics.accuracy >= client.metrics.accuracy - 0.02,
            "FexIoT {} vs Client {}",
            fex.metrics.accuracy,
            client.metrics.accuracy
        );
    }
}
