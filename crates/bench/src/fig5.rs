//! Figure 5: scalability — per-client test-accuracy box plots as the number
//! of participating clients grows (paper: 25/50/75/100), on the homogeneous
//! IFTTT dataset (GIN) and the heterogeneous five-platform dataset (MAGNN).

use crate::scale::Scale;
use fexiot::{build_federation, FederationConfig, FexIotConfig};
use fexiot_fed::Strategy;
use fexiot_gnn::EncoderKind;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::rng::Rng;
use fexiot_tensor::stats::BoxSummary;

/// One box of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Box {
    pub dataset: &'static str,
    pub clients: usize,
    pub summary: BoxSummary,
}

/// Client counts per scale.
pub fn client_counts(scale: Scale) -> Vec<usize> {
    scale.pick(vec![5, 10, 15, 20], vec![25, 50, 75, 100])
}

/// Runs both datasets over the client sweep (α = 1 as in the paper).
pub fn run(scale: Scale) -> Vec<Fig5Box> {
    let mut out = Vec::new();
    for (name, encoder, mut ds_cfg) in [
        ("IFTTT", EncoderKind::Gin, DatasetConfig::small_ifttt()),
        (
            "Heterogeneous",
            EncoderKind::Magnn,
            DatasetConfig::small_hetero(),
        ),
    ] {
        ds_cfg.graph_count = scale.pick(300, 4000);
        let mut rng = Rng::seed_from_u64(50);
        let ds = generate_dataset(&ds_cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        for &clients in &client_counts(scale) {
            let mut pipeline = FexIotConfig::default()
                .with_encoder(encoder.clone())
                .with_seed(50);
            pipeline.contrastive.epochs = 1;
            pipeline.contrastive.pairs_per_epoch = scale.pick(48, 128);
            let config = FederationConfig {
                n_clients: clients,
                alpha: 1.0,
                strategy: Strategy::fexiot_default(),
                rounds: scale.pick(3, 10),
                pipeline,
                ..Default::default()
            };
            let mut sim = build_federation(&train, &config);
            sim.run();
            let accs: Vec<f64> = sim.evaluate(&test).iter().map(|m| m.accuracy).collect();
            out.push(Fig5Box {
                dataset: name,
                clients,
                summary: BoxSummary::from_samples(&accs),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxes_cover_both_datasets() {
        // Abbreviated run: smallest client count only, via a custom sweep.
        let mut rng = Rng::seed_from_u64(51);
        let mut ds_cfg = DatasetConfig::small_ifttt();
        ds_cfg.graph_count = 80;
        let ds = generate_dataset(&ds_cfg, &mut rng);
        let (train, test) = ds.train_test_split(0.8, &mut rng);
        let mut pipeline = FexIotConfig::default().with_seed(51);
        pipeline.contrastive.epochs = 1;
        pipeline.contrastive.pairs_per_epoch = 12;
        let config = FederationConfig {
            n_clients: 4,
            alpha: 1.0,
            strategy: Strategy::fexiot_default(),
            rounds: 2,
            pipeline,
            ..Default::default()
        };
        let mut sim = build_federation(&train, &config);
        sim.run();
        let accs: Vec<f64> = sim.evaluate(&test).iter().map(|m| m.accuracy).collect();
        let b = BoxSummary::from_samples(&accs);
        assert!(b.min <= b.median && b.median <= b.max);
    }
}
