//! Table III: runtime efficiency — graph-construction time, per-graph
//! prediction time, per-graph vulnerability-analysis time, and model size,
//! for the homogeneous (IFTTT) and heterogeneous datasets.

use crate::scale::Scale;
use fexiot::{FexIot, FexIotConfig};
use fexiot_explain::{explain, fexiot_config};
use fexiot_gnn::EncoderKind;
use fexiot_graph::{generate_dataset, DatasetConfig};
use fexiot_tensor::rng::Rng;
use std::time::Instant;

/// One Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub dataset: &'static str,
    pub graph_construction_s: f64,
    pub prediction_s: f64,
    pub analysis_s: f64,
    pub model_mb: f64,
    pub graphs: usize,
}

/// Measures the pipeline stages on both datasets.
pub fn run(scale: Scale) -> Vec<Table3Row> {
    let specs: [(&'static str, DatasetConfig, EncoderKind, usize); 2] = [
        (
            "IFTTT",
            DatasetConfig::small_ifttt(),
            EncoderKind::Gin,
            scale.pick(240, 6000),
        ),
        (
            "Hetero.",
            DatasetConfig::small_hetero(),
            EncoderKind::Magnn,
            scale.pick(400, 12758),
        ),
    ];

    specs
        .into_iter()
        .map(|(name, mut ds_cfg, encoder, count)| {
            ds_cfg.graph_count = count;
            if scale == Scale::Full {
                ds_cfg.features = fexiot_graph::FeatureConfig::paper();
            }
            let mut rng = Rng::seed_from_u64(120);

            // Stage 1: dataset (graph) construction.
            let t0 = Instant::now();
            let ds = generate_dataset(&ds_cfg, &mut rng);
            let graph_construction_s = t0.elapsed().as_secs_f64();

            // Train a model (untimed — the paper reports inference costs).
            let mut cfg = FexIotConfig::default().with_encoder(encoder).with_seed(120);
            if scale == Scale::Full {
                cfg.features = fexiot_graph::FeatureConfig::paper();
            }
            cfg.contrastive.epochs = scale.pick(6, 12);
            let model = FexIot::train(&ds, cfg);

            // Stage 2: per-graph prediction time.
            let probe: Vec<_> = ds.graphs.iter().take(scale.pick(60, 300)).collect();
            let t1 = Instant::now();
            for g in &probe {
                let _ = model.detect(g);
            }
            let prediction_s = t1.elapsed().as_secs_f64() / probe.len() as f64;

            // Stage 3: per-graph vulnerability analysis (explanation) time.
            let targets: Vec<_> = ds
                .graphs
                .iter()
                .filter(|g| g.node_count() >= 5)
                .take(scale.pick(6, 20))
                .collect();
            let search_cfg = fexiot_config(scale.pick(3, 8), 3, scale.pick(16, 64));
            let t2 = Instant::now();
            for g in &targets {
                let _ = explain(model.scorer(), g, &search_cfg);
            }
            let analysis_s = t2.elapsed().as_secs_f64() / targets.len().max(1) as f64;

            Table3Row {
                dataset: name,
                graph_construction_s,
                prediction_s,
                analysis_s,
                model_mb: model.model_bytes() as f64 / (1024.0 * 1024.0),
                graphs: ds.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_report_positive_timings() {
        let rows = run(Scale::Small);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.graph_construction_s > 0.0);
            assert!(r.prediction_s > 0.0);
            assert!(r.analysis_s > 0.0);
            assert!(r.model_mb > 0.0);
            // Analysis dominates prediction, as in the paper.
            assert!(r.analysis_s > r.prediction_s, "{r:?}");
        }
        // Heterogeneous construction is costlier than homogeneous (Table III
        // shape: 976.99 s vs 17.19 s at paper scale).
        assert!(rows[1].graph_construction_s > rows[0].graph_construction_s * 0.5);
    }
}
