//! Minimal SVG plotting for the figure binaries: scatter plots (Fig. 6 t-SNE,
//! Fig. 9 fidelity/sparsity) and grouped bar charts (Fig. 7 communication).
//! No dependencies — the experiment bins write self-contained `.svg` files
//! next to their `.csv` outputs.

use std::fmt::Write as _;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 480.0;
const MARGIN: f64 = 56.0;

/// Categorical palette (colorblind-safe Okabe-Ito).
const PALETTE: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#000000",
];

fn axis_bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if (hi - lo).abs() < 1e-12 {
        return (lo - 0.5, hi + 0.5);
    }
    let pad = (hi - lo) * 0.06;
    (lo - pad, hi + pad)
}

fn svg_header(title: &str) -> String {
    format!(
        concat!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" ",
            "viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n",
            "<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n",
            "<text x=\"{cx}\" y=\"24\" text-anchor=\"middle\" font-size=\"15\">{title}</text>\n"
        ),
        w = WIDTH,
        h = HEIGHT,
        cx = WIDTH / 2.0,
        title = title
    )
}

fn axes(out: &mut String, xlabel: &str, ylabel: &str, xb: (f64, f64), yb: (f64, f64)) {
    let x0 = MARGIN;
    let x1 = WIDTH - MARGIN;
    let y0 = HEIGHT - MARGIN;
    let y1 = MARGIN;
    let _ = writeln!(
        out,
        "<line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x1}\" y2=\"{y0}\" stroke=\"black\"/>\n<line x1=\"{x0}\" y1=\"{y0}\" x2=\"{x0}\" y2=\"{y1}\" stroke=\"black\"/>"
    );
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\">{xlabel}</text>",
        (x0 + x1) / 2.0,
        HEIGHT - 14.0
    );
    let _ = writeln!(
        out,
        "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" font-size=\"12\" transform=\"rotate(-90 16 {y})\">{ylabel}</text>",
        (y0 + y1) / 2.0,
        y = (y0 + y1) / 2.0
    );
    // Min/max tick labels.
    let _ = writeln!(
        out,
        "<text x=\"{x0}\" y=\"{}\" font-size=\"10\" text-anchor=\"middle\">{:.2}</text>",
        y0 + 14.0,
        xb.0
    );
    let _ = writeln!(
        out,
        "<text x=\"{x1}\" y=\"{}\" font-size=\"10\" text-anchor=\"middle\">{:.2}</text>",
        y0 + 14.0,
        xb.1
    );
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{y0}\" font-size=\"10\" text-anchor=\"end\">{:.2}</text>",
        x0 - 4.0,
        yb.0
    );
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{}\" font-size=\"10\" text-anchor=\"end\">{:.2}</text>",
        x0 - 4.0,
        y1 + 4.0,
        yb.1
    );
}

fn sx(x: f64, xb: (f64, f64)) -> f64 {
    MARGIN + (x - xb.0) / (xb.1 - xb.0) * (WIDTH - 2.0 * MARGIN)
}

fn sy(y: f64, yb: (f64, f64)) -> f64 {
    HEIGHT - MARGIN - (y - yb.0) / (yb.1 - yb.0) * (HEIGHT - 2.0 * MARGIN)
}

/// Writes a scatter plot; each point is `(x, y, series)`, series index
/// selects the color and appears in the legend.
pub fn scatter_svg(
    path: &str,
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series_names: &[&str],
    points: &[(f64, f64, usize)],
) -> std::io::Result<()> {
    let xb = axis_bounds(points.iter().map(|p| p.0));
    let yb = axis_bounds(points.iter().map(|p| p.1));
    let mut out = svg_header(title);
    axes(&mut out, xlabel, ylabel, xb, yb);
    for &(x, y, s) in points {
        let _ = writeln!(
            out,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3.2\" fill=\"{}\" fill-opacity=\"0.75\"/>",
            sx(x, xb),
            sy(y, yb),
            PALETTE[s % PALETTE.len()]
        );
    }
    for (i, name) in series_names.iter().enumerate() {
        let ly = MARGIN + 16.0 * i as f64;
        let _ = writeln!(
            out,
            "<circle cx=\"{:.1}\" cy=\"{ly}\" r=\"4\" fill=\"{}\"/><text x=\"{:.1}\" y=\"{}\" font-size=\"11\">{name}</text>",
            WIDTH - MARGIN - 110.0,
            PALETTE[i % PALETTE.len()],
            WIDTH - MARGIN - 100.0,
            ly + 4.0
        );
    }
    out.push_str("</svg>\n");
    std::fs::write(path, out)
}

/// Writes a grouped bar chart: `groups` label the x clusters, `series` label
/// the bars within each cluster, `values[s][g]` is the bar height.
pub fn grouped_bars_svg(
    path: &str,
    title: &str,
    ylabel: &str,
    groups: &[String],
    series: &[&str],
    values: &[Vec<f64>],
) -> std::io::Result<()> {
    assert_eq!(values.len(), series.len(), "plot: one value row per series");
    let max = values
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let yb = (0.0, max * 1.08);
    let mut out = svg_header(title);
    axes(&mut out, "", ylabel, (0.0, 1.0), yb);
    let plot_w = WIDTH - 2.0 * MARGIN;
    let group_w = plot_w / groups.len() as f64;
    let bar_w = group_w * 0.8 / series.len() as f64;
    for (g, gname) in groups.iter().enumerate() {
        for (s, vals) in values.iter().enumerate() {
            let v = vals.get(g).copied().unwrap_or(0.0);
            let x = MARGIN + g as f64 * group_w + group_w * 0.1 + s as f64 * bar_w;
            let y = sy(v, yb);
            let h = (HEIGHT - MARGIN) - y;
            let _ = writeln!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{h:.1}\" fill=\"{}\"/>",
                bar_w * 0.92,
                PALETTE[s % PALETTE.len()]
            );
        }
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{}\" text-anchor=\"middle\" font-size=\"11\">{gname}</text>",
            MARGIN + (g as f64 + 0.5) * group_w,
            HEIGHT - MARGIN + 16.0
        );
    }
    for (i, name) in series.iter().enumerate() {
        let ly = MARGIN + 16.0 * i as f64;
        let _ = writeln!(
            out,
            "<rect x=\"{:.1}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{}\"/><text x=\"{:.1}\" y=\"{}\" font-size=\"11\">{name}</text>",
            WIDTH - MARGIN - 110.0,
            ly - 8.0,
            PALETTE[i % PALETTE.len()],
            WIDTH - MARGIN - 96.0,
            ly + 1.0
        );
    }
    out.push_str("</svg>\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_writes_valid_svg() {
        let dir = std::env::temp_dir().join("fexiot_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scatter.svg");
        let points = vec![(0.0, 0.0, 0), (1.0, 1.0, 1), (0.5, 0.2, 0)];
        scatter_svg(path.to_str().unwrap(), "t", "x", "y", &["a", "b"], &points).unwrap();
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 3 + 2); // points + legend dots
    }

    #[test]
    fn bars_write_one_rect_per_value() {
        let dir = std::env::temp_dir().join("fexiot_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bars.svg");
        let groups = vec!["g1".to_string(), "g2".to_string()];
        grouped_bars_svg(
            path.to_str().unwrap(),
            "t",
            "MB",
            &groups,
            &["s1", "s2"],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        )
        .unwrap();
        let svg = std::fs::read_to_string(&path).unwrap();
        // 4 bars + 2 legend swatches + 1 background rect.
        assert_eq!(svg.matches("<rect").count(), 7);
    }

    #[test]
    fn degenerate_bounds_do_not_divide_by_zero() {
        let dir = std::env::temp_dir().join("fexiot_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flat.svg");
        let points = vec![(1.0, 1.0, 0), (1.0, 1.0, 0)];
        scatter_svg(path.to_str().unwrap(), "t", "x", "y", &["a"], &points).unwrap();
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(!svg.contains("NaN"));
    }
}
