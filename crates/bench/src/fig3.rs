//! Figure 3: interaction-correlation discovery — four classifiers (MLP,
//! RandomForest, KNN, GradientBoost) on rule-pair features, 10-fold
//! cross-validation.

use crate::scale::Scale;
use fexiot_graph::{CorpusConfig, CorpusGenerator, Rule};
use fexiot_ml::{
    ForestConfig, GBoostConfig, GradientBoost, Knn, Metrics, Mlp, MlpConfig, RandomForest,
};
use fexiot_nlp::{parse_rule, Lexicon, PairFeatureExtractor};
use fexiot_tensor::matrix::Matrix;
use fexiot_tensor::rng::Rng;

/// A labeled rule-pair feature set.
pub struct PairDataset {
    pub x: Matrix,
    pub y: Vec<usize>,
}

/// Builds the labeled "action-trigger" pair dataset. The paper hand-labels
/// 5,600 positive and 8,000 negative pairs; here ground truth comes from the
/// rule semantics (`Rule::can_trigger`), which is what the volunteers encoded.
pub fn build_pair_dataset(positives: usize, negatives: usize, seed: u64) -> PairDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let mut gen = CorpusGenerator::new();
    // A large mixed corpus so both pair classes are plentiful.
    let rules = gen.generate(&CorpusConfig::small(), &mut rng);
    let lex = Lexicon::new();
    let extractor = PairFeatureExtractor::with_word_dim(32);
    let parses: Vec<_> = rules.iter().map(|r| parse_rule(&r.text, &lex)).collect();

    let mut pos_rows: Vec<Vec<f64>> = Vec::with_capacity(positives);
    let mut neg_rows: Vec<Vec<f64>> = Vec::with_capacity(negatives);
    let mut attempts = 0usize;
    let cap = (positives + negatives) * 400;
    while (pos_rows.len() < positives || neg_rows.len() < negatives) && attempts < cap {
        attempts += 1;
        let i = rng.usize(rules.len());
        let j = rng.usize(rules.len());
        if i == j {
            continue;
        }
        let correlated = rules[i].can_trigger(&rules[j]);
        if correlated && pos_rows.len() < positives {
            pos_rows.push(extractor.pair_features(&parses[i], &parses[j], &lex));
        } else if !correlated && neg_rows.len() < negatives {
            neg_rows.push(extractor.pair_features(&parses[i], &parses[j], &lex));
        }
    }
    let mut rows = pos_rows;
    let mut y = vec![1usize; rows.len()];
    y.extend(std::iter::repeat_n(0, neg_rows.len()));
    rows.extend(neg_rows);
    PairDataset {
        x: Matrix::from_rows(&rows),
        y,
    }
}

/// Ensures positives exist by direct enumeration when sampling is too sparse.
pub fn enumerate_positive_pairs(rules: &[Rule]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..rules.len() {
        for j in 0..rules.len() {
            if i != j && rules[i].can_trigger(&rules[j]) {
                out.push((i, j));
            }
        }
    }
    out
}

/// One classifier's cross-validated metrics.
#[derive(Debug, Clone)]
pub struct ClassifierResult {
    pub name: &'static str,
    pub metrics: Metrics,
}

/// Runs the Fig. 3 comparison with k-fold cross-validation.
pub fn run(scale: Scale) -> Vec<ClassifierResult> {
    let (pos, neg, folds) = scale.pick((350, 500, 5), (5600, 8000, 10));
    let ds = build_pair_dataset(pos, neg, 3);
    let mut rng = Rng::seed_from_u64(4);
    let n = ds.x.rows();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);

    let mut per_method: Vec<(&'static str, Vec<Metrics>)> = vec![
        ("MLP", Vec::new()),
        ("RandomForest", Vec::new()),
        ("KNN", Vec::new()),
        ("GradientBoost", Vec::new()),
    ];

    for fold in 0..folds {
        let test_idx: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % folds == fold)
            .map(|(_, &i)| i)
            .collect();
        let train_idx: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % folds != fold)
            .map(|(_, &i)| i)
            .collect();
        let xt = ds.x.select_rows(&train_idx);
        let yt: Vec<usize> = train_idx.iter().map(|&i| ds.y[i]).collect();
        let xe = ds.x.select_rows(&test_idx);
        let ye: Vec<usize> = test_idx.iter().map(|&i| ds.y[i]).collect();

        let mlp = Mlp::fit(
            &xt,
            &yt,
            MlpConfig {
                epochs: 40,
                seed: fold as u64,
                ..Default::default()
            },
        );
        per_method[0]
            .1
            .push(Metrics::from_predictions(&mlp.predict(&xe), &ye));

        let rf = RandomForest::fit(
            &xt,
            &yt,
            2,
            ForestConfig {
                trees: 40,
                seed: fold as u64,
                ..Default::default()
            },
        );
        per_method[1]
            .1
            .push(Metrics::from_predictions(&rf.predict(&xe), &ye));

        let knn = Knn::fit(&xt, &yt, 2, 7);
        per_method[2]
            .1
            .push(Metrics::from_predictions(&knn.predict(&xe), &ye));

        let gb = GradientBoost::fit(
            &xt,
            &yt,
            GBoostConfig {
                stages: 60,
                seed: fold as u64,
                ..Default::default()
            },
        );
        per_method[3]
            .1
            .push(Metrics::from_predictions(&gb.predict(&xe), &ye));
    }

    per_method
        .into_iter()
        .map(|(name, folds)| ClassifierResult {
            name,
            metrics: Metrics::mean(&folds),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_dataset_has_both_classes() {
        let ds = build_pair_dataset(40, 60, 1);
        let pos = ds.y.iter().filter(|&&v| v == 1).count();
        assert!(pos >= 20, "positives {pos}");
        assert!(ds.y.len() - pos >= 30);
        assert_eq!(ds.x.rows(), ds.y.len());
    }

    #[test]
    fn classifiers_beat_chance_clearly() {
        let results = run(Scale::Small);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(
                r.metrics.accuracy > 0.8,
                "{} accuracy {}",
                r.name,
                r.metrics.accuracy
            );
        }
    }
}
